"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but ablations of this implementation:

* **slicing algorithm** — the Section-9 dependency analysis (default, one
  small solver call per statement) vs the Section-8.3.3 greedy search
  (exact Theorem-4 checks, one large solver call per candidate),
* **compression grouping** — Φ_D as a single range box vs grouped by a
  categorical attribute (Section 8.3.1's knob): more groups = tighter
  over-approximation = potentially smaller slices at higher solver cost,
* **defining-conjunct pruning** — the MILP built from all symbolic
  defining equalities vs only the transitively-referenced ones.
"""

import time

import pytest

from repro.bench import print_series_table
from repro.core import MahifConfig, Method, answer
from repro.core.program_slicing import ProgramSlicingConfig
from repro.symbolic import CompressionConfig
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record


def test_ablation_slicing_algorithm(benchmark):
    """dependency vs greedy slicing: same slice quality, different cost."""

    def run():
        # greedy's exact Theorem-4 checks carry the full CASE chains of
        # every update into the MILP; on large/float formulas they go
        # solver-bound (the paper's own Sec.-13.7 caveat about MILP cost),
        # so this ablation uses a short history
        spec = WorkloadSpec(
            dataset="taxi", rows=SMALL_ROWS, updates=5, seed=7
        )
        workload = build_workload(spec)
        out = []
        for algorithm in ("dependency", "greedy"):
            config = MahifConfig(slicing_algorithm=algorithm)
            start = time.perf_counter()
            result = answer(workload.query, Method.R_PS_DS, config)
            elapsed = time.perf_counter() - start
            row = {
                "algorithm": algorithm,
                "total": elapsed,
                "ps": result.ps_seconds,
                "kept": len(result.slice_result.kept_positions),
                "solver_calls": result.slice_result.solver_calls,
            }
            record("ablation_slicing", row)
            out.append(row)
        assert out[0]["kept"] <= out[1]["kept"], (
            "dependency must never keep more than greedy (its UNKNOWNs "
            "are conservative)"
        )
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Ablation — slicing algorithm (U5, taxi)",
        ["algorithm", "total s", "PS s", "kept", "solver calls"],
        [
            [r["algorithm"], r["total"], r["ps"], r["kept"], r["solver_calls"]]
            for r in rows
        ],
        note="dependency is cheap and effective; greedy's exact checks are "
        "solver-bound on float data and keep more (UNKNOWN = keep)",
    )


def test_ablation_compression_grouping(benchmark):
    """Φ_D granularity: ungrouped vs grouped compression."""

    def run():
        spec = WorkloadSpec(
            dataset="taxi", rows=SMALL_ROWS, updates=10, seed=7
        )
        workload = build_workload(spec)
        out = []
        for label, compression in (
            ("single box", CompressionConfig(group_by=None)),
            ("by company", CompressionConfig(group_by="company")),
            (
                "4 fare buckets",
                CompressionConfig(group_by="fare", num_groups=4),
            ),
        ):
            config = MahifConfig(
                program_slicing=ProgramSlicingConfig(compression=compression)
            )
            start = time.perf_counter()
            result = answer(workload.query, Method.R_PS_DS, config)
            elapsed = time.perf_counter() - start
            row = {
                "compression": label,
                "total": elapsed,
                "ps": result.ps_seconds,
                "kept": len(result.slice_result.kept_positions),
            }
            record("ablation_compression", row)
            out.append(row)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Ablation — Φ_D compression granularity (U20, taxi)",
        ["compression", "total s", "PS s", "kept"],
        [[r["compression"], r["total"], r["ps"], r["kept"]] for r in rows],
        note="tighter Φ_D can shrink slices at extra solver cost",
    )
