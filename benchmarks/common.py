"""Shared configuration and runners for the figure benchmarks.

Scale: the paper runs 5M/50M-row tables on a 24-core/128 GB server with
PostgreSQL; this reproduction runs an in-memory pure-Python engine, so the
default sizes are laptop-scale ("5M" → ``SMALL_ROWS``, "50M" →
``LARGE_ROWS``) and the update sweep tops out at ``max(U_SWEEP)``.
Override via environment variables for a bigger run::

    MAHIF_BENCH_SMALL=20000 MAHIF_BENCH_LARGE=100000 \
    MAHIF_BENCH_UPDATES=10,20,50,100,200 pytest benchmarks/ --benchmark-only

Every benchmark prints the same series the paper's figure plots (run with
``-s`` to see them mid-run; they are also appended to
``benchmarks/results.jsonl``).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Sequence

from repro.bench import MethodTiming, print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

SMALL_ROWS = int(os.environ.get("MAHIF_BENCH_SMALL", "1200"))
LARGE_ROWS = int(os.environ.get("MAHIF_BENCH_LARGE", "3600"))
U_SWEEP = tuple(
    int(u)
    for u in os.environ.get("MAHIF_BENCH_UPDATES", "10,20,40").split(",")
)

#: The "datasets" of Figures 14/18/21-23: (label, dataset name, rows).
DATASET_GRID = (
    ("Taxi (5M)", "taxi", SMALL_ROWS),
    ("Taxi (50M)", "taxi", LARGE_ROWS),
    ("TPCC", "tpcc", SMALL_ROWS),
    ("YCSB", "ycsb", SMALL_ROWS),
)

RESULTS_PATH = pathlib.Path(__file__).with_name("results.jsonl")


def record(experiment: str, row: dict) -> None:
    """Append a result row to the JSONL log used to build EXPERIMENTS.md."""
    with RESULTS_PATH.open("a") as fh:
        fh.write(json.dumps({"experiment": experiment, **row}) + "\n")


def run_sweep(
    experiment: str,
    methods: Sequence[Method],
    *,
    dataset: str = "taxi",
    rows: int = SMALL_ROWS,
    updates: Sequence[int] = U_SWEEP,
    dependent_pct: float = 10.0,
    affected_pct: float = 10.0,
    insert_pct: float = 0.0,
    delete_pct: float = 0.0,
    modifications: int = 1,
    seed: int = 7,
) -> list[dict]:
    """Run ``methods`` over a U sweep; returns one row dict per U."""
    rows_out: list[dict] = []
    for u in updates:
        spec = WorkloadSpec(
            dataset=dataset,
            rows=rows,
            updates=u,
            dependent_pct=dependent_pct,
            affected_pct=affected_pct,
            insert_pct=insert_pct,
            delete_pct=delete_pct,
            modifications=modifications,
            seed=seed,
        )
        workload = build_workload(spec)
        timings = run_methods(workload.query, list(methods))
        row: dict = {"updates": u, "dataset": dataset, "rows": rows}
        for method, timing in timings.items():
            row[method.value] = timing.total_seconds
            if method.uses_program_slicing:
                row[f"{method.value}:ps"] = timing.ps_seconds
                row[f"{method.value}:exe"] = timing.exe_seconds
        record(experiment, row)
        rows_out.append(row)
    return rows_out


def print_sweep(
    title: str,
    sweep_rows: list[dict],
    methods: Sequence[Method],
    note: str = "",
) -> None:
    headers = ["U"] + [m.value for m in methods]
    table = [
        [row["updates"]] + [row[m.value] for m in methods]
        for row in sweep_rows
    ]
    print_series_table(title, headers, table, note=note)
