"""Figure 16 (table): Mahif cost breakdown — PS, Exe, R+PS+DS vs R.

Paper shape: the PS column is *independent of the relation size* (it
depends only on the history and compressed-database constraints) while R
grows with both U and relation size; R+PS+DS = PS + Exe stays far below R
for long histories.
"""

import pytest

from repro.bench import print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

from .common import LARGE_ROWS, SMALL_ROWS, U_SWEEP, record


@pytest.mark.parametrize(
    "label,rows",
    [("5M", SMALL_ROWS), ("50M", LARGE_ROWS)],
    ids=["small", "large"],
)
def test_fig16(benchmark, label, rows):
    def run():
        out = []
        for u in U_SWEEP:
            spec = WorkloadSpec(dataset="taxi", rows=rows, updates=u, seed=7)
            workload = build_workload(spec)
            timings = run_methods(
                workload.query, [Method.R, Method.R_PS_DS]
            )
            combined = timings[Method.R_PS_DS]
            row = {
                "updates": u,
                "rows": rows,
                "PS": combined.ps_seconds,
                "Exe": combined.exe_seconds,
                "R+PS+DS": combined.total_seconds,
                "R": timings[Method.R].total_seconds,
            }
            record("fig16", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        f"Figure 16 — Mahif breakdown, size {label}",
        ["U", "PS", "Exe", "R+PS+DS", "R"],
        [
            [r["updates"], r["PS"], r["Exe"], r["R+PS+DS"], r["R"]]
            for r in sweep
        ],
        note="PS independent of relation size; R+PS+DS ≪ R at large U",
    )
    last = sweep[-1]
    assert last["R+PS+DS"] < last["R"], "optimizations must beat plain R"
