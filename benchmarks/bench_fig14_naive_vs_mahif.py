"""Figure 14: Naive vs Mahif (R+PS+DS) across datasets and history sizes.

Paper shape: Mahif beats the naive method on every dataset, with the gap
widening as the history grows (the naive method re-executes every update
with write I/O; Mahif reenacts only the slice over only the sliced data).
"""

import pytest

from repro.core import Method

from .common import DATASET_GRID, print_sweep, run_sweep

METHODS = [Method.NAIVE, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,dataset,rows", DATASET_GRID, ids=[d[0] for d in DATASET_GRID]
)
def test_fig14(benchmark, label, dataset, rows):
    def run():
        return run_sweep(
            "fig14", METHODS, dataset=dataset, rows=rows
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 14 — Naive vs Mahif, {label}",
        sweep,
        METHODS,
        note="R+PS+DS below Naive at every U; gap grows with U",
    )
    # Sanity on the headline claim at the largest history.
    last = sweep[-1]
    assert last[Method.R_PS_DS.value] < last[Method.NAIVE.value] * 2.0, (
        "Mahif should not be dramatically slower than naive"
    )
