"""Figure 20: varying the fraction of affected tuples T (U100, D1).

Paper shape: R+PS is flat in T (the slice depends on the history, not the
data volume); R+DS and R+PS+DS grow with T because data slicing filters
less and less; at moderate selectivities the combination still wins.
"""

import pytest

from repro.bench import print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

T_SWEEP = (3.0, 12.0, 38.0, 68.0, 80.0)
METHODS = [Method.R, Method.R_PS, Method.R_DS, Method.R_PS_DS]


def test_fig20(benchmark):
    def run():
        out = []
        for t in T_SWEEP:
            spec = WorkloadSpec(
                dataset="taxi",
                rows=SMALL_ROWS,
                updates=50,
                dependent_pct=1.0,
                affected_pct=t,
                seed=7,
            )
            workload = build_workload(spec)
            timings = run_methods(workload.query, METHODS)
            row = {"affected_pct": t}
            for method, timing in timings.items():
                row[method.value] = timing.total_seconds
            record("fig20", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Figure 20 — affected data T (U50, D1, taxi)",
        ["T%"] + [m.value for m in METHODS],
        [[r["affected_pct"]] + [r[m.value] for m in METHODS] for r in sweep],
        note="R+PS flat in T; R+DS and R+PS+DS grow with T",
    )
    # Data slicing's execution cost must grow with T.
    assert sweep[-1][Method.R_DS.value] > sweep[0][Method.R_DS.value]
