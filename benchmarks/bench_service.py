"""What-if service throughput: N concurrent HTTP clients, cold vs warm
result cache (see DESIGN.md, "Service architecture").

The workload mirrors the batched-answering benchmark's interactive
pattern — one shared stored history (taxi, U20), many users probing
different hypothetical constants for the same late statement — but
through the full service stack: persistent history store, HTTP, the
per-history result cache.  Two passes over ``QUERY_COUNT`` distinct
single what-if requests issued by ``CLIENTS`` concurrent clients:

* **cold** — every request misses the cache and pays planning + slicing
  + evaluation (time travel is already checkpoint-backed),
* **warm** — the same requests again; every one is a cache hit and pays
  only HTTP + a dict lookup.

The asserted floor — warm ≥ 2× cold qps on the compiled backend — is
the acceptance criterion for the cache actually buying something; a hit
skips all engine work, so the margin is large at every scale.  A sample
of answers is cross-checked against the in-process ``Mahif.answer``
oracle.  Results land in ``results.jsonl`` (experiment ``"service"``)
and ``BENCH_service.json`` at the repo root.
"""

import os
import pathlib
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import print_series_table, write_bench_report
from repro.core import HistoricalWhatIfQuery, Mahif, MahifConfig, Method
from repro.relational.expressions import Attr
from repro.relational.sqlgen import statement_to_sql
from repro.relational.statements import UpdateStatement
from repro.service import (
    METHODS,
    ServiceClient,
    WhatIfServer,
    WhatIfService,
    modifications_from_spec,
    result_payload,
)
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

BACKEND = "compiled"
CLIENTS = int(os.environ.get("MAHIF_BENCH_SERVICE_CLIENTS", "8"))
QUERY_COUNT = int(os.environ.get("MAHIF_BENCH_SERVICE_QUERIES", "24"))
ROWS = SMALL_ROWS
UPDATES = 20
#: 1-based position of the replaced statement — deep in the history, so
#: the checkpoint-backed time travel has a long prefix to skip.
MOD_POSITION = 16
WARM_SPEEDUP_FLOOR = 2.0
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_service.json"


def _specs(workload) -> list[dict]:
    """``QUERY_COUNT`` distinct single-query specs over one history."""
    base = workload.history[MOD_POSITION]
    value = workload.value_attribute
    specs = []
    for i in range(QUERY_COUNT):
        replacement = UpdateStatement(
            base.relation,
            {value: Attr(value) + (3 + i)},
            base.condition,
        )
        specs.append(
            {"replace": [[MOD_POSITION, statement_to_sql(replacement)]]}
        )
    return specs


def _qps_pass(url: str, specs: list[dict]) -> tuple[float, list[dict]]:
    """Issue every spec once from a pool of CLIENTS concurrent clients."""
    clients = [ServiceClient(url) for _ in range(CLIENTS)]

    def probe(index_spec):
        index, spec = index_spec
        return clients[index % CLIENTS].whatif(
            "bench", spec, backend=BACKEND
        )

    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
        answers = list(pool.map(probe, enumerate(specs)))
    elapsed = time.perf_counter() - start
    return len(specs) / elapsed, answers


def _run_service_bench() -> dict:
    workload = build_workload(
        WorkloadSpec(dataset="taxi", rows=ROWS, updates=UPDATES, seed=7)
    )
    specs = _specs(workload)
    with tempfile.TemporaryDirectory(prefix="mahif-bench-service-") as root:
        service = WhatIfService(root, default_backend=BACKEND)
        service.register("bench", workload.database, workload.history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            cold_qps, cold = _qps_pass(server.url, specs)
            warm_qps, warm = _qps_pass(server.url, specs)
        finally:
            server.shutdown()

    assert all(not a["cached"] for a in cold), "cold pass hit the cache"
    assert all(a["cached"] for a in warm), "warm pass missed the cache"
    assert [a["delta"] for a in warm] == [a["delta"] for a in cold]

    # Sample correctness: first/last answers equal the in-process oracle.
    engine = Mahif(MahifConfig(backend=BACKEND))
    for index in (0, len(specs) - 1):
        query = HistoricalWhatIfQuery(
            workload.history,
            workload.database,
            modifications_from_spec(specs[index]),
        )
        oracle = engine.answer(query, METHODS["R+PS+DS"])
        assert cold[index]["delta"] == result_payload(oracle)["delta"], (
            "service answer differs from the in-process engine"
        )

    row = {
        "backend": BACKEND,
        "rows": ROWS,
        "updates": UPDATES,
        "clients": CLIENTS,
        "queries": QUERY_COUNT,
        "cold_qps": cold_qps,
        "warm_qps": warm_qps,
        "warm_speedup": warm_qps / cold_qps,
    }
    record("service", row)
    return row


def test_service_concurrent_throughput(benchmark):
    row = benchmark.pedantic(_run_service_bench, rounds=1, iterations=1)

    write_bench_report(
        TARGET,
        "service",
        {
            "dataset": "taxi",
            "rows": ROWS,
            "updates": UPDATES,
            "modified_position": MOD_POSITION,
            "clients": CLIENTS,
            "queries": QUERY_COUNT,
            "method": Method.R_PS_DS.value,
            "backend": BACKEND,
            "metric": "single-query HTTP qps under concurrent clients, "
            "cold vs warm result cache",
        },
        throughput=[row],
    )

    print_series_table(
        f"Service — {CLIENTS} concurrent clients, {QUERY_COUNT} queries "
        f"(taxi, U{UPDATES}, R+PS+DS over HTTP)",
        ["backend", "cold qps", "warm qps", "speedup"],
        [[row["backend"], row["cold_qps"], row["warm_qps"],
          row["warm_speedup"]]],
        note="warm pass = pure cache hits; floor ≥ 2× cold",
    )

    assert row["warm_speedup"] >= WARM_SPEEDUP_FLOOR, (
        "the result cache no longer pays for itself: "
        f"{row['warm_speedup']:.2f}x < {WARM_SPEEDUP_FLOOR}x"
    )
