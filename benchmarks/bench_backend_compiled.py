"""Four-way execution-backend benchmark (see DESIGN.md).

Compares all four backends — ``interpreted`` (the oracle), ``compiled``
(the default), ``sqlite`` (the middleware path: one translated SQL
query per tree, executed on in-memory SQLite), and ``vector``
(columnar whole-column kernels) — on two measurements, both recorded to
``results.jsonl`` (experiment ``"backend"``) and dumped as
``BENCH_backend.json`` at the repo root:

* the **R+PS+DS hot path** of the bench_scaling workload — the engine's
  reenactment-query evaluation (``exe_seconds``), swept over relation
  size, once per backend.  The first compiled trial warms the plan
  cache (and the first sqlite trial the connection cache); reported
  numbers are the best of ``TRIALS`` runs,
* a **join-bearing plan** — an equality join plus residual, where the
  compiled backend's hash join and SQLite's own join machinery both
  replace the interpreter's O(n·m) nested loop.

Every backend pair is asserted to produce the identical delta/result —
the benchmark doubles as a coarse three-way differential.  The asserted
speedup floor (≥ 3× compiled-vs-interpreted on the largest hot-path
size, and on the join) remains the acceptance criterion for the
compiled default; the sqlite numbers are reported, not floored — the
middleware pays per-query translation plus data transfer, which is the
paper's architecture, not this reproduction's fast path.  The vector
backend carries its own floor: ≥ 1.0× compiled on the largest
join-heavy plan (the whole point of columnar kernels is to not lose to
row-at-a-time streaming where whole-column work dominates).
"""

import pathlib
import time

import pytest

from repro.bench import print_series_table, run_method, write_bench_report
from repro.core import Method, MahifConfig
from repro.core.data_slicing import slicing_selectivity
from repro.relational import (
    Database,
    Relation,
    Schema,
    evaluate_query,
)
from repro.relational.algebra import Join, RelScan
from repro.relational.expressions import and_, col, eq, gt
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

BACKENDS = ("interpreted", "compiled", "sqlite", "vector")
SIZES = tuple(int(SMALL_ROWS * factor) for factor in (1.0, 2.0, 4.0))
UPDATES = 20
TRIALS = 3
JOIN_SIZES = (300, 1000, 2000)
#: Larger join sizes for the compiled-vs-vector margin sweep: the
#: interpreter's O(n*m) nested loop makes it unmeasurable here, but the
#: two fast backends sweep these in milliseconds — and this is the
#: scale where columnar fixed costs (cache build, key coding) are
#: amortised, so the asserted floor is stable.
VECTOR_JOIN_SIZES = (2000, 4000, 8000)
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_backend.json"


def _best_of(fn, trials=TRIALS):
    best = None
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _hot_path_rows():
    out = []
    for rows in SIZES:
        spec = WorkloadSpec(
            dataset="taxi", rows=rows, updates=UPDATES, seed=7
        )
        workload = build_workload(spec)
        timings = {}
        deltas = {}
        for backend in BACKENDS:
            config = MahifConfig(backend=backend)
            best_exe = None
            for _ in range(TRIALS):
                timing = run_method(workload.query, Method.R_PS_DS, config)
                exe = timing.exe_seconds
                best_exe = exe if best_exe is None else min(best_exe, exe)
                deltas[backend] = timing.result.delta
            timings[backend] = best_exe
        for backend in BACKENDS[1:]:
            assert deltas[backend] == deltas["interpreted"], (
                f"{backend} disagrees with the oracle — correctness bug"
            )
        result = run_method(
            workload.query, Method.R_PS_DS, MahifConfig(backend="compiled")
        ).result
        selectivity = (
            {
                rel: kept / total if total else 1.0
                for rel, (kept, total) in slicing_selectivity(
                    dict(result.data_slicing.for_original),
                    result.base_database,
                ).items()
            }
            if result.data_slicing and result.base_database
            else {}
        )
        row = {
            "rows": rows,
            "updates": UPDATES,
            "interpreted_exe": timings["interpreted"],
            "compiled_exe": timings["compiled"],
            "sqlite_exe": timings["sqlite"],
            "vector_exe": timings["vector"],
            "speedup": timings["interpreted"] / timings["compiled"],
            "speedup_sqlite": timings["interpreted"] / timings["sqlite"],
            "speedup_vector": timings["interpreted"] / timings["vector"],
            "ds_selectivity": selectivity,
        }
        record("backend", {k: v for k, v in row.items() if k != "ds_selectivity"})
        out.append(row)
    return out


def _join_rows():
    out = []
    for rows in JOIN_SIZES:
        db, plan = _join_db_and_plan(rows)
        results = {}
        timings = {}
        for backend in BACKENDS:
            # One interpreted trial is enough: the nested loop is O(n*m)
            # and dominates the benchmark's wall time.  The sqlite
            # backend's extra trials let the connection cache absorb the
            # one-time load, which is the steady state the engine sees.
            timings[backend], results[backend] = _best_of(
                lambda backend=backend: evaluate_query(
                    plan, db, backend=backend
                ),
                trials=1 if backend == "interpreted" else TRIALS,
            )
        for backend in BACKENDS[1:]:
            assert results[backend].tuples == results["interpreted"].tuples
        row = {
            "rows_per_side": rows,
            "interpreted": timings["interpreted"],
            "compiled": timings["compiled"],
            "sqlite": timings["sqlite"],
            "vector": timings["vector"],
            "speedup": timings["interpreted"] / timings["compiled"],
            "speedup_sqlite": timings["interpreted"] / timings["sqlite"],
            "speedup_vector": timings["interpreted"] / timings["vector"],
            "vector_vs_compiled": timings["compiled"] / timings["vector"],
        }
        record("backend_join", row)
        out.append(row)
    return out


def _join_db_and_plan(rows):
    db = Database(
        {
            "L": Relation.from_rows(
                Schema.of("k", "v"),
                [(i % (rows // 2), i) for i in range(rows)],
            ),
            "R2": Relation.from_rows(
                Schema.of("k2", "w"),
                [(i % (rows // 2), i * 2) for i in range(rows)],
            ),
        }
    )
    plan = Join(
        RelScan("L"),
        RelScan("R2"),
        and_(eq(col("k"), col("k2")), gt(col("w"), 10)),
    )
    return db, plan


def _join_vector_rows():
    """Compiled-vs-vector margin on the join-heavy plan, larger sizes.

    The floor asserted on this sweep must survive noisy CI runners, so
    trials are *interleaved* (a noisy window hits both backends, not
    just one), each backend gets an untimed warmup (plan and columnar
    caches), and the collector is paused while timing.
    """
    import gc

    out = []
    for rows in VECTOR_JOIN_SIZES:
        db, plan = _join_db_and_plan(rows)
        results = {
            backend: evaluate_query(plan, db, backend=backend)  # warmup
            for backend in ("compiled", "vector")
        }
        assert results["vector"].tuples == results["compiled"].tuples
        times = {"compiled": [], "vector": []}
        gc.collect()
        enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(7):
                for backend in ("compiled", "vector"):
                    start = time.perf_counter()
                    evaluate_query(plan, db, backend=backend)
                    times[backend].append(time.perf_counter() - start)
        finally:
            if enabled:
                gc.enable()
        row = {
            "rows_per_side": rows,
            "compiled": min(times["compiled"]),
            "vector": min(times["vector"]),
            "vector_vs_compiled": min(times["compiled"])
            / min(times["vector"]),
        }
        record("backend_join_vector", row)
        out.append(row)
    return out


def test_backend_compiled_vs_interpreted(benchmark):
    def run():
        return {
            "hot_path": _hot_path_rows(),
            "join": _join_rows(),
            "join_vector": _join_vector_rows(),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    write_bench_report(
        TARGET,
        "backend",
        {
            "dataset": "taxi",
            "updates": UPDATES,
            "method": Method.R_PS_DS.value,
            "backends": list(BACKENDS),
            "sizes": list(SIZES),
            "trials": TRIALS,
            "metric": "exe_seconds (reenactment evaluation), best of trials",
        },
        hot_path=data["hot_path"],
        join=data["join"],
        join_vector=data["join_vector"],
    )

    print_series_table(
        "Backend — R+PS+DS exe: four-way (taxi, U20)",
        ["rows", "interpreted", "compiled", "sqlite", "vector", "speedup",
         "spd_sqlite", "spd_vector"],
        [
            [
                r["rows"], r["interpreted_exe"], r["compiled_exe"],
                r["sqlite_exe"], r["vector_exe"], r["speedup"],
                r["speedup_sqlite"], r["speedup_vector"],
            ]
            for r in data["hot_path"]
        ],
        note="compiled ≥ 3× on the scaling workload's hot path; sqlite "
        "reported (middleware pays translation + transfer)",
    )
    print_series_table(
        "Backend — equi-join plan: four-way",
        ["rows/side", "interpreted", "compiled", "sqlite", "vector",
         "speedup", "spd_sqlite", "vec/comp"],
        [
            [
                r["rows_per_side"], r["interpreted"], r["compiled"],
                r["sqlite"], r["vector"], r["speedup"],
                r["speedup_sqlite"], r["vector_vs_compiled"],
            ]
            for r in data["join"]
        ],
        note="speedup grows with input size (O(n+m) vs O(n*m)); "
        "vec/comp is the columnar backend's margin over compiled",
    )
    print_series_table(
        "Backend — join margin sweep: vector vs compiled",
        ["rows/side", "compiled", "vector", "vec/comp"],
        [
            [
                r["rows_per_side"], r["compiled"], r["vector"],
                r["vector_vs_compiled"],
            ]
            for r in data["join_vector"]
        ],
        note="floor: vector >= 1.0x compiled on the largest size",
    )

    # Acceptance criteria: ≥ 3× on the largest hot-path size and on the
    # largest join size (compiled vs interpreted; sqlite is reported).
    assert data["hot_path"][-1]["speedup"] >= 3.0, data["hot_path"]
    assert data["join"][-1]["speedup"] >= 3.0, data["join"]
    # Even the middleware must beat the interpreter's nested-loop join.
    assert data["join"][-1]["speedup_sqlite"] >= 1.0, data["join"]
    # The columnar backend must not lose to row-at-a-time streaming on
    # the join-heavy plan at bench scale (asserted on the largest size
    # of the dedicated sweep, where columnar fixed costs are amortised).
    assert data["join_vector"][-1]["vector_vs_compiled"] >= 1.0, (
        data["join_vector"]
    )
