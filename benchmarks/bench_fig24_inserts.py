"""Figure 24: histories with 10% inserts (I10, T10), two table sizes.

Paper shape: inserts are cheap for Mahif — the insert-split optimization
(Section 10) reenacts the unsliced prefix over only the handful of
inserted tuples, so runtimes sit below the pure-update workloads of
Figure 22 at the same U.
"""

import pytest

from repro.core import Method

from .common import LARGE_ROWS, SMALL_ROWS, print_sweep, run_sweep

METHODS = [Method.R_PS, Method.R_DS, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,rows",
    [("Size = 5M", SMALL_ROWS), ("Size = 50M", LARGE_ROWS)],
    ids=["small", "large"],
)
def test_fig24(benchmark, label, rows):
    def run():
        return run_sweep(
            "fig24",
            METHODS,
            dataset="taxi",
            rows=rows,
            insert_pct=10.0,
            affected_pct=10.0,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 24 — inserts I10 T10, {label}",
        sweep,
        METHODS,
        note="insert statements are cheap; shapes match Figure 22",
    )
