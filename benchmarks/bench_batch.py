"""Batched what-if answering: one ``answer_batch`` call vs a sequential
``answer`` loop (see DESIGN.md, "Batched answering").

The workload is the scaling workload's shape (taxi, U20) with the
modification moved deep into the history — the interactive-service
pattern: one shared real history, many users probing different
hypothetical constants for the same late statement.  A batch of
``BATCH_SIZE`` distinct queries then shares (a) the time travel to the
prefix version before the modified position, computed once instead of
once per query, and (b) reenactment planning for queries that slice to
the same statement set; with ``MAHIF_BENCH_BATCH_WORKERS`` > 1 the
per-(query, relation) delta evaluations additionally fan out over a
worker pool (processes for the in-process backends, threads for
sqlite).

Every backend's batch deltas are asserted identical to its sequential
loop's, and the three backends are cross-checked against the
interpreter.  The asserted floor — ≥ 2× for a 16-query batch on the
compiled backend, R+PS+DS — applies at default scale and above
(``ROWS >= 2400``); the CI smoke job runs below it (and with a worker
pool, whose pickling overhead the two-core runner cannot always hide),
so there the numbers are recorded but not floored.

Results land in ``results.jsonl`` (experiment ``"batch"``) and
``BENCH_batch.json`` at the repo root.
"""

import os
import pathlib
import time

from repro.bench import print_series_table, run_batch, write_bench_report
from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.relational.expressions import Attr
from repro.relational.statements import UpdateStatement
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

BACKENDS = ("interpreted", "compiled", "sqlite")
BATCH_SIZE = int(os.environ.get("MAHIF_BENCH_BATCH", "16"))
WORKERS = int(os.environ.get("MAHIF_BENCH_BATCH_WORKERS", "0"))
ROWS = 2 * SMALL_ROWS
UPDATES = 20
#: The replaced statement's 1-based position: deep in the history, so the
#: shared prefix is long (the what-if probes a *recent* decision).
MOD_POSITION = 16
SPEEDUP_FLOOR = 2.0
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_batch.json"


def _batch_queries(workload) -> list[HistoricalWhatIfQuery]:
    """``BATCH_SIZE`` distinct what-ifs over one shared history: each
    replaces the same late statement with a different value shift."""
    base = workload.history[MOD_POSITION]
    value = workload.value_attribute
    queries = []
    for i in range(BATCH_SIZE):
        replacement = UpdateStatement(
            base.relation,
            {value: Attr(value) + (3 + i)},
            base.condition,
        )
        queries.append(
            HistoricalWhatIfQuery(
                workload.history,
                workload.database,
                (Replace(MOD_POSITION, replacement),),
            )
        )
    return queries


def _sequential_loop(queries, config) -> tuple[float, list]:
    engine = Mahif(config)
    start = time.perf_counter()
    results = [engine.answer(query, Method.R_PS_DS) for query in queries]
    return time.perf_counter() - start, [r.delta for r in results]


def _cold_caches():
    """Both legs start cold: the sequential loop runs first and would
    otherwise pre-warm the compile/connection caches for the batch,
    inflating the measured speedup with a cache-warming artifact."""
    from repro.relational.exec import clear_caches

    clear_caches()


def _backend_rows():
    workload = build_workload(
        WorkloadSpec(dataset="taxi", rows=ROWS, updates=UPDATES, seed=7)
    )
    queries = _batch_queries(workload)
    out = []
    reference_deltas = None
    for backend in BACKENDS:
        config = MahifConfig(backend=backend, batch_workers=WORKERS)
        _cold_caches()
        sequential_seconds, sequential_deltas = _sequential_loop(
            queries, config
        )
        _cold_caches()
        timing = run_batch(queries, Method.R_PS_DS, config)
        assert list(timing.deltas) == sequential_deltas, (
            f"{backend}: batch deltas differ from the sequential loop — "
            "correctness bug"
        )
        if reference_deltas is None:
            reference_deltas = sequential_deltas
        else:
            assert sequential_deltas == reference_deltas, (
                f"{backend} disagrees with the oracle — correctness bug"
            )
        row = {
            "backend": backend,
            "rows": ROWS,
            "updates": UPDATES,
            "batch_size": BATCH_SIZE,
            "workers": WORKERS,
            "sequential_seconds": sequential_seconds,
            "batch_seconds": timing.total_seconds,
            "speedup": sequential_seconds / timing.total_seconds,
        }
        record("batch", row)
        out.append(row)
    return out


def test_batch_vs_sequential(benchmark):
    rows = benchmark.pedantic(_backend_rows, rounds=1, iterations=1)

    write_bench_report(
        TARGET,
        "batch",
        {
            "dataset": "taxi",
            "rows": ROWS,
            "updates": UPDATES,
            "modified_position": MOD_POSITION,
            "batch_size": BATCH_SIZE,
            "workers": WORKERS,
            "method": Method.R_PS_DS.value,
            "backends": list(BACKENDS),
            "metric": "wall seconds: sequential answer loop vs one "
            "answer_batch call",
        },
        backends=rows,
    )

    print_series_table(
        f"Batch — {BATCH_SIZE} queries, one shared history (taxi, U"
        f"{UPDATES}, R+PS+DS)",
        ["backend", "sequential", "batch", "speedup"],
        [
            [r["backend"], r["sequential_seconds"], r["batch_seconds"],
             r["speedup"]]
            for r in rows
        ],
        note="shared time travel + shared plans; ≥ 2× on compiled at "
        "default scale",
    )

    if ROWS >= 2400 and WORKERS == 0:
        by_backend = {r["backend"]: r for r in rows}
        assert by_backend["compiled"]["speedup"] >= SPEEDUP_FLOOR, (
            "batched answering no longer pays for itself on the compiled "
            f"backend: {by_backend['compiled']['speedup']:.2f}x < "
            f"{SPEEDUP_FLOOR}x"
        )
