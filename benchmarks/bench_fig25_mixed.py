"""Figure 25: mixed workloads — 10% inserts, 10% deletes, T10.

Paper shape: R+PS+DS outperforms the single-optimization methods on mixed
workloads; deletes and inserts are cheaper to process than updates (fewer
CASE expressions to reenact, trivial slicing constraints), so runtimes
sit below the pure-update equivalents.
"""

import pytest

from repro.core import Method

from .common import LARGE_ROWS, SMALL_ROWS, print_sweep, run_sweep

METHODS = [Method.R_PS, Method.R_DS, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,rows",
    [("Size = 5M", SMALL_ROWS), ("Size = 50M", LARGE_ROWS)],
    ids=["small", "large"],
)
def test_fig25(benchmark, label, rows):
    def run():
        return run_sweep(
            "fig25",
            METHODS,
            dataset="taxi",
            rows=rows,
            insert_pct=10.0,
            delete_pct=10.0,
            affected_pct=10.0,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 25 — mixed I10 X10 T10, {label}",
        sweep,
        METHODS,
        note="R+PS+DS best overall; mixed histories cheaper than pure updates",
    )
    last = sweep[-1]
    assert last[Method.R_PS_DS.value] <= last[Method.R_DS.value] * 3.0