"""Figure 19: varying the percentage of dependent updates D (at T10, U100).

Paper shape: program slicing loses effectiveness as D grows (more updates
must stay in the slice) until at D100 it pays the MILP cost for no
benefit; adding data slicing (R+PS+DS) mitigates the degradation because
the reenacted input is still filtered.
"""

import pytest

from repro.bench import print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

D_SWEEP = (1.0, 10.0, 50.0, 100.0)
METHODS = [Method.R_PS, Method.R_PS_DS]


def test_fig19(benchmark):
    def run():
        out = []
        for d in D_SWEEP:
            spec = WorkloadSpec(
                dataset="taxi",
                rows=SMALL_ROWS,
                updates=50,
                dependent_pct=d,
                affected_pct=10.0,
                seed=7,
            )
            workload = build_workload(spec)
            timings = run_methods(workload.query, METHODS)
            slice_result = timings[Method.R_PS_DS].result.slice_result
            row = {
                "dependent_pct": d,
                "kept": len(slice_result.kept_positions),
                Method.R_PS.value: timings[Method.R_PS].total_seconds,
                Method.R_PS_DS.value: timings[
                    Method.R_PS_DS
                ].total_seconds,
            }
            record("fig19", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Figure 19 — % dependent updates (U50, T10, taxi)",
        ["D%", "slice kept", "R+PS", "R+PS+DS"],
        [
            [r["dependent_pct"], r["kept"], r["R+PS"], r["R+PS+DS"]]
            for r in sweep
        ],
        note="slice grows with D; R+PS degrades, R+PS+DS mitigates",
    )
    assert sweep[-1]["kept"] > sweep[0]["kept"], (
        "higher D must keep more statements in the slice"
    )
