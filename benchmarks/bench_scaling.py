"""Scaling in relation size (the summary claim of Section 13.7).

Not a numbered figure, but the paper's summary asserts: "our approach
scales well with respect to relation size" and "the cost of program
slicing is independent of the relation size".  This bench sweeps the row
count at fixed U and reports per-method totals plus the PS component,
which must stay flat while everything else grows roughly linearly.
"""

import pytest

from repro.bench import print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

SIZES = tuple(
    int(SMALL_ROWS * factor) for factor in (0.5, 1.0, 2.0, 4.0)
)
METHODS = [Method.R, Method.R_DS, Method.R_PS_DS]


def test_scaling_relation_size(benchmark):
    def run():
        out = []
        for rows in SIZES:
            spec = WorkloadSpec(
                dataset="taxi", rows=rows, updates=20, seed=7
            )
            workload = build_workload(spec)
            timings = run_methods(workload.query, METHODS)
            row = {"rows": rows}
            for method, timing in timings.items():
                row[method.value] = timing.total_seconds
            row["PS"] = timings[Method.R_PS_DS].ps_seconds
            record("scaling", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Scaling — relation size at U20 (taxi)",
        ["rows"] + [m.value for m in METHODS] + ["PS component"],
        [
            [r["rows"]] + [r[m.value] for m in METHODS] + [r["PS"]]
            for r in sweep
        ],
        note="PS flat in relation size; R grows linearly",
    )
    # PS cost must not scale with the data.
    assert sweep[-1]["PS"] < sweep[0]["PS"] * 5 + 0.5
