"""Figure 22: all datasets at T10 (10% of tuples affected per update).

Paper shape: with more data to reenact, the combined R+PS+DS is
consistently an improvement over either optimization alone.
"""

import pytest

from repro.core import Method

from .common import DATASET_GRID, print_sweep, run_sweep

METHODS = [Method.R_PS, Method.R_DS, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,dataset,rows", DATASET_GRID, ids=[d[0] for d in DATASET_GRID]
)
def test_fig22(benchmark, label, dataset, rows):
    def run():
        return run_sweep(
            "fig22", METHODS, dataset=dataset, rows=rows, affected_pct=10.0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 22 — datasets at T10, {label}",
        sweep,
        METHODS,
        note="R+PS+DS at or below the individual optimizations",
    )
