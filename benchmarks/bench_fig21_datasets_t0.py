"""Figure 21: all datasets at very low selectivity (T0, <1% affected).

Paper shape: at tiny selectivity R+DS is extremely competitive — the
filtered input is nearly empty, so the extra MILP cost of R+PS+DS may not
pay off on smaller relations; on larger relations program slicing's
size-independent cost amortizes.
"""

import pytest

from repro.core import Method

from .common import DATASET_GRID, print_sweep, run_sweep

METHODS = [Method.R_PS, Method.R_DS, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,dataset,rows", DATASET_GRID, ids=[d[0] for d in DATASET_GRID]
)
def test_fig21(benchmark, label, dataset, rows):
    def run():
        return run_sweep(
            "fig21",
            METHODS,
            dataset=dataset,
            rows=rows,
            affected_pct=0.5,  # "T0": below 1%
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 21 — datasets at T0, {label}",
        sweep,
        METHODS,
        note="R+DS competitive with R+PS+DS at sub-1% selectivity",
    )
