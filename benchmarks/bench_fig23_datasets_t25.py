"""Figure 23: all datasets at T25 (25% of tuples affected per update).

Paper shape: same as T10 but with the data-slicing advantage shrinking —
a quarter of the table passes the filter, so the combined method's win
comes increasingly from program slicing.
"""

import pytest

from repro.core import Method

from .common import DATASET_GRID, print_sweep, run_sweep

METHODS = [Method.R_PS, Method.R_DS, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,dataset,rows", DATASET_GRID, ids=[d[0] for d in DATASET_GRID]
)
def test_fig23(benchmark, label, dataset, rows):
    def run():
        return run_sweep(
            "fig23", METHODS, dataset=dataset, rows=rows, affected_pct=25.0
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 23 — datasets at T25, {label}",
        sweep,
        METHODS,
        note="DS filters less at T25; PS contribution dominates the win",
    )
