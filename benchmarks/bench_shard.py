"""Sharded reenactment vs the adaptive planner on a large workload
(see DESIGN.md, "Sharded execution" and "Adaptive planning").

The workload is the interactive pattern sharding targets: a large
relation, a history of range-predicate updates whose windows sit in a
narrow key region, and a what-if replacing one of them.  Range
partitioning on the condition column clusters the affected window into
one shard, so skip routing proves the other shards untouched and drops
them from reenactment entirely.

Measured per method (R, R+DS, R+PS, R+PS+DS), all on the compiled
backend, each timing the min of ``TRIALS`` runs:

* the unsharded baseline (``shards=1``),
* the static 4-shard configurations (serial and pooled) — the PR-5
  rows, which this table shows are a *slowdown* on R+PS+DS,
* ``shards="auto"`` — the cost-based planner's choice, recorded with
  the shard/worker counts it picked.

Every delta is asserted identical to the unsharded oracle's.  Two
floors are enforced whenever the workload is at least default scale
(``ROWS >= 2000``; the CI shard-smoke job runs at default scale):

* the static floor — ≥ 1.5× for ``shards=4`` vs ``shards=1`` on plain
  reenactment (the PR-5 headline, unchanged),
* the planner floor — ``auto`` ≥ 1.0× the unsharded baseline on
  *every* method, within ``NOISE_TOLERANCE`` (min-of-N timings on a
  busy host still jitter a few percent; the tolerance is well below
  the 19–34% regression the static 4-shard config shows on R+PS+DS).

Results land in ``results.jsonl`` (experiment ``"shard"``) and
``BENCH_shard.json`` at the repo root.
"""

import os
import pathlib
import time

from repro.bench import print_series_table, write_bench_report
from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.relational import Database, History, Relation, Schema
from repro.relational.expressions import Attr, and_, ge, le
from repro.relational.statements import UpdateStatement

from .common import record

ROWS = int(os.environ.get("MAHIF_BENCH_SHARD_ROWS", "40000"))
UPDATES = int(os.environ.get("MAHIF_BENCH_SHARD_UPDATES", "12"))
TRIALS = int(os.environ.get("MAHIF_BENCH_SHARD_TRIALS", "5"))
SHARDS = 4
#: The affected key window: everything the history (and the what-if)
#: touches lives in the lowest eighth of the key space, so range
#: partitioning at 4 shards isolates it in shard 0.
WINDOW = ROWS // 8
#: Modifying the first statement keeps the (shared) time-travel prefix
#: empty, so the measured difference is reenactment itself — the part
#: sharding scales out (a deployed service gets its start versions from
#: the history store's checkpoints either way).
MOD_POSITION = 1
SPEEDUP_FLOOR = 1.5
#: The planner's promise is "never slower than shards=1"; min-of-N wall
#: timings still jitter a few percent, so the floor carries a small
#: documented tolerance instead of flaking.
AUTO_FLOOR = 1.0
NOISE_TOLERANCE = 0.08
#: Sub-100ms methods (R+DS at default scale runs in ~25ms) jitter more
#: than the ratio tolerance between runs even as a min-of-N; an
#: absolute slack covers that scheduler noise without masking a real
#: regression at scale — the static 4-shard R+PS+DS slowdown this gate
#: exists to catch costs 60–200ms, far past it.
ABS_NOISE_SECONDS = 0.02
METHODS = (Method.R, Method.R_DS, Method.R_PS, Method.R_PS_DS)
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_shard.json"


def _workload() -> HistoricalWhatIfQuery:
    # Payload columns beyond (k, v) make every reenactment projection
    # level carry realistic per-row width, the work sharding scales out;
    # each update touches two value columns (a fee and a running total,
    # say), which is what a transactional history looks like.
    schema = Schema(("k", "a", "b", "c", "d", "v", "w"))
    relation = Relation.from_rows(
        schema,
        (
            (
                k, k % 13, float(k % 29), k % 7, float(k % 11),
                float(k % 97), float(k % 53),
            )
            for k in range(ROWS)
        ),
    )
    database = Database({"data": relation})
    statements = []
    for i in range(UPDATES):
        low = (i * 7) % max(WINDOW - 50, 1)
        statements.append(
            UpdateStatement(
                "data",
                {
                    "v": Attr("v") + (1 + i),
                    "w": Attr("w") + Attr("v") * 0.5,
                },
                and_(ge(Attr("k"), low), le(Attr("k"), low + 40)),
            )
        )
    history = History.of(*statements)
    base = history[MOD_POSITION]
    replacement = UpdateStatement(
        "data",
        {"v": Attr("v") + 999, "w": Attr("w") + Attr("v")},
        base.condition,
    )
    return HistoricalWhatIfQuery(
        history, database, (Replace(MOD_POSITION, replacement),)
    )


def _cold_caches():
    from repro.relational.exec import clear_caches

    clear_caches()


def _timed_answer(query, method, config):
    """Min-of-``TRIALS`` answer time (caches cold before the first
    trial, so the min reports steady-state service latency)."""
    engine = Mahif(config)
    _cold_caches()
    best, result = float("inf"), None
    for _ in range(max(1, TRIALS)):
        start = time.perf_counter()
        result = engine.answer(query, method)
        best = min(best, time.perf_counter() - start)
    return best, result


def _shard_rows():
    query = _workload()
    out = []
    for method in METHODS:
        baseline_seconds, oracle = _timed_answer(
            query, method, MahifConfig(backend="compiled")
        )

        def row_for(label, config):
            seconds, result = _timed_answer(query, method, config)
            assert result.delta == oracle.delta, (
                f"sharded delta differs from the unsharded oracle "
                f"({method.value}, shards={label}) — correctness bug"
            )
            entry = {
                "method": method.value,
                "rows": ROWS,
                "updates": UPDATES,
                "shards": label,
                "shard_workers": config.shard_workers,
                "unsharded_seconds": baseline_seconds,
                "sharded_seconds": seconds,
                "speedup": baseline_seconds / seconds,
            }
            choice = result.planner_choice
            if choice is not None:
                entry["chosen_shards"] = choice.shards
                entry["chosen_workers"] = choice.shard_workers
                entry["planner_reason"] = choice.reason
            record("shard", entry)
            out.append(entry)
            return entry

        for workers in (0, SHARDS):
            row_for(
                SHARDS,
                MahifConfig(
                    backend="compiled",
                    shards=SHARDS,
                    shard_workers=workers,
                ),
            )
        row_for("auto", MahifConfig(backend="compiled", shards="auto"))
    return out


def test_sharded_vs_unsharded(benchmark):
    rows = benchmark.pedantic(_shard_rows, rounds=1, iterations=1)

    usable_cpus = len(os.sched_getaffinity(0))
    write_bench_report(
        TARGET,
        "shard",
        {
            "rows": ROWS,
            "updates": UPDATES,
            "trials": TRIALS,
            "modified_position": MOD_POSITION,
            "shards": SHARDS,
            "backend": "compiled",
            "scheme": "range",
            "usable_cpus": usable_cpus,
            "speedup_floor": SPEEDUP_FLOOR,
            "auto_floor": AUTO_FLOOR,
            "noise_tolerance": NOISE_TOLERANCE,
            "floor_asserted": ROWS >= 2000,
            "metric": "min-of-trials wall seconds: Mahif.answer at "
            "shards=1 vs static shards=4 and the adaptive planner "
            "(shards=auto)",
        },
        configurations=rows,
    )

    print_series_table(
        f"Sharding — {ROWS} rows, U{UPDATES}, window {WINDOW}, "
        f"static {SHARDS} shards vs auto (compiled, min of {TRIALS})",
        ["method", "shards", "workers", "unsharded", "sharded",
         "speedup"],
        [
            [r["method"],
             r.get("chosen_shards", r["shards"]),
             r.get("chosen_workers", r["shard_workers"]),
             r["unsharded_seconds"], r["sharded_seconds"],
             r["speedup"]]
            for r in rows
        ],
        note="range partitioning + skip routing; floors: static R "
        f">= {SPEEDUP_FLOOR}x, auto >= {AUTO_FLOOR}x per method "
        f"(-{NOISE_TOLERANCE} noise tolerance)",
    )

    if ROWS >= 2000:
        serial = [
            r for r in rows
            if r["method"] == Method.R.value
            and r["shards"] == SHARDS and r["shard_workers"] == 0
        ][0]
        assert serial["speedup"] >= SPEEDUP_FLOOR, (
            "sharded reenactment no longer pays for itself on the "
            f"compiled backend: {serial['speedup']:.2f}x < "
            f"{SPEEDUP_FLOOR}x at {SHARDS} shards"
        )
        if usable_cpus >= 2:
            pooled = [
                r for r in rows
                if r["method"] == Method.R.value
                and r["shards"] == SHARDS
                and r["shard_workers"] == SHARDS
            ][0]
            assert pooled["speedup"] >= SPEEDUP_FLOOR, (
                "pooled sharded reenactment fell below the floor on a "
                f"{usable_cpus}-core host: {pooled['speedup']:.2f}x"
            )
        # The bugfix floor this benchmark previously missed: the gate
        # only watched plain R, so the 4-shard R+PS+DS slowdown
        # shipped.  The planner must now hold every method at >= 1x
        # the unsharded baseline.
        for method in METHODS:
            auto = [
                r for r in rows
                if r["method"] == method.value and r["shards"] == "auto"
            ][0]
            within_slack = (
                auto["sharded_seconds"]
                <= auto["unsharded_seconds"] + ABS_NOISE_SECONDS
            )
            assert (
                auto["speedup"] >= AUTO_FLOOR - NOISE_TOLERANCE
                or within_slack
            ), (
                f"shards=auto regressed {method.value}: "
                f"{auto['speedup']:.2f}x < {AUTO_FLOOR}x (tolerance "
                f"{NOISE_TOLERANCE}) — the planner picked "
                f"{auto.get('chosen_shards')} shards"
            )
