"""Sharded reenactment: 4 shards vs 1 on a large generated workload
(see DESIGN.md, "Sharded execution").

The workload is the interactive pattern sharding targets: a large
relation, a history of range-predicate updates whose windows sit in a
narrow key region, and a what-if replacing one of them.  Range
partitioning on the condition column clusters the affected window into
one shard, so skip routing proves the other shards untouched and drops
them from reenactment entirely — the speedup source that holds even on
a single core, with worker-pool parallelism stacking on top when the
machine has cores to spare (``shard_workers`` rows are recorded either
way, but only floored on multi-core hosts).

Every sharded delta is asserted identical to the unsharded oracle's,
and the headline floor — ≥ 1.5× for ``shards=4`` vs ``shards=1`` on the
compiled backend, plain reenactment — is asserted whenever the workload
is at least default scale (``ROWS >= 2000``; the CI shard-smoke job
runs at default scale, so the floor is enforced there).

Results land in ``results.jsonl`` (experiment ``"shard"``) and
``BENCH_shard.json`` at the repo root.
"""

import os
import pathlib
import time

from repro.bench import print_series_table, write_bench_report
from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.relational import Database, History, Relation, Schema
from repro.relational.expressions import Attr, and_, ge, le
from repro.relational.statements import UpdateStatement

from .common import record

ROWS = int(os.environ.get("MAHIF_BENCH_SHARD_ROWS", "40000"))
UPDATES = int(os.environ.get("MAHIF_BENCH_SHARD_UPDATES", "12"))
SHARDS = 4
#: The affected key window: everything the history (and the what-if)
#: touches lives in the lowest eighth of the key space, so range
#: partitioning at 4 shards isolates it in shard 0.
WINDOW = ROWS // 8
#: Modifying the first statement keeps the (shared) time-travel prefix
#: empty, so the measured difference is reenactment itself — the part
#: sharding scales out (a deployed service gets its start versions from
#: the history store's checkpoints either way).
MOD_POSITION = 1
SPEEDUP_FLOOR = 1.5
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_shard.json"


def _workload() -> HistoricalWhatIfQuery:
    # Payload columns beyond (k, v) make every reenactment projection
    # level carry realistic per-row width, the work sharding scales out;
    # each update touches two value columns (a fee and a running total,
    # say), which is what a transactional history looks like.
    schema = Schema(("k", "a", "b", "c", "d", "v", "w"))
    relation = Relation.from_rows(
        schema,
        (
            (
                k, k % 13, float(k % 29), k % 7, float(k % 11),
                float(k % 97), float(k % 53),
            )
            for k in range(ROWS)
        ),
    )
    database = Database({"data": relation})
    statements = []
    for i in range(UPDATES):
        low = (i * 7) % max(WINDOW - 50, 1)
        statements.append(
            UpdateStatement(
                "data",
                {
                    "v": Attr("v") + (1 + i),
                    "w": Attr("w") + Attr("v") * 0.5,
                },
                and_(ge(Attr("k"), low), le(Attr("k"), low + 40)),
            )
        )
    history = History.of(*statements)
    base = history[MOD_POSITION]
    replacement = UpdateStatement(
        "data",
        {"v": Attr("v") + 999, "w": Attr("w") + Attr("v")},
        base.condition,
    )
    return HistoricalWhatIfQuery(
        history, database, (Replace(MOD_POSITION, replacement),)
    )


def _cold_caches():
    from repro.relational.exec import clear_caches

    clear_caches()


def _timed_answer(query, method, config):
    engine = Mahif(config)
    start = time.perf_counter()
    result = engine.answer(query, method)
    return time.perf_counter() - start, result.delta


def _shard_rows():
    query = _workload()
    out = []
    for method in (Method.R, Method.R_PS_DS):
        _cold_caches()
        baseline_seconds, oracle = _timed_answer(
            query, method, MahifConfig(backend="compiled")
        )
        for shards, workers in ((SHARDS, 0), (SHARDS, SHARDS)):
            config = MahifConfig(
                backend="compiled", shards=shards, shard_workers=workers
            )
            _cold_caches()
            seconds, delta = _timed_answer(query, method, config)
            assert delta == oracle, (
                f"sharded delta differs from the unsharded oracle "
                f"({method.value}, shards={shards}) — correctness bug"
            )
            row = {
                "method": method.value,
                "rows": ROWS,
                "updates": UPDATES,
                "shards": shards,
                "shard_workers": workers,
                "unsharded_seconds": baseline_seconds,
                "sharded_seconds": seconds,
                "speedup": baseline_seconds / seconds,
            }
            record("shard", row)
            out.append(row)
    return out


def test_sharded_vs_unsharded(benchmark):
    rows = benchmark.pedantic(_shard_rows, rounds=1, iterations=1)

    usable_cpus = len(os.sched_getaffinity(0))
    write_bench_report(
        TARGET,
        "shard",
        {
            "rows": ROWS,
            "updates": UPDATES,
            "modified_position": MOD_POSITION,
            "shards": SHARDS,
            "backend": "compiled",
            "scheme": "range",
            "usable_cpus": usable_cpus,
            "speedup_floor": SPEEDUP_FLOOR,
            "floor_asserted": ROWS >= 2000,
            "metric": "wall seconds: Mahif.answer at shards=1 vs "
            "shards=4 (skip routing + optional worker pool)",
        },
        configurations=rows,
    )

    print_series_table(
        f"Sharding — {ROWS} rows, U{UPDATES}, window {WINDOW}, "
        f"{SHARDS} shards (compiled)",
        ["method", "workers", "unsharded", "sharded", "speedup"],
        [
            [r["method"], r["shard_workers"], r["unsharded_seconds"],
             r["sharded_seconds"], r["speedup"]]
            for r in rows
        ],
        note="range partitioning + skip routing; ≥ 1.5× floor on plain "
        "reenactment at default scale",
    )

    if ROWS >= 2000:
        serial = [
            r for r in rows
            if r["method"] == Method.R.value and r["shard_workers"] == 0
        ][0]
        assert serial["speedup"] >= SPEEDUP_FLOOR, (
            "sharded reenactment no longer pays for itself on the "
            f"compiled backend: {serial['speedup']:.2f}x < "
            f"{SPEEDUP_FLOOR}x at {SHARDS} shards"
        )
        if usable_cpus >= 2:
            pooled = [
                r for r in rows
                if r["method"] == Method.R.value
                and r["shard_workers"] == SHARDS
            ][0]
            assert pooled["speedup"] >= SPEEDUP_FLOOR, (
                "pooled sharded reenactment fell below the floor on a "
                f"{usable_cpus}-core host: {pooled['speedup']:.2f}x"
            )
