"""Observability overhead benchmark (see DESIGN.md "Observability").

Measures what the tracing instrumentation costs on the engine's hot
path — the bench_backend smoke workload answered with R+PS+DS — in
three configurations, best of ``TRIALS`` each:

* **stubbed** — every ``trace.span`` / ``trace.record_span`` /
  ``trace.start_trace`` call site is monkeypatched to a do-nothing
  stub: the closest approximation to the uninstrumented engine without
  maintaining a second copy of the code,
* **dormant** — the shipped default: real instrumentation, no sink
  configured, so every call site takes the thread-local-read fast
  path.  This is the configuration the ≤5% bound is about, and the
  benchmark **asserts** it: ``dormant ≤ stubbed × MAHIF_OBS_GATE``
  (default 1.05) plus a small absolute slack for scheduler noise,
* **traced** — sample=1.0 with a discard sink: the full price of span
  construction and root-close serialization, reported but not gated
  (operators opt into it per deployment).

The run also emits ``benchmarks/trace_sample.jsonl`` — one fully
sampled request's span tree, written through the real file sink — which
CI uploads as an artifact so a reviewer can eyeball the taxonomy
without running anything.  Results land in ``results.jsonl``
(experiment ``"obs"``) and ``BENCH_obs.json`` at the repo root.
"""

import json
import os
import pathlib
import time

from repro.bench import print_series_table, run_method, write_bench_report
from repro.core import MahifConfig, Method
from repro.obs import trace
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

TRIALS = 5
UPDATES = 20
#: Relative overhead gate for the dormant path (CI asserts this).
GATE = float(os.environ.get("MAHIF_OBS_GATE", "1.05"))
#: Absolute slack absorbing scheduler jitter on sub-second workloads.
SLACK_SECONDS = float(os.environ.get("MAHIF_OBS_SLACK", "0.02"))
TARGET = pathlib.Path(__file__).resolve().parents[1] / "BENCH_obs.json"
SAMPLE_PATH = pathlib.Path(__file__).with_name("trace_sample.jsonl")


def _best_of(fn, trials=TRIALS):
    best = None
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _answer(workload):
    return run_method(
        workload.query, Method.R_PS_DS, MahifConfig()
    ).result


def _stubbed(fn):
    """Run ``fn`` with every tracing entry point replaced by a no-op."""
    saved = (trace.span, trace.record_span, trace.start_trace)
    trace.span = lambda name, **attrs: trace._NOOP
    trace.record_span = lambda name, seconds, **attrs: None
    trace.start_trace = lambda name, trace_id=None, **attrs: trace._NOOP
    try:
        return fn()
    finally:
        trace.span, trace.record_span, trace.start_trace = saved


def _overhead_row():
    workload = build_workload(
        WorkloadSpec(dataset="taxi", rows=SMALL_ROWS, updates=UPDATES, seed=7)
    )
    trace.configure_tracing(None)
    stub_best, stub_result = _stubbed(
        lambda: _best_of(lambda: _answer(workload))
    )
    dormant_best, dormant_result = _best_of(lambda: _answer(workload))
    assert dormant_result.delta == stub_result.delta, (
        "instrumentation changed the answer — correctness bug"
    )
    trace.configure_tracing(lambda line: None, sample=1.0)
    try:
        def traced_answer():
            with trace.start_trace("request", route="bench"):
                return _answer(workload)

        traced_best, _ = _best_of(traced_answer)
    finally:
        trace.configure_tracing(None)
    row = {
        "rows": SMALL_ROWS,
        "updates": UPDATES,
        "stubbed": stub_best,
        "dormant": dormant_best,
        "traced": traced_best,
        "dormant_overhead": dormant_best / stub_best,
        "traced_overhead": traced_best / stub_best,
        "gate": GATE,
    }
    record("obs", row)
    assert dormant_best <= stub_best * GATE + SLACK_SECONDS, (
        f"dormant tracing overhead {row['dormant_overhead']:.3f}x exceeds "
        f"the {GATE}x gate (stubbed {stub_best:.4f}s, "
        f"dormant {dormant_best:.4f}s)"
    )
    return row


def _emit_trace_sample(workload):
    """One fully sampled request through the real file sink."""
    SAMPLE_PATH.unlink(missing_ok=True)
    trace.configure_tracing(str(SAMPLE_PATH), sample=1.0)
    try:
        with trace.start_trace("request", route="bench") as root:
            root.set_attribute("dataset", "taxi")
            _answer(workload)
    finally:
        trace.configure_tracing(None)
    spans = [
        json.loads(line)
        for line in SAMPLE_PATH.read_text().splitlines()
    ]
    names = {span["name"] for span in spans}
    assert {"request", "plan", "execute"} <= names, names
    assert len({span["trace_id"] for span in spans}) == 1
    return {"spans": len(spans), "names": sorted(names)}


def test_tracing_overhead_is_bounded(benchmark):
    workload = build_workload(
        WorkloadSpec(dataset="taxi", rows=SMALL_ROWS, updates=UPDATES, seed=7)
    )

    def run():
        return {
            "overhead": _overhead_row(),
            "trace_sample": _emit_trace_sample(workload),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    write_bench_report(
        TARGET,
        "obs",
        {
            "dataset": "taxi",
            "rows": SMALL_ROWS,
            "updates": UPDATES,
            "method": Method.R_PS_DS.value,
            "trials": TRIALS,
            "gate": GATE,
            "metric": "answer wall seconds, best of trials",
        },
        overhead=data["overhead"],
        trace_sample=data["trace_sample"],
    )

    row = data["overhead"]
    print_series_table(
        "Observability — dormant tracing overhead (taxi, U20)",
        ["rows", "stubbed", "dormant", "traced", "dorm_ovh", "trc_ovh"],
        [
            [
                row["rows"], row["stubbed"], row["dormant"], row["traced"],
                row["dormant_overhead"], row["traced_overhead"],
            ]
        ],
        note=f"dormant ≤ {GATE}x stubbed asserted; traced (sample=1.0) "
        "reported — operators opt in per deployment",
    )
