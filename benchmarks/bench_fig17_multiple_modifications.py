"""Figure 17: varying the number of modifications M ∈ {1, 5, 10, 20}.

Paper shape: all methods slow down with more modifications (larger MILP
for PS, wider pushed-down conditions for DS), but R+PS+DS remains an
effective optimization over plain R; R+DS degrades the most because the
data-slicing conditions for late modifications embed reenactment-like
CASE nests.
"""

import pytest

from repro.bench import print_series_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

MOD_SWEEP = (1, 5, 10, 20)
METHODS = [Method.R, Method.R_PS, Method.R_DS, Method.R_PS_DS]


def test_fig17(benchmark):
    def run():
        out = []
        for m in MOD_SWEEP:
            spec = WorkloadSpec(
                dataset="taxi",
                rows=SMALL_ROWS,
                updates=50,
                dependent_pct=50.0,  # enough dependent updates to modify
                modifications=m,
                seed=7,
            )
            workload = build_workload(spec)
            timings = run_methods(workload.query, METHODS)
            row = {"modifications": m}
            for method, timing in timings.items():
                row[method.value] = timing.total_seconds
            record("fig17", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        "Figure 17 — multiple modifications (U50, taxi)",
        ["M"] + [m.value for m in METHODS],
        [
            [r["modifications"]] + [r[m.value] for m in METHODS]
            for r in sweep
        ],
        note="runtimes grow with M; R+PS+DS stays below R",
    )
