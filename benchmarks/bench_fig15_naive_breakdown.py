"""Figure 15: cost breakdown of the naive method (Creation / Exe / Delta).

Paper shape: execution of the modified history dominates and grows with
U; copy creation is flat in U (it depends only on the relation size);
the delta query is a roughly constant overhead per relation size.
"""

import pytest

from repro.core import naive_what_if
from repro.bench import print_series_table
from repro.workloads import WorkloadSpec, build_workload

from .common import LARGE_ROWS, SMALL_ROWS, U_SWEEP, record


@pytest.mark.parametrize(
    "label,rows",
    [("Size = 5M", SMALL_ROWS), ("Size = 50M", LARGE_ROWS)],
    ids=["small", "large"],
)
def test_fig15(benchmark, label, rows):
    def run():
        out = []
        for u in U_SWEEP:
            spec = WorkloadSpec(dataset="taxi", rows=rows, updates=u, seed=7)
            workload = build_workload(spec)
            result = naive_what_if(workload.query)
            row = {
                "updates": u,
                "rows": rows,
                "creation": result.creation_seconds,
                "exe": result.execution_seconds,
                "delta": result.delta_seconds,
            }
            record("fig15", row)
            out.append(row)
        return out

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series_table(
        f"Figure 15 — Naive breakdown, {label}",
        ["U", "Creation", "Exe", "Delta"],
        [
            [r["updates"], r["creation"], r["exe"], r["delta"]]
            for r in sweep
        ],
        note="Exe grows with U and dominates; Creation/Delta flat in U",
    )
    assert sweep[-1]["exe"] > sweep[0]["exe"], "Exe must grow with U"
