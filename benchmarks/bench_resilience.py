"""Overload behavior: goodput and tail latency at 2× saturation,
admission control (shedding) on vs off.

The serving tier's claim (DESIGN.md, "Resilience") is that under
overload, *shedding beats queueing*: refusing work beyond
``max_in_flight`` with a fast 503 + Retry-After keeps the admitted
requests' latency bounded, while admitting everything makes every
request slow — the classic goodput collapse.  This benchmark measures
exactly that, with the GIL as the resource under contention (pure-Python
compute serializes, so N concurrent in-flight requests each take ~N×
the solo latency):

1. **Calibrate** — time solo requests to learn the per-request compute
   latency ``L``; the per-request deadline budget is ``D = 6 L``.
2. **Shedding off** (``max_in_flight=0``) — ``CLIENTS`` concurrent
   clients (2× the slot count used in the on-pass) each issue distinct
   what-if queries (no cache hits).  Everything is admitted, everything
   time-shares the GIL, so per-request latency ≈ ``CLIENTS × L > D``.
3. **Shedding on** (``max_in_flight = CLIENTS/2``) — same offered load;
   beyond the slot limit requests are shed and the client retries after
   the server's ``Retry-After`` hint.  Admitted requests see at most
   ``CLIENTS/2`` GIL-sharers, so they finish within budget.

A request is **good** if it succeeded within its deadline budget
(measured client-side; no server-side 504s, so the passes cannot pollute
each other with abandoned computations).  Goodput = good requests /
wall-clock of the pass.  The asserted floor — shedding-on goodput ≥
shedding-off goodput — is the acceptance criterion for admission
control actually buying something under saturation.

Results land in ``results.jsonl`` (experiment ``"resilience"``) and
``BENCH_resilience.json`` at the repo root.
"""

import os
import pathlib
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.bench import print_series_table, write_bench_report
from repro.relational.expressions import Attr
from repro.relational.sqlgen import statement_to_sql
from repro.relational.statements import UpdateStatement
from repro.service import (
    ResilienceConfig,
    ServiceClient,
    ServiceClientError,
    WhatIfServer,
    WhatIfService,
)
from repro.workloads import WorkloadSpec, build_workload

from .common import SMALL_ROWS, record

BACKEND = "compiled"
#: Concurrent clients = 2× the admitted slots: the "2× saturation" load.
CLIENTS = int(os.environ.get("MAHIF_BENCH_RESILIENCE_CLIENTS", "8"))
MAX_IN_FLIGHT = max(CLIENTS // 2, 1)
REQUESTS_PER_CLIENT = int(
    os.environ.get("MAHIF_BENCH_RESILIENCE_REQUESTS", "4")
)
#: Floored: below ~1200 rows the solo latency (~10 ms) is comparable to
#: HTTP + thread-scheduling noise and the pass-boundary transients, and
#: the goodput ordering stops being about admission control at all.
ROWS = max(SMALL_ROWS, 1200)
UPDATES = 20
MOD_POSITION = 16
#: Deadline budget as a multiple of the solo request latency: above the
#: shedding-on in-flight share (MAX_IN_FLIGHT×L), below the shedding-off
#: one (CLIENTS×L).
DEADLINE_FACTOR = 6.0
TARGET = (
    pathlib.Path(__file__).resolve().parents[1] / "BENCH_resilience.json"
)


def _specs(workload, count: int, salt: int) -> list[dict]:
    """``count`` pairwise-distinct single-query specs (never cache
    hits, also across passes thanks to ``salt``)."""
    base = workload.history[MOD_POSITION]
    value = workload.value_attribute
    specs = []
    for i in range(count):
        replacement = UpdateStatement(
            base.relation,
            {value: Attr(value) + (3 + salt * 1000 + i)},
            base.condition,
        )
        specs.append(
            {"replace": [[MOD_POSITION, statement_to_sql(replacement)]]}
        )
    return specs


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _run_pass(
    workload,
    specs: list[dict],
    *,
    max_in_flight: int,
    deadline: float,
    retry_after: float,
) -> dict:
    """One overload pass against a fresh server; per-request latency and
    success are measured client-side against ``deadline``."""
    with tempfile.TemporaryDirectory(prefix="mahif-bench-res-") as root:
        service = WhatIfService(root, default_backend=BACKEND)
        service.register("bench", workload.database, workload.history)
        server = WhatIfServer(
            service,
            port=0,
            resilience=ResilienceConfig(
                max_in_flight=max_in_flight, retry_after=retry_after
            ),
        ).start_background()
        try:
            url = server.url
            outcomes: list[tuple[bool, float]] = []

            def run_client(client_index: int) -> list[tuple[bool, float]]:
                client = ServiceClient(url, retries=25)
                mine = specs[
                    client_index * REQUESTS_PER_CLIENT:
                    (client_index + 1) * REQUESTS_PER_CLIENT
                ]
                results = []
                for spec in mine:
                    begin = time.perf_counter()
                    try:
                        client.whatif("bench", spec, backend=BACKEND)
                        ok = True
                    except ServiceClientError:
                        ok = False
                    latency = time.perf_counter() - begin
                    results.append((ok and latency <= deadline, latency))
                return results

            start = time.perf_counter()
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                for chunk in pool.map(run_client, range(CLIENTS)):
                    outcomes.extend(chunk)
            elapsed = time.perf_counter() - start
            shed_total = server.admission.shed_total
        finally:
            server.shutdown()

    good = sum(1 for ok, _ in outcomes if ok)
    latencies = [latency for _, latency in outcomes]
    return {
        "max_in_flight": max_in_flight,
        "requests": len(outcomes),
        "good": good,
        "goodput_qps": good / elapsed,
        "p50_s": _percentile(latencies, 0.50),
        "p99_s": _percentile(latencies, 0.99),
        "shed_total": shed_total,
        "elapsed_s": elapsed,
    }


def _calibrate(workload) -> float:
    """Solo request latency ``L`` (median of a few warmed requests)."""
    probes = _specs(workload, 4, salt=9)
    with tempfile.TemporaryDirectory(prefix="mahif-bench-res-") as root:
        service = WhatIfService(root, default_backend=BACKEND)
        service.register("bench", workload.database, workload.history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            client = ServiceClient(server.url)
            client.whatif("bench", probes[0], backend=BACKEND)  # warm-up
            samples = []
            for spec in probes[1:]:
                begin = time.perf_counter()
                client.whatif("bench", spec, backend=BACKEND)
                samples.append(time.perf_counter() - begin)
        finally:
            server.shutdown()
    return _percentile(samples, 0.5)


def _run_resilience_bench() -> dict:
    workload = build_workload(
        WorkloadSpec(dataset="taxi", rows=ROWS, updates=UPDATES, seed=7)
    )
    solo = _calibrate(workload)
    deadline = DEADLINE_FACTOR * solo
    # The Retry-After hint must scale with the workload: one solo
    # latency per cycle.  Much longer burns the deadline budget
    # sleeping; much shorter needs so many cycles per slot wait (~4 L)
    # that clients exhaust their retry budget.
    retry_after = min(max(solo, 0.005), 0.25)
    total = CLIENTS * REQUESTS_PER_CLIENT
    # Shedding OFF first: its stragglers all complete inside the pass
    # (no server-side aborts), so nothing leaks into the ON pass.
    off = _run_pass(
        workload,
        _specs(workload, total, salt=0),
        max_in_flight=0,
        deadline=deadline,
        retry_after=retry_after,
    )
    on = _run_pass(
        workload,
        _specs(workload, total, salt=1),
        max_in_flight=MAX_IN_FLIGHT,
        deadline=deadline,
        retry_after=retry_after,
    )
    row = {
        "backend": BACKEND,
        "rows": ROWS,
        "updates": UPDATES,
        "clients": CLIENTS,
        "requests": total,
        "solo_latency_s": solo,
        "deadline_s": deadline,
        "retry_after_s": retry_after,
        "shedding_off": off,
        "shedding_on": on,
    }
    record("resilience", row)
    return row


def test_goodput_under_overload(benchmark):
    row = benchmark.pedantic(
        _run_resilience_bench, rounds=1, iterations=1
    )
    off, on = row["shedding_off"], row["shedding_on"]

    write_bench_report(
        TARGET,
        "resilience",
        {
            "dataset": "taxi",
            "rows": ROWS,
            "updates": UPDATES,
            "modified_position": MOD_POSITION,
            "clients": CLIENTS,
            "max_in_flight": MAX_IN_FLIGHT,
            "requests": row["requests"],
            "deadline_factor": DEADLINE_FACTOR,
            "backend": BACKEND,
            "metric": "goodput (successes within deadline / wall-clock) "
            "and latency percentiles at 2x saturation, admission "
            "control on vs off",
        },
        overload=[row],
    )

    print_series_table(
        f"Resilience — {CLIENTS} clients vs {MAX_IN_FLIGHT} slots "
        f"(taxi, U{UPDATES}, deadline {row['deadline_s']*1000:.0f} ms)",
        ["shedding", "good/total", "goodput qps", "p50 s", "p99 s",
         "shed"],
        [
            ["off", f"{off['good']}/{off['requests']}",
             off["goodput_qps"], off["p50_s"], off["p99_s"],
             off["shed_total"]],
            ["on", f"{on['good']}/{on['requests']}",
             on["goodput_qps"], on["p50_s"], on["p99_s"],
             on["shed_total"]],
        ],
        note="good = 200 within the deadline budget; floor: on ≥ off",
    )

    assert on["goodput_qps"] >= off["goodput_qps"], (
        "admission control no longer pays for itself under overload: "
        f"shedding-on {on['goodput_qps']:.2f} qps < shedding-off "
        f"{off['goodput_qps']:.2f} qps"
    )
