"""Figure 18: reenactment alone vs reenactment with all optimizations.

Paper shape: R+PS+DS is consistently faster than plain R on every dataset
and the gap widens with history length (R reenacts every statement over
all data; R+PS+DS reenacts the slice over the sliced data).
"""

import pytest

from repro.core import Method

from .common import DATASET_GRID, print_sweep, run_sweep

METHODS = [Method.R, Method.R_PS_DS]


@pytest.mark.parametrize(
    "label,dataset,rows", DATASET_GRID, ids=[d[0] for d in DATASET_GRID]
)
def test_fig18(benchmark, label, dataset, rows):
    def run():
        return run_sweep("fig18", METHODS, dataset=dataset, rows=rows)

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print_sweep(
        f"Figure 18 — R vs R+PS+DS, {label}",
        sweep,
        METHODS,
        note="R+PS+DS below R everywhere, gap grows with U",
    )
    last = sweep[-1]
    assert last[Method.R_PS_DS.value] < last[Method.R.value]
