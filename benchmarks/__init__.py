"""Figure benchmarks as a package so ``pytest benchmarks/bench_*.py`` resolves
the relative ``from .common import ...`` imports from any rootdir."""
