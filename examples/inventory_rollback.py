"""Inventory scenario: time travel + what-if over a mixed history.

A warehouse's stock table took a day of traffic: restocks (inserts),
quantity adjustments (updates) and purges of dead items (deletes), all
recorded in a :class:`repro.VersionedDatabase` — the time-travel substrate
the paper assumes the backing DBMS provides.  The operations team asks two
questions:

* "what if the big afternoon adjustment had applied to a wider quantity
  band?" (replace), and
* "what if we had never purged the slow movers?" (delete a statement).

The example also shows plain time travel: reading any intermediate
version back.

Run:  python examples/inventory_rollback.py
"""

from repro import (
    Database,
    HistoricalWhatIfQuery,
    History,
    Mahif,
    Method,
    Replace,
    VersionedDatabase,
    parse_history,
    parse_statement,
)
from repro.core import DeleteStatementMod
from repro.workloads import tpcc_stock

stock = tpcc_stock(4_000, seed=99)
db = Database({"stock": stock})

history = History(
    tuple(
        parse_history(
            """
            UPDATE stock SET s_quantity = s_quantity + 50
                WHERE s_quantity <= 25;
            INSERT INTO stock VALUES (900001, 1, 80, 0, 0, 0);
            INSERT INTO stock VALUES (900002, 1, 60, 0, 0, 0);
            UPDATE stock SET s_ytd = s_ytd + 10
                WHERE s_quantity >= 60 AND s_quantity <= 70;
            DELETE FROM stock WHERE s_quantity <= 15 AND s_ytd <= 300;
            UPDATE stock SET s_order_cnt = s_order_cnt + 1
                WHERE s_ytd >= 900;
            """
        )
    )
)

# Record the day in a versioned database (time travel).
versioned = VersionedDatabase(db)
versioned.execute_history(history)
print(
    f"versions recorded: {versioned.version_count} "
    f"(initial + one per statement)"
)
print(
    "rows before/after restock inserts:",
    len(versioned.as_of(1)["stock"]),
    "->",
    len(versioned.as_of(3)["stock"]),
)

engine = Mahif()

# Scenario 1: wider quantity band for the afternoon adjustment.
wider = parse_statement(
    "UPDATE stock SET s_ytd = s_ytd + 10 "
    "WHERE s_quantity >= 55 AND s_quantity <= 75;"
)
query1 = HistoricalWhatIfQuery(history, db, (Replace(4, wider),))
result1 = engine.answer(query1, Method.R_PS_DS)
print()
print("scenario 1 — wider adjustment band:")
print(f"  tuples changed: {len(result1.delta)}")

# Scenario 2: never purge the slow movers.
query2 = HistoricalWhatIfQuery(history, db, (DeleteStatementMod(5),))
result2 = engine.answer(query2, Method.R_PS_DS)
delta2 = result2.delta.relations.get("stock")
print("scenario 2 — skip the purge:")
print(f"  tuples changed: {len(result2.delta)}")
if delta2:
    print(f"  items that would still exist: {len(delta2.added)}")

# Both answers agree with the naive algorithm.
assert engine.answer(query1, Method.NAIVE).delta == result1.delta
assert engine.answer(query2, Method.NAIVE).delta == result2.delta
print()
print("cross-checked against the naive algorithm ✓")
