"""Quickstart: the paper's running example (Figures 1-4, Example 2).

An online retailer implemented a shipping-fee policy as three UPDATE
statements.  Analyst Bob asks: "what if the free-shipping threshold had
been $60 instead of $50?"  Mahif answers by reenacting both histories and
returning the delta — without copying the database.

Run:  python examples/quickstart.py
"""

from repro import (
    Database,
    HistoricalWhatIfQuery,
    History,
    Mahif,
    Method,
    Relation,
    Replace,
    Schema,
    parse_history,
    parse_statement,
)

# The Order table as of before the policy ran (Figure 1).
orders = Relation.from_rows(
    Schema.of("ID", "Customer", "Country", "Price", "ShippingFee"),
    [
        (11, "Susan", "UK", 20, 5),
        (12, "Alex", "UK", 50, 5),
        (13, "Jack", "US", 60, 3),
        (14, "Mark", "US", 30, 4),
    ],
)
db = Database({"Orders": orders})

# The shipping-fee policy history H (Figure 2).
history = History(
    tuple(
        parse_history(
            """
            UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
            UPDATE Orders SET ShippingFee = ShippingFee + 5
                WHERE Country = 'UK' AND Price <= 100;
            UPDATE Orders SET ShippingFee = ShippingFee - 2
                WHERE Price <= 30 AND ShippingFee >= 10;
            """
        )
    )
)

# Bob's hypothetical u1': raise the free-shipping threshold to $60.
u1_prime = parse_statement(
    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60;"
)

query = HistoricalWhatIfQuery(history, db, (Replace(1, u1_prime),))

print("Current state H(D) (Figure 3):")
print(history.execute(db)["Orders"].pretty())
print()

engine = Mahif()
result = engine.answer(query, Method.R_PS_DS)

print("Answer Δ(H(D), H[M](D)) (Example 2 — Alex's fee rises $5):")
print(result.delta.pretty())
print()
print(
    f"program slicing kept {len(result.slice_result.kept_positions)} of "
    f"{result.slice_result.total_positions} statements; "
    f"solver calls: {result.slice_result.solver_calls}"
)

# Cross-check against the naive algorithm (Algorithm 1).
naive = engine.answer(query, Method.NAIVE)
assert naive.delta == result.delta, "optimized and naive answers must agree"
print("naive algorithm agrees ✓")
