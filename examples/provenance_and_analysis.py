"""Provenance and history analysis: explaining a what-if answer.

Beyond the delta itself, an analyst usually wants to know *why*: which
original rows caused each change, and how the statements of the history
interact.  This example runs a what-if query over a small sales table and
then:

1. explains every delta tuple with its why-provenance (the base rows it
   derives from),
2. builds the statement dependency graph of the history (the may-interact
   analysis underlying program slicing) and prints which statements are
   provably independent of each other.

Run:  python examples/provenance_and_analysis.py
"""

from repro import (
    Database,
    HistoricalWhatIfQuery,
    History,
    Mahif,
    Method,
    Relation,
    Replace,
    Schema,
    parse_history,
    parse_statement,
)
from repro.core import build_dependency_graph, explain_delta

sales = Relation.from_rows(
    Schema.of("sale_id", "region", "amount", "discount"),
    [
        (1, "east", 120, 0),
        (2, "east", 80, 5),
        (3, "west", 200, 0),
        (4, "west", 40, 10),
        (5, "north", 300, 0),
        (6, "north", 55, 5),
    ],
)
db = Database({"sales": sales})

history = History(
    tuple(
        parse_history(
            """
            UPDATE sales SET discount = 15 WHERE amount >= 150;
            UPDATE sales SET amount = amount - discount WHERE discount >= 10;
            UPDATE sales SET discount = discount + 2 WHERE amount <= 50;
            """
        )
    )
)

# What if the bulk-discount threshold had been 100 instead of 150?
replacement = parse_statement(
    "UPDATE sales SET discount = 15 WHERE amount >= 100;"
)
query = HistoricalWhatIfQuery(history, db, (Replace(1, replacement),))

engine = Mahif()
result = engine.answer(query, Method.R_PS_DS)
print("what-if: bulk-discount threshold 150 -> 100")
print(result.delta.pretty())

print("\nwhy-provenance (delta tuple <- source rows):")
explanation = explain_delta(result, "sales")
for row, witnesses in sorted(explanation.items()):
    sources = ", ".join(
        f"{w.relation}{w.row}" for w in sorted(witnesses, key=lambda s: s.row)
    )
    print(f"  {row} <- {sources or '(query-generated)'}")

print("\nstatement dependency analysis:")
analysis = build_dependency_graph(history, db)
print(f"  {analysis.summary()}")
for i, j in analysis.interacting_pairs():
    print(f"  statement {i} may affect the input of statement {j}")
isolated = analysis.independent_statements()
if isolated:
    print(f"  provably isolated statements: {isolated}")


# Bonus: the symbolic machinery can also *prove histories equivalent*
# (the paper's closing future-work item).  Reordering the two independent
# statements below changes nothing; the prover certifies it for every
# database within the compressed constraints.
from repro.core import check_history_equivalence
from repro import parse_statement as _p

u_low = _p("UPDATE sales SET discount = 1 WHERE amount <= 60;")
u_high = _p("UPDATE sales SET discount = 2 WHERE amount >= 150;")
h_a = History((u_low, u_high))
h_b = History((u_high, u_low))
verdict = check_history_equivalence(h_a, h_b, db)
print("\nhistory equivalence (reordered independent updates):",
      verdict.verdict.value)
assert verdict.is_equivalent

h_c = History((_p("UPDATE sales SET discount = 1 WHERE amount <= 80;"),))
verdict2 = check_history_equivalence(History((u_low,)), h_c, db)
print("history equivalence (different thresholds):", verdict2.verdict.value)

assert engine.answer(query, Method.NAIVE).delta == result.delta
print("\ncross-checked against the naive algorithm ✓")
