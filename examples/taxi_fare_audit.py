"""Taxi-fleet scenario: auditing a historical fare adjustment.

The city's regulator pushed a sequence of fare adjustments to the reported
trips table (the paper's primary evaluation dataset).  An auditor asks how
totals would differ had the first adjustment used a different fare window
— and compares all of Mahif's methods on the same query, printing the
runtime table from the paper's Section 13.3.

Run:  python examples/taxi_fare_audit.py
"""

from repro.bench import format_table, run_methods
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload

spec = WorkloadSpec(
    dataset="taxi",
    rows=5_000,
    updates=40,
    dependent_pct=10.0,
    affected_pct=10.0,
    seed=2022,
)
workload = build_workload(spec)
query = workload.query

print(
    f"taxi trips: {spec.rows} rows, history of {spec.updates} fare "
    f"adjustments over '{workload.value_attribute}' predicated on "
    f"'{workload.predicate_attribute}'"
)
print(
    "what-if: the first adjustment had used a shifted fare window "
    "(one modification)"
)

methods = [Method.NAIVE, Method.R, Method.R_DS, Method.R_PS, Method.R_PS_DS]
timings = run_methods(query, methods)

rows = []
for method in methods:
    t = timings[method]
    slice_info = ""
    if t.result.slice_result:
        s = t.result.slice_result
        slice_info = f"{len(s.kept_positions)}/{s.total_positions}"
    rows.append(
        (
            method.value,
            f"{t.total_seconds:.3f}",
            f"{t.ps_seconds:.3f}",
            f"{t.exe_seconds:.3f}",
            t.delta_size,
            slice_info,
        )
    )

print()
print(
    format_table(
        ["method", "total s", "PS s", "Exe s", "|delta|", "slice"], rows
    )
)
print()
print(
    "expected shape (paper Figs. 14/18): R is the slowest reenactment "
    "variant, data slicing cuts Exe sharply at this selectivity, and "
    "R+PS+DS has the smallest Exe (PS cost is paid once and is "
    "independent of the relation size)."
)
