"""Retail scenario: comparing several hypothetical shipping-fee policies.

A retailer ran a 6-statement pricing-and-shipping campaign over an orders
table.  The analyst explores three what-if scenarios:

1. a *higher free-shipping threshold* (replace a statement),
2. *never running* the UK surcharge at all (delete a statement),
3. an *additional loyalty rebate* that was considered but never shipped
   (insert a statement).

For each scenario the example prints the delta, the revenue impact, and
what the optimizations saved — the workflow the paper's introduction
motivates ("results can be used to inform future actions").

Run:  python examples/shipping_policy_analysis.py
"""

import random

from repro import (
    Database,
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    History,
    InsertStatementMod,
    Mahif,
    Method,
    Relation,
    Replace,
    Schema,
    parse_history,
    parse_statement,
)

random.seed(20220312)

COUNTRIES = ["UK", "US", "DE", "FR"]
SCHEMA = Schema.of("ID", "Country", "Price", "ShippingFee", "Loyal")


def make_orders(n: int = 2000) -> Relation:
    rows = []
    for order_id in range(1, n + 1):
        rows.append(
            (
                order_id,
                random.choice(COUNTRIES),
                random.randint(5, 200),
                random.choice([3, 4, 5, 6]),
                random.random() < 0.3,
            )
        )
    return Relation.from_rows(SCHEMA, rows)


def revenue(db: Database) -> float:
    total = 0.0
    for row in db["Orders"].rows_as_dicts():
        total += row["Price"] + row["ShippingFee"]
    return total


db = Database({"Orders": make_orders()})

history = History(
    tuple(
        parse_history(
            """
            UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
            UPDATE Orders SET ShippingFee = ShippingFee + 5
                WHERE Country = 'UK' AND Price <= 100;
            UPDATE Orders SET Price = Price - 10
                WHERE Price >= 150;
            UPDATE Orders SET ShippingFee = ShippingFee + 2
                WHERE Country = 'DE' AND Price <= 40;
            UPDATE Orders SET ShippingFee = ShippingFee - 2
                WHERE Price <= 30 AND ShippingFee >= 10;
            DELETE FROM Orders WHERE Price <= 6 AND ShippingFee >= 6;
            """
        )
    )
)

engine = Mahif()
current = history.execute(db)
base_revenue = revenue(current)
print(f"orders: {len(db['Orders'])}, current revenue: {base_revenue:,.0f}")

scenarios = {
    "raise free-shipping threshold to $80": (
        Replace(
            1,
            parse_statement(
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 80;"
            ),
        ),
    ),
    "drop the UK surcharge entirely": (DeleteStatementMod(2),),
    "add a loyalty rebate after the campaign": (
        InsertStatementMod(
            7,
            parse_statement(
                "UPDATE Orders SET ShippingFee = 0 "
                "WHERE Loyal = true AND Price >= 30;"
            ),
        ),
    ),
}

for name, modifications in scenarios.items():
    query = HistoricalWhatIfQuery(history, db, modifications)
    result = engine.answer(query, Method.R_PS_DS)

    # Revenue impact: replay the modified history (cheap here; in a real
    # deployment you would aggregate over the delta instead).
    modified_state = query.aligned().modified.execute(db)
    delta_revenue = revenue(modified_state) - base_revenue

    delta = result.delta.relations.get("Orders")
    changed = len(delta) if delta else 0
    kept = (
        f"{len(result.slice_result.kept_positions)}/"
        f"{result.slice_result.total_positions}"
        if result.slice_result
        else "n/a"
    )
    print()
    print(f"scenario: {name}")
    print(f"  delta tuples: {changed}")
    print(f"  revenue impact: {delta_revenue:+,.0f}")
    print(f"  statements reenacted after slicing: {kept}")

    naive = engine.answer(query, Method.NAIVE)
    assert naive.delta == result.delta
print()
print("all scenarios cross-checked against the naive algorithm ✓")
