#!/usr/bin/env python3
"""repro-lint: AST-based linter for this repository's hard invariants.

The codebase carries invariants that ordinary linters cannot know about;
this tool enforces them mechanically (DESIGN.md, "Static analysis"):

``fileops-seam``
    Durability code under ``src/repro/store/`` must route every
    filesystem touch through the :class:`~repro.store.faults.FileOps`
    seam so the crash-injection fuzzer sees it.  Raw ``open``/
    ``os.replace``/``os.fsync``/``os.rename``/``os.open``/
    ``os.truncate`` calls anywhere in ``store/`` outside ``faults.py``
    are findings: each one is a write path the fuzzer cannot kill, i.e.
    an untested crash window.

``unlocked-module-state``
    A module-level mutable container (dict/list/set/...) mutated inside
    a function must do so under a ``with``-statement on a module-level
    ``threading.Lock``/``RLock`` (the ``sql_backend.py`` connection-
    cache pattern).  If the module declares no lock at all, every
    mutation is a finding.

``swallow-baseexception``
    ``except BaseException:`` and bare ``except:`` handlers swallow
    :class:`~repro.store.faults.SimulatedCrash` (deliberately a
    ``BaseException`` so fault injection can't be caught by accident)
    unless the handler re-raises; handlers without a bare ``raise`` are
    findings.

``broad-swallow``
    ``except Exception:`` handlers that neither bind the exception
    (``as exc``) nor re-raise discard errors anonymously (the
    ``except Exception: pass`` family); narrow them to the types the
    code actually expects, bind and record the error, or allowlist the
    intentionally-broad defensive handlers with a pragma.

``no-print``
    Library code under ``src/repro/`` must not call bare ``print()``:
    observability goes through the structured ``repro.obs`` layer
    (metrics, traces, ``log_event``), keeping stdout clean for actual
    deliverables.  User-facing output — the CLI, benchmark report
    tables — is allowlisted with a pragma.

Intentional exceptions are allowlisted in-line::

    except Exception:  # repro-lint: allow[broad-swallow] -- reason why

The pragma may sit on the offending line or the line above it; the rule
id must match, and a reason after ``--`` is mandatory.

Usage::

    python tools/repro_lint.py [--list-rules] [paths...]

Paths default to ``src`` and ``tools``; exit status 1 when findings
remain.  The module is importable (``lint_source``/``lint_path``) for
the unit tests' known-good/known-bad fixtures.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_path",
    "lint_paths",
    "main",
]

RULES: dict[str, str] = {
    "fileops-seam": (
        "raw filesystem call in store/ outside faults.py (bypasses the "
        "FileOps crash-injection seam)"
    ),
    "unlocked-module-state": (
        "module-level mutable container mutated outside a module-level "
        "lock's with-block"
    ),
    "swallow-baseexception": (
        "bare except / except BaseException without re-raise (would "
        "swallow SimulatedCrash)"
    ),
    "broad-swallow": (
        "except Exception without binding or re-raise (anonymous "
        "swallow)"
    ),
    "no-print": (
        "bare print() in library code under src/repro/ (route through "
        "repro.obs.logging.log_event, or allowlist user-facing output)"
    ),
}

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*allow\[(?P<rules>[a-z0-9, -]+)\]\s*--\s*\S"
)

#: os.* functions that touch the filesystem in ways the FileOps seam
#: wraps (or should wrap).
_RAW_OS_CALLS = frozenset(
    {"replace", "fsync", "rename", "open", "truncate", "remove", "unlink"}
)

#: Constructors/literals treated as module-level mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "Counter", "deque"}
)

#: Method calls that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "setdefault",
        "pop", "popitem", "remove", "discard", "clear", "appendleft",
        "move_to_end",
    }
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _pragma_lines(source: str) -> dict[int, frozenset[str]]:
    """Map 1-based line number -> rule ids allowlisted on that line."""
    allowed: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match:
            rules = frozenset(
                part.strip()
                for part in match.group("rules").split(",")
                if part.strip()
            )
            allowed[lineno] = rules
    return allowed


def _allowed(
    pragmas: dict[int, frozenset[str]], line: int, rule: str
) -> bool:
    """A pragma applies to its own line or the line directly below."""
    return rule in pragmas.get(line, frozenset()) or rule in pragmas.get(
        line - 1, frozenset()
    )


# -- rule: fileops-seam ------------------------------------------------------

def _in_store_scope(path: str) -> bool:
    parts = Path(path).parts
    return (
        "store" in parts
        and Path(path).name != "faults.py"
        and "tests" not in parts
    )


def _check_fileops_seam(
    tree: ast.AST, path: str
) -> Iterator[tuple[int, str, str]]:
    if not _in_store_scope(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            yield (
                node.lineno,
                "fileops-seam",
                "raw open() — route through FileOps.open so the fault "
                "fuzzer can inject a crash here",
            )
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr in _RAW_OS_CALLS
        ):
            yield (
                node.lineno,
                "fileops-seam",
                f"raw os.{func.attr}() — route through the FileOps seam",
            )


# -- rule: no-print ----------------------------------------------------------

def _in_library_scope(path: str) -> bool:
    parts = Path(path).parts
    return "repro" in parts and "tests" not in parts


def _check_no_print(
    tree: ast.AST, path: str
) -> Iterator[tuple[int, str, str]]:
    """Library code must not print: observability goes through the
    structured ``repro.obs`` layer (metrics/traces/``log_event``), so
    stdout stays clean for the CLI's actual deliverables.  User-facing
    output (the CLI, benchmark reports) is allowlisted with a pragma.
    """
    if not _in_library_scope(path):
        return
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield (
                node.lineno,
                "no-print",
                "bare print() in library code — emit a structured "
                "log_event / metric instead, or allowlist user-facing "
                "output with a pragma",
            )


# -- rules: exception swallowing --------------------------------------------

def _has_bare_raise(handler: ast.ExceptHandler) -> bool:
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )


def _exception_names(type_node: ast.expr | None) -> list[str]:
    """Dotted/plain names caught by a handler's type expression."""
    if type_node is None:
        return []
    nodes: Iterable[ast.expr]
    if isinstance(type_node, ast.Tuple):
        nodes = type_node.elts
    else:
        nodes = [type_node]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _check_swallows(
    tree: ast.AST, path: str
) -> Iterator[tuple[int, str, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _exception_names(node.type)
        if node.type is None or "BaseException" in names:
            if not _has_bare_raise(node):
                what = (
                    "bare except:" if node.type is None
                    else "except BaseException:"
                )
                yield (
                    node.lineno,
                    "swallow-baseexception",
                    f"{what} without re-raise swallows SimulatedCrash "
                    "(and KeyboardInterrupt); catch Exception or "
                    "re-raise",
                )
            continue
        if "Exception" in names and not _has_bare_raise(node):
            if node.name is None:
                yield (
                    node.lineno,
                    "broad-swallow",
                    "except Exception without binding or re-raise "
                    "discards the error anonymously; narrow the type, "
                    "bind and record it, or allowlist with a pragma",
                )


# -- rule: unlocked-module-state ---------------------------------------------

def _module_level_names(
    tree: ast.Module,
) -> tuple[frozenset[str], frozenset[str]]:
    """(mutable container names, lock names) assigned at module level."""
    mutables: set[str] = set()
    locks: set[str] = set()
    for stmt in tree.body:
        targets: list[ast.expr]
        value: ast.expr | None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            mutables.update(names)
        elif isinstance(value, ast.Call):
            func = value.func
            callee = None
            if isinstance(func, ast.Name):
                callee = func.id
            elif isinstance(func, ast.Attribute):
                callee = func.attr
            if callee in _MUTABLE_FACTORIES:
                mutables.update(names)
            elif callee in ("Lock", "RLock"):
                locks.update(names)
    return frozenset(mutables), frozenset(locks)


def _check_unlocked_state(
    tree: ast.Module, path: str
) -> Iterator[tuple[int, str, str]]:
    mutables, locks = _module_level_names(tree)
    if not mutables:
        return

    findings: list[tuple[int, str, str]] = []

    def lock_guard(node: ast.With) -> bool:
        return any(
            isinstance(item.context_expr, ast.Name)
            and item.context_expr.id in locks
            for item in node.items
        )

    def visit(node: ast.AST, in_function: bool, under_lock: bool) -> None:
        if isinstance(node, ast.With) and lock_guard(node):
            under_lock = True
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            in_function = True
        if in_function and not under_lock:
            mutated = _mutated_name(node)
            if mutated in mutables:
                findings.append(
                    (
                        node.lineno,
                        "unlocked-module-state",
                        f"module-level {mutated!r} mutated without "
                        + (
                            f"holding one of the declared locks "
                            f"{sorted(locks)}"
                            if locks
                            else "any module-level lock declared"
                        ),
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, in_function, under_lock)

    visit(tree, False, False)
    yield from findings


def _mutated_name(node: ast.AST) -> str | None:
    """Name of the module-level container this node mutates, if any."""
    # cache.clear() / cache.append(...) / cache.setdefault(...)
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in _MUTATING_METHODS
        ):
            return func.value.id
    # cache[k] = v / cache[k] += v
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return target.value.id
    # del cache[k]
    if isinstance(node, ast.Delete):
        for target in node.targets:
            if isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                return target.value.id
    return None


# -- driver ------------------------------------------------------------------

def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source; ``path`` scopes path-dependent rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path,
                exc.lineno or 0,
                "syntax-error",
                f"cannot parse: {exc.msg}",
            )
        ]
    pragmas = _pragma_lines(source)
    raw: list[tuple[int, str, str]] = []
    raw.extend(_check_fileops_seam(tree, path))
    raw.extend(_check_no_print(tree, path))
    raw.extend(_check_swallows(tree, path))
    raw.extend(_check_unlocked_state(tree, path))
    findings = [
        Finding(path, line, rule, message)
        for line, rule, message in raw
        if not _allowed(pragmas, line, rule)
    ]
    findings.sort(key=lambda f: (f.line, f.rule))
    return findings


def lint_path(path: Path) -> list[Finding]:
    return lint_source(
        path.read_text(encoding="utf-8"), str(path)
    )


def lint_paths(paths: Iterable[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for root in paths:
        if root.is_file():
            files: Iterable[Path] = [root]
        else:
            files = sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(lint_path(file))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule, description in sorted(RULES.items()):
            print(f"{rule:24s} {description}")
        return 0
    findings = lint_paths(Path(p) for p in args.paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)")
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
