"""Tests for the benchmark harness utilities."""

import pytest

from repro.bench import (
    RESULTS,
    format_table,
    print_series_table,
    record_result,
    run_method,
    run_methods,
)
from repro.core import Method
from repro.workloads import WorkloadSpec, build_workload


@pytest.fixture
def small_query():
    return build_workload(
        WorkloadSpec(dataset="taxi", rows=300, updates=5, seed=17)
    ).query


class TestRunners:
    def test_run_method_populates_timing(self, small_query):
        timing = run_method(small_query, Method.R)
        assert timing.method is Method.R
        assert timing.total_seconds > 0
        assert timing.label == "R"
        assert timing.delta_size == len(timing.result.delta)

    def test_run_methods_cross_checks_deltas(self, small_query):
        timings = run_methods(small_query, [Method.NAIVE, Method.R_PS_DS])
        assert set(timings) == {Method.NAIVE, Method.R_PS_DS}

    def test_run_methods_raises_on_divergence(self, small_query, monkeypatch):
        """A method returning a different delta must be flagged."""
        from repro.bench import harness
        from repro.core import DatabaseDelta

        real = harness.run_method

        def broken(query, method, config=None):
            timing = real(query, method, config)
            if method is Method.R:
                object.__setattr__(
                    timing.result, "delta", DatabaseDelta({})
                )
            return timing

        monkeypatch.setattr(harness, "run_method", broken)
        with pytest.raises(AssertionError):
            harness.run_methods(small_query, [Method.NAIVE, Method.R])


class TestFormatting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_print_series_table(self):
        import io

        buffer = io.StringIO()
        print_series_table("T", ["a"], [[1]], note="shape", file=buffer)
        out = buffer.getvalue()
        assert "### T" in out and "paper shape: shape" in out

    def test_record_result(self):
        before = len(RESULTS)
        record_result("exp", {"x": 1})
        assert len(RESULTS) == before + 1
        assert RESULTS[-1] == ("exp", {"x": 1})
