"""Expansion-semantics tests: equivalence with Definition 6 and the 2^n
blow-up the paper avoids."""

import pytest

from repro import Database, History, Relation, Schema
from repro.relational.expressions import col, evaluate, ge, le, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)
from repro.symbolic.expansion import (
    apply_statement_expansion,
    execute_history_expansion,
)
from repro.symbolic.symexec import VariableNamer, apply_statement
from repro.symbolic.vctable import VCDatabase

SCHEMA = Schema.of("P", "F")


def fresh_db():
    return VCDatabase.single_tuple_database({"R": SCHEMA}, prefix="x")


def instantiate_definition6(db, assignment):
    """Extend an input assignment over the defining equalities, then
    instantiate."""
    extended = dict(assignment)
    for conjunct in db.global_conjuncts:
        extended[conjunct.left.name] = evaluate(conjunct.right, extended)
    return db.instantiate(extended)


ASSIGNMENTS = [
    {"x_R_P": p, "x_R_F": f} for p in (10, 50, 80) for f in (0, 5, 9)
]

HISTORIES = [
    History.of(UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))),
    History.of(
        UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
        UpdateStatement("R", {"F": col("F") + 5}, le(col("P"), 60)),
    ),
    History.of(
        UpdateStatement("R", {"F": col("F") + 1}, ge(col("F"), 5)),
        DeleteStatement("R", ge(col("F"), 10)),
        UpdateStatement("R", {"P": col("P") * 2}, le(col("P"), 20)),
    ),
    History.of(
        InsertTuple("R", (99, 9)),
        UpdateStatement("R", {"F": lit(1)}, ge(col("P"), 90)),
    ),
]


class TestEquivalenceWithDefinition6:
    @pytest.mark.parametrize("history", HISTORIES, ids=["u1", "u2", "udu", "iu"])
    def test_same_possible_worlds(self, history):
        expansion = execute_history_expansion(fresh_db(), history)
        has_inserts = any(
            isinstance(s, InsertTuple) for s in history
        )
        for assignment in ASSIGNMENTS:
            world_expansion = expansion.instantiate(assignment)
            if has_inserts:
                # Definition 6 path rejects inserts (split handles them);
                # compare expansion against direct execution instead.
                base = fresh_db().instantiate(assignment)
                direct = history.execute(base)
                assert world_expansion.same_contents(direct)
            else:
                db6 = fresh_db()
                namer = VariableNamer("t")
                for stmt in history:
                    db6 = apply_statement(db6, stmt, namer)
                world_def6 = instantiate_definition6(db6, assignment)
                assert world_expansion.same_contents(world_def6)

    @pytest.mark.parametrize("history", HISTORIES[:3], ids=["u1", "u2", "udu"])
    def test_matches_direct_execution(self, history):
        expansion = execute_history_expansion(fresh_db(), history)
        for assignment in ASSIGNMENTS:
            base = fresh_db().instantiate(assignment)
            direct = history.execute(base)
            assert expansion.instantiate(assignment).same_contents(direct)


class TestBlowUp:
    def test_expansion_grows_exponentially(self):
        """n updates -> up to 2^n symbolic tuples (the paper's complexity
        argument), while Definition 6 stays at one tuple."""
        db_exp = fresh_db()
        db_def6 = fresh_db()
        namer = VariableNamer("t")
        for i in range(6):
            stmt = UpdateStatement(
                "R", {"F": col("F") + 1}, ge(col("P"), i * 10)
            )
            db_exp = apply_statement_expansion(db_exp, stmt)
            db_def6 = apply_statement(db_def6, stmt, namer)
        assert len(db_exp["R"]) > 6           # super-linear growth
        assert len(db_def6["R"]) == 1          # Definition 6: constant
        assert len(db_def6.global_conjuncts) == 6  # linear conjuncts

    def test_no_global_condition_in_expansion(self):
        db = fresh_db()
        stmt = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        result = apply_statement_expansion(db, stmt)
        assert result.global_conjuncts == ()
