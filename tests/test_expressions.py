"""Unit tests for the expression language (Figure 7)."""

import pytest

from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    EvaluationError,
    FALSE,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
    Var,
    and_,
    attributes_of,
    conjuncts_of,
    disjuncts_of,
    eq,
    evaluate,
    expr_size,
    ge,
    gt,
    if_,
    le,
    lit,
    lt,
    neq,
    not_,
    or_,
    rename_attributes,
    simplify,
    substitute,
    substitute_attributes,
    to_string,
    variables_of,
    is_condition,
    col,
)


class TestConstruction:
    def test_const_rejects_nested_expression(self):
        with pytest.raises(TypeError):
            Const(Attr("x"))

    def test_arith_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Arith("%", lit(1), lit(2))

    def test_cmp_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Cmp("~", lit(1), lit(2))

    def test_logic_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            Logic("xor", TRUE, FALSE)

    def test_operator_overloads_build_nodes(self):
        expr = col("a") + 1
        assert expr == Arith("+", Attr("a"), Const(1))
        assert (col("a") * 2).op == "*"
        assert (3 - col("a")).left == Const(3)

    def test_nary_helpers(self):
        assert and_() == TRUE
        assert or_() == FALSE
        assert and_(TRUE) == TRUE
        three = and_(eq(col("a"), 1), eq(col("b"), 2), eq(col("c"), 3))
        assert len(conjuncts_of(three)) == 3


class TestEvaluation:
    def test_constant(self):
        assert evaluate(lit(5)) == 5

    def test_attribute_lookup(self):
        assert evaluate(col("a"), {"a": 7}) == 7

    def test_unbound_reference_raises(self):
        with pytest.raises(EvaluationError):
            evaluate(col("missing"), {})

    def test_var_lookup(self):
        assert evaluate(Var("x"), {"x": 3}) == 3

    @pytest.mark.parametrize(
        "op,expected", [("+", 9), ("-", 5), ("*", 14), ("/", 3.5)]
    )
    def test_arithmetic(self, op, expected):
        assert evaluate(Arith(op, lit(7), lit(2))) == expected

    def test_division_by_zero_is_null(self):
        assert evaluate(Arith("/", lit(1), lit(0))) is None

    def test_null_propagates_through_arithmetic(self):
        assert evaluate(Arith("+", lit(None), lit(2))) is None

    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", True), ("<=", True),
         (">", False), (">=", False)],
    )
    def test_comparisons(self, op, expected):
        assert evaluate(Cmp(op, lit(1), lit(2))) is expected

    def test_null_comparison_is_false(self):
        assert evaluate(eq(lit(None), lit(None))) is False
        assert evaluate(lt(lit(None), lit(5))) is False

    def test_incomparable_types_raise(self):
        with pytest.raises(EvaluationError):
            evaluate(lt(lit("a"), lit(1)))

    def test_logic_and_or_not(self):
        assert evaluate(and_(TRUE, TRUE)) is True
        assert evaluate(and_(TRUE, FALSE)) is False
        assert evaluate(or_(FALSE, TRUE)) is True
        assert evaluate(not_(FALSE)) is True

    def test_isnull(self):
        assert evaluate(IsNull(lit(None))) is True
        assert evaluate(IsNull(lit(0))) is False

    def test_conditional(self):
        expr = if_(gt(col("a"), 0), lit("pos"), lit("neg"))
        assert evaluate(expr, {"a": 5}) == "pos"
        assert evaluate(expr, {"a": -5}) == "neg"

    def test_string_equality(self):
        assert evaluate(eq(col("c"), "UK"), {"c": "UK"}) is True
        assert evaluate(eq(col("c"), "UK"), {"c": "US"}) is False


class TestStructure:
    def test_attributes_of(self):
        expr = and_(eq(col("a"), col("b")), gt(col("a") + Var("v"), 1))
        assert attributes_of(expr) == {"a", "b"}
        assert variables_of(expr) == {"v"}

    def test_expr_size(self):
        assert expr_size(lit(1)) == 1
        assert expr_size(eq(col("a"), 1)) == 3

    def test_substitute_structural(self):
        expr = eq(col("a") + 1, col("b"))
        result = substitute(expr, {Attr("a"): Const(10)})
        assert evaluate(result, {"b": 11}) is True

    def test_substitute_is_simultaneous(self):
        # a -> b and b -> a must swap, not chain
        expr = Arith("+", col("a"), col("b"))
        result = substitute(expr, {Attr("a"): Attr("b"), Attr("b"): Attr("a")})
        assert result == Arith("+", Attr("b"), Attr("a"))

    def test_substitute_attributes(self):
        expr = ge(col("Fee"), 10)
        replaced = substitute_attributes(
            expr, {"Fee": if_(ge(col("P"), 50), lit(0), col("Fee"))}
        )
        assert evaluate(replaced, {"P": 60, "Fee": 99}) is False
        assert evaluate(replaced, {"P": 10, "Fee": 12}) is True

    def test_rename_attributes(self):
        expr = eq(col("a"), col("b"))
        renamed = rename_attributes(expr, {"a": "x"})
        assert attributes_of(renamed) == {"x", "b"}

    def test_conjuncts_and_disjuncts(self):
        e = or_(eq(col("a"), 1), eq(col("a"), 2))
        assert len(disjuncts_of(e)) == 2
        assert disjuncts_of(lit(True)) == [TRUE]

    def test_is_condition(self):
        assert is_condition(eq(col("a"), 1))
        assert is_condition(TRUE)
        assert not is_condition(lit(5))
        assert not is_condition(col("a") + 1)


class TestSimplify:
    def test_constant_folding(self):
        assert simplify(Arith("+", lit(2), lit(3))) == Const(5)
        assert simplify(eq(lit(2), lit(2))) == TRUE

    def test_boolean_absorption(self):
        phi = gt(col("a"), 1)
        assert simplify(and_(phi, TRUE)) == phi
        assert simplify(and_(phi, FALSE)) == FALSE
        assert simplify(or_(phi, FALSE)) == phi
        assert simplify(or_(phi, TRUE)) == TRUE

    def test_idempotence(self):
        phi = gt(col("a"), 1)
        assert simplify(and_(phi, phi)) == phi
        assert simplify(or_(phi, phi)) == phi

    def test_double_negation(self):
        phi = gt(col("a"), 1)
        assert simplify(not_(not_(phi))) == phi

    def test_negated_comparison_is_not_flipped(self):
        # NOT (a < 1) and (a >= 1) differ on NULL under the two-valued
        # logic (True vs False), so the simplifier must keep the Not
        # node (fuzzer regression).
        assert simplify(not_(lt(col("a"), 1))) == not_(lt(col("a"), 1))
        assert evaluate(not_(lt(col("a"), 1)), {"a": None}) is True
        assert evaluate(ge(col("a"), 1), {"a": None}) is False

    def test_conditional_folding(self):
        assert simplify(if_(TRUE, col("a"), col("b"))) == col("a")
        assert simplify(if_(FALSE, col("a"), col("b"))) == col("b")
        assert simplify(if_(gt(col("x"), 0), col("a"), col("a"))) == col("a")

    def test_arithmetic_identities(self):
        assert simplify(col("a") + 0) == col("a")
        assert simplify(col("a") * 1) == col("a")
        # x * 0 must NOT fold to 0: NULL * 0 is NULL (fuzzer regression).
        assert simplify(col("a") * 0) == col("a") * 0
        assert evaluate(simplify(col("a") * 0), {"a": None}) is None

    def test_reflexive_comparison(self):
        # x = x must NOT fold to TRUE: it is false for a NULL operand
        # under the two-valued logic (fuzzer regression; a reenacted
        # DELETE WHERE c = c must keep NULL rows, like NAIVE does).
        assert simplify(eq(col("a"), col("a"))) == eq(col("a"), col("a"))
        assert evaluate(eq(col("a"), col("a")), {"a": None}) is False
        # x != x / x < x stay foldable: false for NULL operands too.
        assert simplify(neq(col("a"), col("a"))) == FALSE
        assert simplify(lt(col("a"), col("a"))) == FALSE

    def test_simplify_preserves_semantics(self):
        expr = and_(
            or_(gt(col("a"), 1), FALSE),
            not_(not_(le(col("b"), col("a") + 0))),
        )
        simplified = simplify(expr)
        for a in (0, 1, 2):
            for b in (0, 2, 5):
                binding = {"a": a, "b": b}
                assert evaluate(expr, binding) == evaluate(
                    simplified, binding
                )


class TestRendering:
    def test_string_literal_escaping(self):
        assert to_string(lit("O'Hare")) == "'O''Hare'"

    def test_null_and_booleans(self):
        assert to_string(lit(None)) == "NULL"
        assert to_string(TRUE) == "true"

    def test_case_rendering(self):
        rendered = to_string(if_(ge(col("P"), 50), lit(0), col("F")))
        assert rendered.startswith("CASE WHEN")
        assert "ELSE" in rendered and rendered.endswith("END")

    def test_neq_renders_as_sql_diamond(self):
        assert "<>" in to_string(neq(col("a"), 1))
