"""Pool watchdog: a killed process-pool worker must not change answers.

A SIGKILLed worker (the OOM killer's signature move) poisons the whole
``ProcessPoolExecutor``.  :class:`repro.core.batch.ResilientExecutor`
claims the batch then transparently rebuilds the pool once — and if the
rebuilt pool breaks too, finishes serially — returning exactly the
deltas the serial oracle produces.  The regression test here earns that
claim the hard way: a worker shoots itself mid-batch with SIGKILL.
"""

from __future__ import annotations

import os
import signal
import sys
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor

import pytest

from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.core import batch as batch_module
from repro.core.batch import ResilientExecutor
from repro.core.degradation import (
    degradation_snapshot,
    record_degradation,
    reset_degradation,
)
from repro.relational import Database, History, Relation, Schema
from repro.relational.expressions import Attr, Const, col, ge
from repro.relational.statements import UpdateStatement


@pytest.fixture(autouse=True)
def _clean_degradation():
    reset_degradation()
    yield
    reset_degradation()


# -- ResilientExecutor unit tests -----------------------------------------


class _BrokenPool:
    """An executor that is already poisoned: every submit raises."""

    def __init__(self) -> None:
        self.shutdowns = 0

    def submit(self, fn, *args):
        raise BrokenExecutor("injected poisoned pool")

    def shutdown(self, wait=True, *, cancel_futures=False):
        self.shutdowns += 1


def _sequenced_factory(pools):
    """A factory handing out ``pools`` in order (error when exhausted)."""
    remaining = list(pools)
    return lambda: remaining.pop(0)


def _square(x):
    return x * x


def test_healthy_pool_runs_without_degradation():
    executor = ResilientExecutor(
        _sequenced_factory([ThreadPoolExecutor(max_workers=2)]), "thread"
    )
    try:
        assert executor.run(_square, [(1,), (2,), (3,)]) == [1, 4, 9]
    finally:
        executor.shutdown()
    assert degradation_snapshot() == {}


def test_broken_pool_rebuilds_once_then_succeeds():
    broken = _BrokenPool()
    executor = ResilientExecutor(
        _sequenced_factory([broken, ThreadPoolExecutor(max_workers=2)]),
        "thread",
    )
    try:
        assert executor.run(_square, [(2,), (4,)]) == [4, 16]
    finally:
        executor.shutdown()
    assert broken.shutdowns == 1  # the poisoned pool was reaped
    assert degradation_snapshot() == {"pool_rebuild": 1}


def test_twice_broken_pool_degrades_to_serial():
    executor = ResilientExecutor(
        _sequenced_factory([_BrokenPool(), _BrokenPool()]), "thread"
    )
    try:
        # Both pools break; the answer still arrives, computed serially.
        assert executor.run(_square, [(3,), (5,)]) == [9, 25]
        snapshot = degradation_snapshot()
        assert snapshot == {"pool_rebuild": 1, "pool_serial": 1}
        # Permanently serial now: no further factory calls, same answers.
        assert executor.run(_square, [(6,)]) == [36]
        assert degradation_snapshot() == snapshot
    finally:
        executor.shutdown()


def _maybe_fail(x):
    if x < 0:
        raise ValueError(f"negative input {x}")
    return x * 2


def test_run_settled_captures_per_call_failures():
    executor = ResilientExecutor(
        _sequenced_factory([ThreadPoolExecutor(max_workers=2)]), "thread"
    )
    try:
        outcomes = executor.run_settled(_maybe_fail, [(2,), (-1,), (3,)])
    finally:
        executor.shutdown()
    assert outcomes[0] == (True, 4)
    ok, exc = outcomes[1]
    assert not ok and isinstance(exc, ValueError)
    assert outcomes[2] == (True, 6)


def test_run_settled_survives_broken_pool():
    executor = ResilientExecutor(
        _sequenced_factory([_BrokenPool(), _BrokenPool()]), "thread"
    )
    try:
        outcomes = executor.run_settled(_maybe_fail, [(1,), (-2,)])
    finally:
        executor.shutdown()
    assert outcomes[0] == (True, 2)
    assert not outcomes[1][0]
    assert degradation_snapshot() == {
        "pool_rebuild": 1, "pool_serial": 1
    }


def test_shutdown_executor_falls_back_to_serial():
    executor = ResilientExecutor(
        _sequenced_factory([ThreadPoolExecutor(max_workers=1)]), "thread"
    )
    executor.shutdown()
    # The engine holds executors in caches; a post-shutdown straggler
    # call must still answer rather than crash on a missing pool.
    assert executor.run(_square, [(7,)]) == [49]


def test_degradation_counters_accumulate_and_reset():
    record_degradation("pool_rebuild")
    record_degradation("shard_fallback", 2)
    assert degradation_snapshot() == {
        "pool_rebuild": 1, "shard_fallback": 2
    }
    reset_degradation()
    assert degradation_snapshot() == {}


# -- the SIGKILL regression -----------------------------------------------

_KILL_FLAG: str | None = None  # set per-test; forked workers inherit it
_REAL_TASK = batch_module._query_deltas_task


def _suicidal_query_deltas_task(backend, start_db, items):
    """Kill exactly one worker process, then behave normally.

    The O_EXCL flag file makes the suicide happen once across all
    workers (including the rebuilt pool's); ``fork`` pickles this
    function by reference, so the monkeypatched module global reaches
    the workers intact.
    """
    try:
        fd = os.open(_KILL_FLAG, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        pass
    else:
        os.close(fd)
        os.kill(os.getpid(), signal.SIGKILL)
    return _REAL_TASK(backend, start_db, items)


def _batch_fixture():
    database = Database(
        {
            "Orders": Relation.from_rows(
                Schema.of("ID", "Price", "Fee"),
                [(i, 10 * i, i % 4) for i in range(1, 13)],
            )
        }
    )
    history = History.of(
        UpdateStatement("Orders", {"Fee": Const(0)}, ge(col("Price"), 50)),
        UpdateStatement(
            "Orders", {"Fee": Attr("Fee") + 1}, ge(col("Price"), 30)
        ),
        UpdateStatement(
            "Orders", {"Price": Attr("Price") + 2}, ge(col("Fee"), 1)
        ),
    )
    queries = [
        HistoricalWhatIfQuery(
            history,
            database,
            (
                Replace(
                    1,
                    UpdateStatement(
                        "Orders", {"Fee": Const(0)},
                        ge(col("Price"), threshold),
                    ),
                ),
            ),
        )
        for threshold in (20, 40, 60, 80)
    ]
    return queries


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork + SIGKILL semantics"
)
def test_killed_worker_mid_batch_still_matches_serial_oracle(
    tmp_path, monkeypatch
):
    """One process-pool worker is SIGKILLed while computing deltas; the
    batch must come back identical to the no-pool serial answers, with
    the rebuild recorded as a degradation event."""
    queries = _batch_fixture()
    oracle_engine = Mahif(MahifConfig(backend="compiled"))
    oracle = [
        oracle_engine.answer(q, Method.R_PS_DS).delta for q in queries
    ]

    monkeypatch.setattr(
        batch_module, "_query_deltas_task", _suicidal_query_deltas_task
    )
    monkeypatch.setattr(
        sys.modules[__name__], "_KILL_FLAG", str(tmp_path / "killed-once")
    )

    engine = Mahif(MahifConfig(backend="compiled", batch_workers=2))
    results = engine.answer_batch(queries, Method.R_PS_DS)
    assert [r.delta for r in results] == oracle
    assert os.path.exists(tmp_path / "killed-once"), (
        "the suicide task never ran in a worker — the regression "
        "exercised nothing"
    )
    assert degradation_snapshot().get("pool_rebuild", 0) >= 1
