"""Unit tests for histories and the time-travel substrate."""

import pytest

from repro import Database, History, Relation, Schema, VersionedDatabase
from repro.relational.expressions import TRUE, col, ge, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)
from repro.relational.versioning import VersionError


def make_db():
    return Database(
        {"R": Relation.from_rows(Schema.of("k", "v"), [(1, 10), (2, 20)])}
    )


def make_history():
    return History.of(
        UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 20)),
        InsertTuple("R", (3, 30)),
        DeleteStatement("R", ge(col("v"), 30)),
    )


class TestHistory:
    def test_execute(self):
        result = make_history().execute(make_db())
        assert set(result["R"]) == {(1, 10), (2, 21)}

    def test_execute_with_snapshots(self):
        snapshots = list(make_history().execute_with_snapshots(make_db()))
        assert len(snapshots) == 4
        assert set(snapshots[0]["R"]) == {(1, 10), (2, 20)}
        assert (3, 30) in snapshots[2]["R"]

    def test_execute_with_snapshots_is_lazy(self):
        """The snapshot chain is a generator: nothing runs until pulled,
        and pulling one element materializes only that prefix."""
        import types

        chain = make_history().execute_with_snapshots(make_db())
        assert isinstance(chain, types.GeneratorType)
        first = next(chain)
        assert set(first["R"]) == {(1, 10), (2, 20)}

    def test_execute_with_snapshots_empty_history(self):
        snapshots = list(History.of().execute_with_snapshots(make_db()))
        assert len(snapshots) == 1
        assert snapshots[0].same_contents(make_db())

    def test_one_based_indexing(self):
        history = make_history()
        assert isinstance(history[1], UpdateStatement)
        assert isinstance(history[3], DeleteStatement)
        with pytest.raises(IndexError):
            history[0]
        with pytest.raises(IndexError):
            history[4]

    def test_prefix(self):
        history = make_history()
        assert len(history.prefix(0)) == 0
        assert len(history.prefix(2)) == 2
        with pytest.raises(IndexError):
            history.prefix(9)

    def test_slice_range(self):
        history = make_history()
        assert len(history.slice_range(2, 3)) == 2
        with pytest.raises(IndexError):
            history.slice_range(3, 2)

    def test_subset_sorts_indices(self):
        history = make_history()
        subset = history.subset([3, 1])
        assert isinstance(subset[1], UpdateStatement)
        assert isinstance(subset[2], DeleteStatement)

    def test_subset_out_of_range(self):
        with pytest.raises(IndexError):
            make_history().subset([5])

    def test_replace_insert_delete(self):
        history = make_history()
        replaced = history.replace(1, no := DeleteStatement("R", TRUE))
        assert replaced[1] == no
        inserted = history.insert_at(2, no)
        assert len(inserted) == 4 and inserted[2] == no
        deleted = history.delete_at(2)
        assert len(deleted) == 2

    def test_accessed_and_target_relations(self):
        history = make_history()
        assert history.accessed_relations() == {"R"}
        assert history.target_relations() == {"R"}

    def test_restrict_to_relation(self):
        pairs = make_history().restrict_to_relation("R")
        assert [p for p, _ in pairs] == [1, 2, 3]
        assert make_history().restrict_to_relation("S") == []

    def test_tuple_independence_flag(self):
        assert make_history().is_tuple_independent()

    def test_positions(self):
        assert list(make_history().positions()) == [1, 2, 3]


class TestHistoryEditingEdgeCases:
    """Out-of-range and empty-history behavior of the editing API."""

    def test_insert_at_bounds(self):
        history = make_history()
        stmt = InsertTuple("R", (9, 90))
        # position len+1 appends; 0 and len+2 are out of range
        appended = history.insert_at(4, stmt)
        assert appended[4] == stmt
        with pytest.raises(IndexError):
            history.insert_at(0, stmt)
        with pytest.raises(IndexError):
            history.insert_at(5, stmt)

    def test_insert_at_into_empty_history(self):
        stmt = InsertTuple("R", (9, 90))
        history = History.of().insert_at(1, stmt)
        assert len(history) == 1 and history[1] == stmt
        with pytest.raises(IndexError):
            History.of().insert_at(2, stmt)

    def test_delete_at_bounds(self):
        history = make_history()
        with pytest.raises(IndexError):
            history.delete_at(0)
        with pytest.raises(IndexError):
            history.delete_at(4)
        with pytest.raises(IndexError):
            History.of().delete_at(1)

    def test_delete_at_until_empty(self):
        history = make_history().delete_at(1).delete_at(1).delete_at(1)
        assert len(history) == 0
        assert list(history.positions()) == []

    def test_slice_range_bounds(self):
        history = make_history()
        assert len(history.slice_range(1, 3)) == 3
        assert len(history.slice_range(2, 2)) == 1
        for bad in ((0, 2), (1, 4), (3, 2), (-1, 1)):
            with pytest.raises(IndexError):
                history.slice_range(*bad)
        with pytest.raises(IndexError):
            History.of().slice_range(1, 1)

    def test_subset_bounds_and_empty(self):
        history = make_history()
        assert len(history.subset([])) == 0
        assert len(history.subset([2, 2, 2])) == 1  # duplicates collapse
        with pytest.raises(IndexError):
            history.subset([0])
        with pytest.raises(IndexError):
            history.subset([-1])
        with pytest.raises(IndexError):
            History.of().subset([1])

    def test_prefix_zero_and_empty(self):
        history = make_history()
        empty = history.prefix(0)
        assert len(empty) == 0
        assert empty.execute(make_db()).same_contents(make_db())
        assert len(History.of().prefix(0)) == 0
        with pytest.raises(IndexError):
            history.prefix(-1)
        with pytest.raises(IndexError):
            History.of().prefix(1)

    def test_replace_out_of_range(self):
        stmt = InsertTuple("R", (9, 90))
        with pytest.raises(IndexError):
            make_history().replace(4, stmt)
        with pytest.raises(IndexError):
            History.of().replace(1, stmt)


class TestVersionedDatabase:
    def test_records_every_version(self):
        versioned = VersionedDatabase(make_db())
        versioned.execute_history(make_history())
        assert versioned.version_count == 4

    def test_time_travel_matches_snapshots(self):
        db = make_db()
        history = make_history()
        snapshots = list(history.execute_with_snapshots(db))
        versioned = VersionedDatabase.from_history(db, history)
        for i, snapshot in enumerate(snapshots):
            assert versioned.as_of(i).same_contents(snapshot)

    def test_checkpoint_interval_bounds_replay(self):
        """Only every K-th version is materialized and as_of replays at
        most K-1 statements from the nearest checkpoint below."""
        db = make_db()
        history = History.of(
            *[
                UpdateStatement("R", {"v": col("v") + 1}, TRUE)
                for _ in range(10)
            ]
        )
        versioned = VersionedDatabase.from_history(
            db, history, checkpoint_interval=4
        )
        assert versioned.checkpoint_versions() == (0, 4, 8)
        eager = list(history.execute_with_snapshots(db))
        for version in range(11):
            assert versioned.replay_cost(version) < 4
            assert versioned.as_of(version).same_contents(eager[version])
        assert versioned.replay_cost(10) == 0  # current state, no replay

    def test_checkpoint_interval_validation(self):
        with pytest.raises(VersionError):
            VersionedDatabase(make_db(), checkpoint_interval=0)

    def test_versions_is_lazy(self):
        import types

        versioned = VersionedDatabase.from_history(make_db(), make_history())
        chain = versioned.versions()
        assert isinstance(chain, types.GeneratorType)
        version, state = next(chain)
        assert version == 0 and state.same_contents(make_db())

    def test_initial_and_current(self):
        versioned = VersionedDatabase.from_history(make_db(), make_history())
        assert versioned.initial().same_contents(make_db())
        assert versioned.current.same_contents(
            make_history().execute(make_db())
        )

    def test_version_out_of_range(self):
        versioned = VersionedDatabase(make_db())
        with pytest.raises(VersionError):
            versioned.as_of(1)
        with pytest.raises(VersionError):
            versioned.as_of(-1)

    def test_history_roundtrip(self):
        history = make_history()
        versioned = VersionedDatabase.from_history(make_db(), history)
        assert versioned.history() == history

    def test_history_since(self):
        history = make_history()
        versioned = VersionedDatabase.from_history(make_db(), history)
        suffix = versioned.history_since(1)
        assert len(suffix) == 2
        # replaying the suffix from version 1 reproduces the final state
        assert suffix.execute(versioned.as_of(1)).same_contents(
            versioned.current
        )

    def test_versions_iterator(self):
        versioned = VersionedDatabase.from_history(make_db(), make_history())
        versions = list(versioned.versions())
        assert [v for v, _ in versions] == [0, 1, 2, 3]

    def test_snapshot_sharing_is_cheap(self):
        """Untouched relations share storage between versions."""
        db = make_db().with_relation(
            "BIG",
            Relation.from_rows(Schema.of("x"), [(i,) for i in range(1000)]),
        )
        versioned = VersionedDatabase(db)
        versioned.execute(UpdateStatement("R", {"v": lit(0)}, TRUE))
        assert versioned.as_of(0)["BIG"] is versioned.as_of(1)["BIG"]
