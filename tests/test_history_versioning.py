"""Unit tests for histories and the time-travel substrate."""

import pytest

from repro import Database, History, Relation, Schema, VersionedDatabase
from repro.relational.expressions import TRUE, col, ge, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)
from repro.relational.versioning import VersionError


def make_db():
    return Database(
        {"R": Relation.from_rows(Schema.of("k", "v"), [(1, 10), (2, 20)])}
    )


def make_history():
    return History.of(
        UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 20)),
        InsertTuple("R", (3, 30)),
        DeleteStatement("R", ge(col("v"), 30)),
    )


class TestHistory:
    def test_execute(self):
        result = make_history().execute(make_db())
        assert set(result["R"]) == {(1, 10), (2, 21)}

    def test_execute_with_snapshots(self):
        snapshots = make_history().execute_with_snapshots(make_db())
        assert len(snapshots) == 4
        assert set(snapshots[0]["R"]) == {(1, 10), (2, 20)}
        assert (3, 30) in snapshots[2]["R"]

    def test_one_based_indexing(self):
        history = make_history()
        assert isinstance(history[1], UpdateStatement)
        assert isinstance(history[3], DeleteStatement)
        with pytest.raises(IndexError):
            history[0]
        with pytest.raises(IndexError):
            history[4]

    def test_prefix(self):
        history = make_history()
        assert len(history.prefix(0)) == 0
        assert len(history.prefix(2)) == 2
        with pytest.raises(IndexError):
            history.prefix(9)

    def test_slice_range(self):
        history = make_history()
        assert len(history.slice_range(2, 3)) == 2
        with pytest.raises(IndexError):
            history.slice_range(3, 2)

    def test_subset_sorts_indices(self):
        history = make_history()
        subset = history.subset([3, 1])
        assert isinstance(subset[1], UpdateStatement)
        assert isinstance(subset[2], DeleteStatement)

    def test_subset_out_of_range(self):
        with pytest.raises(IndexError):
            make_history().subset([5])

    def test_replace_insert_delete(self):
        history = make_history()
        replaced = history.replace(1, no := DeleteStatement("R", TRUE))
        assert replaced[1] == no
        inserted = history.insert_at(2, no)
        assert len(inserted) == 4 and inserted[2] == no
        deleted = history.delete_at(2)
        assert len(deleted) == 2

    def test_accessed_and_target_relations(self):
        history = make_history()
        assert history.accessed_relations() == {"R"}
        assert history.target_relations() == {"R"}

    def test_restrict_to_relation(self):
        pairs = make_history().restrict_to_relation("R")
        assert [p for p, _ in pairs] == [1, 2, 3]
        assert make_history().restrict_to_relation("S") == []

    def test_tuple_independence_flag(self):
        assert make_history().is_tuple_independent()

    def test_positions(self):
        assert list(make_history().positions()) == [1, 2, 3]


class TestVersionedDatabase:
    def test_records_every_version(self):
        versioned = VersionedDatabase(make_db())
        versioned.execute_history(make_history())
        assert versioned.version_count == 4

    def test_time_travel_matches_snapshots(self):
        db = make_db()
        history = make_history()
        snapshots = history.execute_with_snapshots(db)
        versioned = VersionedDatabase.from_history(db, history)
        for i, snapshot in enumerate(snapshots):
            assert versioned.as_of(i).same_contents(snapshot)

    def test_initial_and_current(self):
        versioned = VersionedDatabase.from_history(make_db(), make_history())
        assert versioned.initial().same_contents(make_db())
        assert versioned.current.same_contents(
            make_history().execute(make_db())
        )

    def test_version_out_of_range(self):
        versioned = VersionedDatabase(make_db())
        with pytest.raises(VersionError):
            versioned.as_of(1)
        with pytest.raises(VersionError):
            versioned.as_of(-1)

    def test_history_roundtrip(self):
        history = make_history()
        versioned = VersionedDatabase.from_history(make_db(), history)
        assert versioned.history() == history

    def test_history_since(self):
        history = make_history()
        versioned = VersionedDatabase.from_history(make_db(), history)
        suffix = versioned.history_since(1)
        assert len(suffix) == 2
        # replaying the suffix from version 1 reproduces the final state
        assert suffix.execute(versioned.as_of(1)).same_contents(
            versioned.current
        )

    def test_versions_iterator(self):
        versioned = VersionedDatabase.from_history(make_db(), make_history())
        versions = list(versioned.versions())
        assert [v for v, _ in versions] == [0, 1, 2, 3]

    def test_snapshot_sharing_is_cheap(self):
        """Untouched relations share storage between versions."""
        db = make_db().with_relation(
            "BIG",
            Relation.from_rows(Schema.of("x"), [(i,) for i in range(1000)]),
        )
        versioned = VersionedDatabase(db)
        versioned.execute(UpdateStatement("R", {"v": lit(0)}, TRUE))
        assert versioned.as_of(0)["BIG"] is versioned.as_of(1)["BIG"]
