"""CSV I/O and command-line interface tests."""

import io
import pathlib

import pytest

from repro import Relation, Schema
from repro.cli import main
from repro.relational.csvio import (
    format_value,
    load_database_dir,
    parse_value,
    relation_from_csv,
    relation_to_csv,
)


class TestValueParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("", None),
            ("true", True),
            ("False", False),
            ("42", 42),
            ("-3", -3),
            ("2.5", 2.5),
            ("hello", "hello"),
            ("12abc", "12abc"),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_value(text) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(None, ""), (True, "true"), (1.5, "1.5"), (7, "7"), ("x", "x")],
    )
    def test_format(self, value, expected):
        assert format_value(value) == expected

    def test_roundtrip(self):
        for value in (None, True, False, 0, -5, 2.25, "text"):
            assert parse_value(format_value(value)) == value


class TestCsv:
    def test_read_write_roundtrip(self, tmp_path):
        relation = Relation.from_rows(
            Schema.of("k", "name", "score"),
            [(1, "a", 1.5), (2, "b", None)],
        )
        path = tmp_path / "r.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv(path)
        assert set(loaded) == set(relation)
        assert loaded.schema.attributes == relation.schema.attributes

    def test_read_from_buffer(self):
        buffer = io.StringIO("a,b\n1,x\n2,y\n")
        relation = relation_from_csv(buffer)
        assert set(relation) == {(1, "x"), (2, "y")}

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            relation_from_csv(io.StringIO(""))

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="line 2"):
            relation_from_csv(io.StringIO("a,b\n1\n"))

    def test_load_database_dir(self, tmp_path):
        (tmp_path / "orders.csv").write_text("id,total\n1,10\n")
        (tmp_path / "users.csv").write_text("id\n1\n")
        db = load_database_dir(tmp_path)
        assert set(db.relation_names()) == {"orders", "users"}

    def test_load_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_database_dir(tmp_path)


@pytest.fixture
def workspace(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    (data / "Orders.csv").write_text(
        "ID,Customer,Country,Price,ShippingFee\n"
        "11,Susan,UK,20,5\n"
        "12,Alex,UK,50,5\n"
        "13,Jack,US,60,3\n"
        "14,Mark,US,30,4\n"
    )
    history = tmp_path / "history.sql"
    history.write_text(
        "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;\n"
        "UPDATE Orders SET ShippingFee = ShippingFee + 5 "
        "WHERE Country = 'UK' AND Price <= 100;\n"
        "UPDATE Orders SET ShippingFee = ShippingFee - 2 "
        "WHERE Price <= 30 AND ShippingFee >= 10;\n"
    )
    return tmp_path


class TestCli:
    def test_whatif_prints_delta(self, workspace, capsys):
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Alex" in out
        assert "slice: kept" in out

    def test_whatif_writes_csv(self, workspace, capsys, tmp_path):
        out_file = tmp_path / "delta.csv"
        main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
                "--out", str(out_file),
                "--quiet",
            ]
        )
        content = out_file.read_text()
        assert "Orders,-" in content and "Orders,+" in content

    def test_whatif_explain(self, workspace, capsys):
        main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
                "--method", "R",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert "provenance for Δ Orders" in out
        assert "<-" in out

    def test_whatif_delete_statement(self, workspace, capsys):
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--delete-stmt", "2",
                "--method", "N",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Δ Orders" in out

    def test_whatif_requires_modifications(self, workspace):
        with pytest.raises(SystemExit):
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                ]
            )

    def test_replay(self, workspace, capsys):
        code = main(
            [
                "replay",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--relation", "Orders",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Susan" in out

    def test_replay_writes_csv(self, workspace, tmp_path, capsys):
        out_file = tmp_path / "state.csv"
        main(
            [
                "replay",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--relation", "Orders",
                "--out", str(out_file),
            ]
        )
        assert "Susan" in out_file.read_text()
