"""CSV I/O and command-line interface tests."""

import io
import pathlib

import pytest

from repro import Relation, Schema
from repro.cli import main
from repro.relational.csvio import (
    format_value,
    load_database_dir,
    parse_value,
    relation_from_csv,
    relation_to_csv,
)


class TestValueParsing:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("", None),
            ("true", True),
            ("False", False),
            ("42", 42),
            ("-3", -3),
            ("2.5", 2.5),
            ("hello", "hello"),
            ("12abc", "12abc"),
        ],
    )
    def test_parse(self, text, expected):
        assert parse_value(text) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [(None, ""), (True, "true"), (1.5, "1.5"), (7, "7"), ("x", "x")],
    )
    def test_format(self, value, expected):
        assert format_value(value) == expected

    def test_roundtrip(self):
        for value in (None, True, False, 0, -5, 2.25, "text"):
            assert parse_value(format_value(value)) == value


class TestCsv:
    def test_read_write_roundtrip(self, tmp_path):
        relation = Relation.from_rows(
            Schema.of("k", "name", "score"),
            [(1, "a", 1.5), (2, "b", None)],
        )
        path = tmp_path / "r.csv"
        relation_to_csv(relation, path)
        loaded = relation_from_csv(path)
        assert set(loaded) == set(relation)
        assert loaded.schema.attributes == relation.schema.attributes

    def test_read_from_buffer(self):
        buffer = io.StringIO("a,b\n1,x\n2,y\n")
        relation = relation_from_csv(buffer)
        assert set(relation) == {(1, "x"), (2, "y")}

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            relation_from_csv(io.StringIO(""))

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="line 2"):
            relation_from_csv(io.StringIO("a,b\n1\n"))

    def test_load_database_dir(self, tmp_path):
        (tmp_path / "orders.csv").write_text("id,total\n1,10\n")
        (tmp_path / "users.csv").write_text("id\n1\n")
        db = load_database_dir(tmp_path)
        assert set(db.relation_names()) == {"orders", "users"}

    def test_load_empty_dir_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_database_dir(tmp_path)


@pytest.fixture
def workspace(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    (data / "Orders.csv").write_text(
        "ID,Customer,Country,Price,ShippingFee\n"
        "11,Susan,UK,20,5\n"
        "12,Alex,UK,50,5\n"
        "13,Jack,US,60,3\n"
        "14,Mark,US,30,4\n"
    )
    history = tmp_path / "history.sql"
    history.write_text(
        "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;\n"
        "UPDATE Orders SET ShippingFee = ShippingFee + 5 "
        "WHERE Country = 'UK' AND Price <= 100;\n"
        "UPDATE Orders SET ShippingFee = ShippingFee - 2 "
        "WHERE Price <= 30 AND ShippingFee >= 10;\n"
    )
    return tmp_path


class TestCli:
    def test_whatif_prints_delta(self, workspace, capsys):
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Alex" in out
        assert "slice: kept" in out

    def test_whatif_writes_csv(self, workspace, capsys, tmp_path):
        out_file = tmp_path / "delta.csv"
        main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
                "--out", str(out_file),
                "--quiet",
            ]
        )
        content = out_file.read_text()
        assert "Orders,-" in content and "Orders,+" in content

    def test_whatif_explain(self, workspace, capsys):
        main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
                "--method", "R",
                "--explain",
            ]
        )
        out = capsys.readouterr().out
        assert "provenance for Δ Orders" in out
        assert "<-" in out

    def test_whatif_delete_statement(self, workspace, capsys):
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--delete-stmt", "2",
                "--method", "N",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Δ Orders" in out

    def test_whatif_batch_emits_json_lines(self, workspace, capsys, tmp_path):
        import json

        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps([
            {"replace": [
                [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"]
            ]},
            {"replace": [
                [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 70"]
            ]},
            {"delete_stmt": [2]},
        ]))
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--batch", str(spec),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        lines = [json.loads(line) for line in out.strip().splitlines()]
        assert [line["query"] for line in lines] == [0, 1, 2]
        assert all("delta" in line and "exe_seconds" in line for line in lines)
        # Each emitted delta matches the equivalent single-query answer.
        for index, mods in enumerate(
            (
                ["--replace", "1",
                 "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"],
                ["--replace", "1",
                 "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 70"],
                ["--delete-stmt", "2"],
            )
        ):
            out_file = tmp_path / f"single_{index}.csv"
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    *mods,
                    "--quiet",
                    "--out", str(out_file),
                ]
            )
            capsys.readouterr()
            csv_rows = out_file.read_text().strip().splitlines()[1:]
            batch_delta = lines[index]["delta"].get("Orders")
            csv_count = len([r for r in csv_rows if r.startswith("Orders")])
            batch_count = (
                len(batch_delta["added"]) + len(batch_delta["removed"])
                if batch_delta
                else 0
            )
            assert csv_count == batch_count, index

    def test_whatif_batch_out_and_workers(self, workspace, capsys, tmp_path):
        import json

        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps([
            {"replace": [
                [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"]
            ]},
            {"insert_stmt": [
                [2, "DELETE FROM Orders WHERE Country = 'US'"]
            ]},
        ]))
        out_file = tmp_path / "deltas.jsonl"
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--batch", str(spec),
                "--batch-workers", "2",
                "--backend", "sqlite",
                "--out", str(out_file),
                "--quiet",
            ]
        )
        assert code == 0
        lines = [
            json.loads(line)
            for line in out_file.read_text().strip().splitlines()
        ]
        assert len(lines) == 2
        assert lines[1]["delta"]  # the inserted DELETE produces a delta

    def test_whatif_batch_explain_carries_profile(
        self, workspace, capsys, tmp_path
    ):
        import json

        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps([{"delete_stmt": [2]}]))
        code = main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--batch", str(spec),
                "--explain", "--quiet",
            ]
        )
        assert code == 0
        lines = [
            json.loads(l)
            for l in capsys.readouterr().out.splitlines()
            if l.startswith("{")
        ]
        assert len(lines) == 1
        profile = lines[0]["profile"]
        assert profile  # one EXPLAIN ANALYZE tree pair per relation
        for sides in profile.values():
            assert set(sides) == {"original", "modified"}
            for tree in sides.values():
                assert tree["operator"]
                assert tree["rows"] >= 0
                assert tree["seconds"] >= 0.0

    def test_whatif_batch_rejects_bad_spec(self, workspace, tmp_path):
        spec = tmp_path / "batch.json"
        spec.write_text("[]")
        with pytest.raises(SystemExit, match="non-empty"):
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--batch", str(spec),
                ]
            )
        spec.write_text('[{"bogus": []}]')
        with pytest.raises(SystemExit, match="unknown keys"):
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--batch", str(spec),
                ]
            )
        # Malformed shapes fail with the entry index, not a traceback.
        for bad in (
            '[{"replace": [[1]]}]',          # pair missing the SQL
            '[{"replace": null}]',            # not a list
            '[{"delete_stmt": ["one"]}]',     # non-numeric position
        ):
            spec.write_text(bad)
            with pytest.raises(SystemExit, match="entry 0"):
                main(
                    [
                        "whatif",
                        "--data", str(workspace / "data"),
                        "--history", str(workspace / "history.sql"),
                        "--batch", str(spec),
                    ]
                )

    def test_whatif_requires_modifications(self, workspace):
        with pytest.raises(SystemExit):
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                ]
            )

    def test_replay(self, workspace, capsys):
        code = main(
            [
                "replay",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--relation", "Orders",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Susan" in out

    def test_replay_writes_csv(self, workspace, tmp_path, capsys):
        out_file = tmp_path / "state.csv"
        main(
            [
                "replay",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--relation", "Orders",
                "--out", str(out_file),
            ]
        )
        assert "Susan" in out_file.read_text()


class TestCliErrorReporting:
    """Unreadable inputs and malformed specs exit with a one-line error
    (SystemExit carrying a message string -> stderr + exit code 1),
    never a traceback."""

    def _message_of(self, excinfo) -> str:
        message = excinfo.value.code
        assert isinstance(message, str), "expected a one-line error message"
        assert "\n" not in message.strip()
        assert message.startswith("repro.cli: error:")
        return message

    def test_missing_data_dir(self, workspace):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "nope"),
                    "--history", str(workspace / "history.sql"),
                    "--replace", "1",
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
                ]
            )
        assert "CSV data" in self._message_of(excinfo)

    def test_unreadable_csv_file(self, workspace):
        import os

        target = workspace / "data" / "Orders.csv"
        os.chmod(target, 0)
        try:
            if os.access(target, os.R_OK):  # running as root: no EPERM
                pytest.skip("permissions are not enforced for this user")
            with pytest.raises(SystemExit) as excinfo:
                main(
                    [
                        "whatif",
                        "--data", str(workspace / "data"),
                        "--history", str(workspace / "history.sql"),
                        "--replace", "1",
                        "UPDATE Orders SET ShippingFee = 0",
                    ]
                )
            assert "cannot read CSV data" in self._message_of(excinfo)
        finally:
            os.chmod(target, 0o644)

    def test_malformed_csv_content(self, workspace):
        (workspace / "data" / "Broken.csv").write_text("a,b\n1\n")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--replace", "1",
                    "UPDATE Orders SET ShippingFee = 0",
                ]
            )
        assert "line 2" in self._message_of(excinfo)

    def test_missing_history_file(self, workspace):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "nope.sql"),
                    "--replace", "1",
                    "UPDATE Orders SET ShippingFee = 0",
                ]
            )
        assert "history script" in self._message_of(excinfo)

    def test_batch_spec_not_json(self, workspace, tmp_path):
        spec = tmp_path / "batch.json"
        spec.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--batch", str(spec),
                ]
            )
        assert "not valid JSON" in self._message_of(excinfo)

    def test_batch_spec_missing_file(self, workspace, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--batch", str(tmp_path / "nope.json"),
                ]
            )
        assert "cannot read --batch spec" in self._message_of(excinfo)

    def test_bad_modification_sql(self, workspace):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    "--replace", "1", "THIS IS NOT SQL",
                ]
            )
        assert "unparseable" in self._message_of(excinfo)

    def test_whatif_without_inputs_or_url(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["whatif", "--replace", "1", "UPDATE R SET x = 1"])
        assert "--data and --history" in self._message_of(excinfo)

    def test_replay_missing_data(self, workspace):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "replay",
                    "--data", str(workspace / "nope"),
                    "--history", str(workspace / "history.sql"),
                ]
            )
        self._message_of(excinfo)


class TestCliRemote:
    """--url remote-executes whatif/--batch against a running service."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import WhatIfServer, WhatIfService

        service = WhatIfService(tmp_path / "stores")
        server = WhatIfServer(service, port=0).start_background()
        yield server
        server.shutdown()

    def test_register_and_single_query(self, workspace, server, capsys):
        import json

        code = main(
            [
                "whatif",
                "--url", server.url,
                "--name", "orders",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        line = [l for l in out.splitlines() if l.startswith("{")][0]
        record = json.loads(line)
        assert record["cached"] is False
        assert "Orders" in record["delta"]

    def test_remote_batch_matches_local(self, workspace, server, capsys,
                                        tmp_path):
        import json

        spec = tmp_path / "batch.json"
        spec.write_text(json.dumps(
            [
                {"replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                                 "WHERE Price >= 60"]]},
                {"delete_stmt": [2]},
            ]
        ))
        main(
            [
                "whatif",
                "--url", server.url,
                "--name", "orders",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--batch", str(spec), "--quiet",
            ]
        )
        remote = [
            json.loads(l)
            for l in capsys.readouterr().out.splitlines()
            if l.startswith("{")
        ]
        # local in-process run over the same inputs
        out_file = tmp_path / "local.jsonl"
        main(
            [
                "whatif",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--batch", str(spec),
                "--out", str(out_file), "--quiet",
            ]
        )
        local = [
            json.loads(l) for l in out_file.read_text().splitlines()
        ]
        assert len(remote) == len(local) == 2
        for remote_rec, local_rec in zip(remote, local):
            local_nonempty = {
                rel: d for rel, d in local_rec["delta"].items()
                if d["added"] or d["removed"]
            }
            assert remote_rec["delta"] == local_nonempty

    def test_url_requires_name(self, workspace, server):
        with pytest.raises(SystemExit, match="--name"):
            main(
                [
                    "whatif",
                    "--url", server.url,
                    "--replace", "1", "UPDATE Orders SET ShippingFee = 0",
                ]
            )

    def test_unreachable_service_is_one_line_error(self, workspace):
        with pytest.raises(SystemExit) as excinfo:
            main(
                [
                    "whatif",
                    "--url", "http://127.0.0.1:1",
                    "--name", "orders",
                    "--replace", "1", "UPDATE Orders SET ShippingFee = 0",
                ]
            )
        message = excinfo.value.code
        assert isinstance(message, str)
        assert "service call failed" in message

    def test_remote_explain_carries_profile_and_prints_tree(
        self, workspace, server, capsys
    ):
        import json

        code = main(
            [
                "whatif",
                "--url", server.url,
                "--name", "orders",
                "--data", str(workspace / "data"),
                "--history", str(workspace / "history.sql"),
                "--explain",
                "--replace", "1",
                "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        records = [
            json.loads(l)
            for l in captured.out.splitlines()
            if l.startswith("{")
        ]
        assert len(records) == 1
        assert records[0]["profile"]
        # The human-readable tree rides on stderr, leaving stdout JSONL.
        assert "EXPLAIN ANALYZE" in captured.err
        assert "rows=" in captured.err

    def test_rerunning_register_and_query_is_idempotent(
        self, workspace, server, capsys
    ):
        import json

        argv = [
            "whatif",
            "--url", server.url,
            "--name", "rerun",
            "--data", str(workspace / "data"),
            "--history", str(workspace / "history.sql"),
            "--replace", "1",
            "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        # the documented one-liner survives a verbatim re-run: the
        # existing stored history answers (with a stderr notice, not a
        # 409; stdout stays pure JSONL)
        assert main(argv) == 0
        captured = capsys.readouterr()
        second = captured.out
        assert "already exists" in captured.err
        assert all(
            line.startswith("{") for line in second.splitlines() if line
        )
        get = lambda out: json.loads(
            [l for l in out.splitlines() if l.startswith("{")][0]
        )
        assert get(second)["delta"] == get(first)["delta"]
        assert get(second)["cached"] is True

    def test_bad_flags_do_not_register_server_side(
        self, workspace, server
    ):
        with pytest.raises(SystemExit):
            main(
                [
                    "whatif",
                    "--url", server.url,
                    "--name", "halfdone",
                    "--data", str(workspace / "data"),
                    "--history", str(workspace / "history.sql"),
                    # no modifications: must fail BEFORE registering
                ]
            )
        from repro.service import ServiceClient, ServiceClientError

        with pytest.raises(ServiceClientError) as err:
            ServiceClient(server.url).info("halfdone")
        assert err.value.status == 404


# ---------------------------------------------------------------------------
# precision round trips (shortest-round-trip float formatting)
# ---------------------------------------------------------------------------

class TestPrecisionRoundTrip:
    """``parse_value(format_value(x)) == x`` must hold *exactly* — the
    old ``%g`` formatting truncated floats to 6 significant digits, so
    the CLI delta export silently corrupted values."""

    @pytest.mark.parametrize(
        "value",
        [
            0.1234567890123,
            0.1234567890123456,      # 16 significant digits
            0.12345678901234567,     # 17 significant digits
            1e17,
            10**17,                  # int stays int
            -0.0,
            1.5,
            2.0,                     # int-valued float stays float
            float("inf"),
            float("-inf"),
            1e308,
            5e-324,                  # smallest denormal
            -123456789.987654321,
            True,
            False,
            0,
            -5,
            None,
            "text",
        ],
    )
    def test_exact(self, value):
        back = parse_value(format_value(value))
        assert type(back) is type(value)
        assert repr(back) == repr(value)  # repr: catches -0.0 vs 0.0

    def test_nan_round_trips(self):
        back = parse_value(format_value(float("nan")))
        assert isinstance(back, float) and back != back

    def test_seventeen_digit_float_not_truncated(self):
        value = 0.12345678901234567
        assert format_value(value) != "0.123457"  # the old %g output
        assert parse_value(format_value(value)) == value


# ---------------------------------------------------------------------------
# seeded CSV round-trip property fuzz (codec-corner value pool)
# ---------------------------------------------------------------------------

def _csv_safe(value):
    """Whether a value is in the CSV codec's exact-round-trip domain.

    The cell codec infers types from text, so strings that *look* like
    another type ("", "true", "0") decode as that type by design; every
    other scalar round-trips exactly.
    """
    if isinstance(value, str):
        return parse_value(value) == value and not isinstance(
            parse_value(value), bool
        )
    return True


def _exact_cell(value):
    return (type(value).__name__, repr(value))


class TestCsvRoundTripFuzz:
    """Seeded property fuzz: random typed relations -> csv -> parse ->
    type-exact equality, over the codec-corner value pool (±Inf, NaN,
    bool-vs-int, -0.0, denormals)."""

    def test_random_relations_round_trip(self):
        from fuzz_differential import fresh_rng, random_codec_value, scaled

        rng = fresh_rng(offset=31)
        for trial in range(scaled(60)):
            arity = rng.randint(1, 5)
            schema = Schema.of(*(f"c{i}" for i in range(arity)))
            rows = set()
            for _ in range(rng.randint(0, 20)):
                row = tuple(
                    random_codec_value(rng) for _ in range(arity)
                )
                if all(_csv_safe(v) for v in row):
                    rows.add(row)
            relation = Relation.from_rows(schema, rows)
            buffer = io.StringIO()
            relation_to_csv(relation, buffer)
            buffer.seek(0)
            loaded = relation_from_csv(buffer)
            assert loaded.schema.attributes == schema.attributes
            assert sorted(map(_exact_row, loaded.tuples)) == sorted(
                map(_exact_row, relation.tuples)
            ), trial

    def test_random_bags_round_trip_both_styles(self):
        from fuzz_differential import fresh_rng, random_codec_value, scaled

        from repro.relational import BagRelation
        from repro.relational.csvio import bag_from_csv, bag_to_csv

        rng = fresh_rng(offset=32)
        for trial in range(scaled(40)):
            arity = rng.randint(1, 4)
            schema = Schema.of(*(f"c{i}" for i in range(arity)))
            counts = {}
            for _ in range(rng.randint(0, 12)):
                row = tuple(
                    random_codec_value(rng) for _ in range(arity)
                )
                if all(_csv_safe(v) and not _is_nan(v) for v in row):
                    counts[row] = rng.randint(1, 4)
            bag = BagRelation(schema, counts)
            for style in ("count", "repeat"):
                buffer = io.StringIO()
                bag_to_csv(bag, buffer, style=style)
                buffer.seek(0)
                loaded = bag_from_csv(buffer)
                assert loaded.schema.attributes == schema.attributes
                assert sorted(
                    (_exact_row(r), c)
                    for r, c in loaded.multiplicities.items()
                ) == sorted(
                    (_exact_row(r), c)
                    for r, c in bag.multiplicities.items()
                ), (trial, style)


def _exact_row(row):
    return tuple(_exact_cell(v) for v in row)


def _is_nan(value):
    return isinstance(value, float) and value != value


# ---------------------------------------------------------------------------
# bag CSV export/import (multiplicities must survive)
# ---------------------------------------------------------------------------

class TestBagCsv:
    def _bag(self):
        from repro.relational import BagRelation

        return BagRelation(
            Schema.of("k", "v"), {(1, "a"): 3, (2, "b"): 1}
        )

    def test_relation_to_csv_rejects_bags(self):
        with pytest.raises(TypeError, match="multiplicities"):
            relation_to_csv(self._bag(), io.StringIO())

    def test_count_style_writes_count_column(self):
        buffer = io.StringIO()
        from repro.relational.csvio import bag_to_csv

        bag_to_csv(self._bag(), buffer)
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "k,v,_count"
        assert "1,a,3" in lines
        assert "2,b,1" in lines

    def test_repeat_style_writes_one_row_per_duplicate(self):
        buffer = io.StringIO()
        from repro.relational.csvio import bag_to_csv

        bag_to_csv(self._bag(), buffer, style="repeat")
        lines = buffer.getvalue().splitlines()
        assert lines[0] == "k,v"
        assert lines[1:].count("1,a") == 3
        assert lines[1:].count("2,b") == 1

    def test_reserved_count_header_is_rejected_on_export(self):
        from repro.relational import BagRelation
        from repro.relational.csvio import bag_to_csv

        bag = BagRelation(Schema.of("_count",), {(1,): 1})
        with pytest.raises(ValueError, match="_count"):
            bag_to_csv(bag, io.StringIO())

    def test_import_without_count_column_counts_duplicates(self):
        from repro.relational.csvio import bag_from_csv

        buffer = io.StringIO("k,v\n1,a\n1,a\n2,b\n")
        bag = bag_from_csv(buffer)
        assert dict(bag.multiplicities) == {(1, "a"): 2, (2, "b"): 1}

    def test_import_rejects_bad_multiplicities(self):
        from repro.relational.csvio import bag_from_csv

        with pytest.raises(ValueError, match="not an integer"):
            bag_from_csv(io.StringIO("k,_count\n1,x\n"))
        with pytest.raises(ValueError, match=">= 1"):
            bag_from_csv(io.StringIO("k,_count\n1,0\n"))

    def test_cli_replay_bag_round_trips_duplicates(self, tmp_path, capsys):
        from repro.relational.csvio import bag_from_csv

        data = tmp_path / "tables"
        data.mkdir()
        (data / "Orders.csv").write_text("id,fee\n1,5\n2,5\n3,0\n")
        history = tmp_path / "history.sql"
        # The projection-free update makes rows 1 and 2 identical under
        # bag semantics; the set-semantics exporter would collapse them.
        history.write_text("UPDATE Orders SET id = 0 WHERE fee = 5;\n")
        out = tmp_path / "state.csv"
        code = main(
            [
                "replay",
                "--data", str(data),
                "--history", str(history),
                "--relation", "Orders",
                "--bag",
                "--out", str(out),
            ]
        )
        assert code == 0
        bag = bag_from_csv(out)
        assert dict(bag.multiplicities) == {(0, 5): 2, (3, 0): 1}
