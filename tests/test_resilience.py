"""The resilient serving tier: admission control, deadlines, body
guards, graceful shutdown, idempotent appends, degradation fallbacks,
and the client's retry/backoff contract.

Every timing-sensitive contract is tested with injectable clocks,
sleeps, rngs, and openers — no real backoff sleeps, no flaky waits.
The only real threads are the ones the contracts are *about* (an
in-flight request during shutdown, a concurrent request hitting a full
admission controller).
"""

from __future__ import annotations

import email.message
import http.client
import io
import json
import sqlite3
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.degradation import degradation_snapshot, reset_degradation
from repro.service import (
    ResilienceConfig,
    ServiceClient,
    ServiceClientError,
    WhatIfServer,
    WhatIfService,
    backoff_delay,
)
from repro.service.resilience import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    IdempotencyCache,
    InFlightTracker,
    Overloaded,
)


@pytest.fixture(autouse=True)
def _clean_degradation():
    reset_degradation()
    yield
    reset_degradation()


def make_server(tmp_path, orders_db, paper_history, **resilience_kwargs):
    service = WhatIfService(tmp_path / "stores")
    service.register("orders", orders_db, paper_history)
    config = ResilienceConfig(**resilience_kwargs)
    return WhatIfServer(service, port=0, resilience=config)


SPEC = {
    "replace": [
        [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"]
    ]
}


# -- backoff schedule ------------------------------------------------------


def test_backoff_delay_grows_exponentially_with_jitter():
    # rng() = 1.0 → jitter factor 1.0: the pure exponential schedule.
    full = [
        backoff_delay(a, base=0.1, cap=5.0, rng=lambda: 1.0)
        for a in range(4)
    ]
    assert full == pytest.approx([0.1, 0.2, 0.4, 0.8])
    # rng() = 0.0 → the floor of the equal-jitter window: half of full.
    half = [
        backoff_delay(a, base=0.1, cap=5.0, rng=lambda: 0.0)
        for a in range(4)
    ]
    assert half == pytest.approx([0.05, 0.1, 0.2, 0.4])


def test_backoff_delay_respects_cap():
    assert backoff_delay(30, base=0.1, cap=5.0, rng=lambda: 1.0) == 5.0
    assert backoff_delay(30, base=0.1, cap=5.0, rng=lambda: 0.0) == 2.5


# -- resilience primitives (no server) -------------------------------------


def test_admission_controller_sheds_beyond_limit():
    admission = AdmissionController(limit=2, retry_after=0.5)
    admission.enter()
    admission.enter()
    with pytest.raises(Overloaded) as excinfo:
        admission.enter()
    assert excinfo.value.status == 503
    assert excinfo.value.retryable
    assert excinfo.value.retry_after == 0.5
    assert admission.shed_total == 1
    admission.leave()
    admission.enter()  # a freed slot admits again
    assert admission.in_flight == 2


def test_admission_controller_zero_limit_never_sheds():
    admission = AdmissionController(limit=0, retry_after=0.5)
    for _ in range(100):
        admission.enter()
    assert admission.in_flight == 100
    assert admission.shed_total == 0


def test_deadline_uses_injected_clock():
    now = [100.0]
    deadline = Deadline(5.0, clock=lambda: now[0])
    assert deadline.remaining() == pytest.approx(5.0)
    assert not deadline.expired
    now[0] += 5.5
    assert deadline.expired
    with pytest.raises(DeadlineExceeded):
        deadline.check("the test")


def test_deadline_run_times_out_and_abandons_worker():
    release = threading.Event()
    deadline = Deadline(0.05)
    with pytest.raises(DeadlineExceeded):
        deadline.run(lambda: release.wait(5), "slow work")
    release.set()  # let the abandoned worker finish promptly


def test_deadline_run_propagates_worker_exception():
    deadline = Deadline(5.0)

    def boom():
        raise ValueError("from the worker")

    with pytest.raises(ValueError, match="from the worker"):
        deadline.run(boom)


def test_in_flight_tracker_wait_idle():
    tracker = InFlightTracker()
    tracker.enter()
    tracker.begin_drain()
    assert tracker.draining
    assert not tracker.wait_idle(timeout=0.05)  # still one in flight
    done = threading.Event()

    def _leave():
        tracker.leave()
        done.set()

    threading.Timer(0.05, _leave).start()
    assert tracker.wait_idle(timeout=5)
    assert done.wait(1)


def test_idempotency_cache_is_bounded_lru():
    cache = IdempotencyCache(capacity=2)
    cache.put("a", {"n": 1})
    cache.put("b", {"n": 2})
    assert cache.get("a") == {"n": 1}  # refreshes "a"
    cache.put("c", {"n": 3})  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == {"n": 1}
    assert cache.get("c") == {"n": 3}
    assert len(cache) == 2


# -- server: admission, deadlines, body guards -----------------------------


def test_overload_sheds_503_with_retry_after(
    tmp_path, orders_db, paper_history
):
    """With one in-flight slot occupied, a concurrent compute request is
    shed with 503 + Retry-After and no effect; after release, requests
    are admitted again.  No hangs, no 500s."""
    server = make_server(
        tmp_path, orders_db, paper_history,
        max_in_flight=1, retry_after=0.125,
    ).start_background()
    try:
        service = server.service
        started, release = threading.Event(), threading.Event()
        real_answer = service.answer

        def slow_answer(*args, **kwargs):
            started.set()
            assert release.wait(10), "test deadlock"
            return real_answer(*args, **kwargs)

        service.answer = slow_answer
        blocking = ServiceClient(server.url, retries=0)
        shed = ServiceClient(server.url, retries=0)
        outcome = {}

        def _blocked():
            outcome["result"] = blocking.whatif("orders", SPEC)

        thread = threading.Thread(target=_blocked)
        thread.start()
        try:
            assert started.wait(10)
            with pytest.raises(ServiceClientError) as excinfo:
                shed.whatif("orders", SPEC)
            assert excinfo.value.status == 503
            assert excinfo.value.retryable
            assert excinfo.value.retry_after == pytest.approx(0.125)
            # Health keeps answering while the server is saturated, and
            # reports the saturation.
            health = shed.health()
            assert health["ok"] and health["ready"]
            assert health["resilience"]["in_flight"] == 1
            assert health["resilience"]["shed_total"] == 1
            # Non-compute routes bypass admission control entirely.
            assert shed.info("orders")["name"] == "orders"
        finally:
            release.set()
            thread.join(timeout=10)
        assert "delta" in outcome["result"]  # the admitted request won
        service.answer = real_answer
        # The slot is free again: a fresh compute request is admitted.
        assert "delta" in shed.whatif("orders", SPEC)
    finally:
        server.shutdown()


def test_shed_request_retries_and_succeeds_with_injected_sleep(
    tmp_path, orders_db, paper_history
):
    """The client half of shedding: a 503 is retried after the server's
    Retry-After hint (recorded, not slept) and the retry succeeds."""
    server = make_server(
        tmp_path, orders_db, paper_history, retry_after=0.25
    ).start_background()
    try:
        service = server.service
        real_answer = service.answer
        calls = {"n": 0}

        def flaky_answer(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise Overloaded("synthetic overload", 0.25)
            return real_answer(*args, **kwargs)

        service.answer = flaky_answer
        sleeps: list[float] = []
        client = ServiceClient(
            server.url, retries=2, sleep=sleeps.append
        )
        answer = client.whatif("orders", SPEC)
        assert "delta" in answer
        assert calls["n"] == 2
        assert sleeps == [pytest.approx(0.25)]  # the server's hint
    finally:
        server.shutdown()


def test_deadline_expiry_returns_504(tmp_path, orders_db, paper_history):
    """A stalled computation is cut off server-side by the default
    deadline; the client gets a fast 504 (its own generous socket
    timeout never fires) and the timeout is counted in /health."""
    server = make_server(
        tmp_path, orders_db, paper_history, default_deadline_ms=150
    ).start_background()
    try:
        service = server.service
        release = threading.Event()
        real_misses = service._answer_misses

        def stalled_misses(*args, **kwargs):
            release.wait(10)
            return real_misses(*args, **kwargs)

        service._answer_misses = stalled_misses
        client = ServiceClient(server.url, retries=0, timeout=30.0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.whatif("orders", SPEC)
        assert excinfo.value.status == 504
        assert not excinfo.value.retryable
        release.set()
        service._answer_misses = real_misses
        health = ServiceClient(server.url).health()
        assert health["resilience"]["deadline_timeouts"] == 1
        # With the stall gone the same query answers fine under a
        # client-sent deadline (header path, plenty of budget).
        quick = ServiceClient(server.url, deadline=30.0)
        assert "delta" in quick.whatif("orders", SPEC)
    finally:
        server.shutdown()


def _raw_post(server, path, body: bytes, headers: dict) -> tuple:
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", path)
        for name, value in headers.items():
            conn.putheader(name, value)
        conn.endheaders()
        if body:
            conn.send(body)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def test_missing_content_length_is_411(tmp_path, orders_db, paper_history):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        status, payload = _raw_post(
            server,
            "/histories/orders/whatif",
            b"",
            {"Content-Type": "application/json"},
        )
        assert status == 411
        assert "Content-Length" in payload["error"]
    finally:
        server.shutdown()


def test_oversized_body_is_413_before_reading(
    tmp_path, orders_db, paper_history
):
    server = make_server(
        tmp_path, orders_db, paper_history, max_body_bytes=64
    )
    server.start_background()
    try:
        big = json.dumps({"modifications": {"pad": "x" * 500}}).encode()
        status, payload = _raw_post(
            server,
            "/histories/orders/whatif",
            big,
            {
                "Content-Type": "application/json",
                "Content-Length": str(len(big)),
            },
        )
        assert status == 413
        assert "64-byte limit" in payload["error"]
        # The server survives: a small request on a new connection works.
        assert ServiceClient(server.url).health()["ok"]
    finally:
        server.shutdown()


def test_bad_deadline_header_is_400_and_expired_is_504(
    tmp_path, orders_db, paper_history
):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        body = json.dumps({"modifications": SPEC}).encode()
        base = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
        }
        status, payload = _raw_post(
            server, "/histories/orders/whatif", body,
            {**base, "X-Mahif-Deadline-Ms": "soon"},
        )
        assert status == 400
        assert "X-Mahif-Deadline-Ms" in payload["error"]
        status, payload = _raw_post(
            server, "/histories/orders/whatif", body,
            {**base, "X-Mahif-Deadline-Ms": "-5"},
        )
        assert status == 504
    finally:
        server.shutdown()


# -- graceful shutdown -----------------------------------------------------


def test_draining_sheds_everything_but_health(
    tmp_path, orders_db, paper_history
):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        server.tracker.begin_drain()
        client = ServiceClient(server.url, retries=0)
        with pytest.raises(ServiceClientError) as excinfo:
            client.whatif("orders", SPEC)
        assert excinfo.value.status == 503
        assert excinfo.value.retryable
        with pytest.raises(ServiceClientError) as excinfo:
            client.info("orders")  # reads shed too: stores are closing
        assert excinfo.value.status == 503
        health = client.health()
        assert health["ok"] and not health["ready"]
        assert health["resilience"]["draining"]
    finally:
        server.shutdown()


def test_graceful_shutdown_completes_in_flight_request(
    tmp_path, orders_db, paper_history
):
    """The acceptance scenario: a request is mid-computation when
    shutdown starts; shutdown waits, the request completes with 200,
    and only then do the stores close."""
    server = make_server(
        tmp_path, orders_db, paper_history, drain_timeout=30.0
    ).start_background()
    service = server.service
    started, release = threading.Event(), threading.Event()
    real_answer = service.answer

    def slow_answer(*args, **kwargs):
        started.set()
        assert release.wait(10), "test deadlock"
        return real_answer(*args, **kwargs)

    service.answer = slow_answer
    outcome = {}

    def _request():
        try:
            outcome["result"] = ServiceClient(
                server.url, retries=0
            ).whatif("orders", SPEC)
        except Exception as exc:  # surfaced by the asserts below
            outcome["error"] = exc

    request_thread = threading.Thread(target=_request)
    request_thread.start()
    assert started.wait(10)

    shutdown_result = {}
    shutdown_thread = threading.Thread(
        target=lambda: shutdown_result.update(
            drained=server.shutdown()
        )
    )
    shutdown_thread.start()
    # Shutdown must be parked on the drain, not racing past it.
    assert server.tracker.draining
    assert not shutdown_result  # still waiting on the in-flight request
    release.set()
    request_thread.join(timeout=10)
    shutdown_thread.join(timeout=10)
    assert shutdown_result.get("drained") is True
    assert "error" not in outcome, f"in-flight request died: {outcome}"
    assert "delta" in outcome["result"]
    # The stores were flushed+closed afterwards: reopening sees the data.
    reopened = WhatIfService(tmp_path / "stores")
    try:
        assert reopened.history_names() == ["orders"]
    finally:
        reopened.close()


def test_fast_shutdown_skips_drain(tmp_path, orders_db, paper_history):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    assert server.shutdown(drain=False) is True  # nothing in flight


# -- idempotent append -----------------------------------------------------


def test_append_with_same_key_replays_instead_of_doubling(
    tmp_path, orders_db, paper_history
):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        client = ServiceClient(server.url)
        sql = "UPDATE Orders SET Price = Price + 1 WHERE Country = 'US';"
        first = client.append(
            "orders", statements_sql=sql, idempotency_key="key-1"
        )
        assert first["length"] == 4
        assert "idempotent_replay" not in first
        replay = client.append(
            "orders", statements_sql=sql, idempotency_key="key-1"
        )
        assert replay["idempotent_replay"] is True
        assert replay["length"] == 4  # no second append happened
        # A different key appends for real.
        second = client.append(
            "orders", statements_sql=sql, idempotency_key="key-2"
        )
        assert second["length"] == 5
    finally:
        server.shutdown()


def test_lost_append_response_retry_does_not_double_append(
    tmp_path, orders_db, paper_history
):
    """The end-to-end idempotency story: the server processes an append
    but the client never sees the response (connection dies); the
    client's automatic retry carries the same auto-generated key and
    must observe the original outcome, not append twice."""
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        state = {"append_calls": 0}

        def lossy_opener(request, timeout=None):
            response = urllib.request.urlopen(request, timeout=timeout)
            if request.full_url.endswith("/append"):
                state["append_calls"] += 1
                if state["append_calls"] == 1:
                    # The server handled it; the response is lost.
                    response.read()
                    response.close()
                    raise urllib.error.URLError(
                        "simulated connection reset"
                    )
            return response

        sleeps: list[float] = []
        client = ServiceClient(
            server.url,
            retries=2,
            sleep=sleeps.append,
            rng=lambda: 1.0,
            opener=lossy_opener,
        )
        sql = "UPDATE Orders SET Price = Price + 1 WHERE Country = 'US';"
        result = client.append("orders", statements_sql=sql)
        assert state["append_calls"] == 2  # original + one retry
        assert result["idempotent_replay"] is True
        assert result["length"] == 4  # appended exactly once
        assert len(sleeps) == 1  # backed off before the retry
        # And the history really has exactly one extra statement.
        info = ServiceClient(server.url).info("orders")
        assert info["length"] == 4
    finally:
        server.shutdown()


# -- degradation: sqlite → compiled ----------------------------------------


class _BrokenSqliteEngine:
    def answer_batch(self, *args, **kwargs):
        raise sqlite3.OperationalError("injected: database is locked")


def test_sqlite_failure_degrades_to_compiled(
    tmp_path, orders_db, paper_history, capsys
):
    server = make_server(tmp_path, orders_db, paper_history)
    server.start_background()
    try:
        service = server.service
        # Pre-seed the engine cache with a poisoned sqlite engine; the
        # compiled fallback is built lazily and untouched.
        with service._engines_lock:
            service._engines[("sqlite", 1)] = _BrokenSqliteEngine()
        client = ServiceClient(server.url)
        answer = client.whatif("orders", SPEC, backend="sqlite")
        assert answer["backend"] == "compiled"
        assert answer["degraded_from"] == "sqlite"
        assert "delta" in answer
        health = client.health()
        assert health["resilience"]["sqlite_fallbacks"] == 1
        assert health["resilience"]["degradation"] == {
            "sqlite_fallback": 1
        }
        # The oracle: the degraded answer equals a compiled answer.
        compiled = client.whatif("orders", SPEC, backend="compiled")
        assert answer["delta"] == compiled["delta"]
    finally:
        server.shutdown()


# -- client retry behavior (no server at all) ------------------------------


def _http_503(retry_after: str | None = None) -> urllib.error.HTTPError:
    headers = email.message.Message()
    if retry_after is not None:
        headers["Retry-After"] = retry_after
    return urllib.error.HTTPError(
        "http://x/histories/h/whatif", 503, "busy", headers,
        io.BytesIO(b'{"error": "server at capacity"}'),
    )


def test_client_backoff_schedule_without_retry_after():
    attempts, sleeps = [], []

    def opener(request, timeout=None):
        attempts.append(request.full_url)
        raise _http_503()

    client = ServiceClient(
        "http://x", retries=3, backoff_base=0.1, backoff_cap=5.0,
        sleep=sleeps.append, rng=lambda: 1.0, opener=opener,
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.whatif("h", SPEC)
    assert excinfo.value.status == 503
    assert excinfo.value.retryable
    assert len(attempts) == 4  # 1 try + 3 retries
    assert sleeps == pytest.approx([0.1, 0.2, 0.4])


def test_client_honors_server_retry_after_hint():
    sleeps = []

    def opener(request, timeout=None):
        raise _http_503(retry_after="1.5")

    client = ServiceClient(
        "http://x", retries=2, sleep=sleeps.append, opener=opener
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.whatif("h", SPEC)
    assert excinfo.value.retry_after == 1.5
    assert sleeps == pytest.approx([1.5, 1.5])


def test_client_does_not_retry_non_retryable_statuses():
    attempts = []

    def opener(request, timeout=None):
        attempts.append(1)
        raise urllib.error.HTTPError(
            "http://x/h", 400, "bad", email.message.Message(),
            io.BytesIO(b'{"error": "bad spec"}'),
        )

    client = ServiceClient(
        "http://x", retries=5, sleep=lambda s: None, opener=opener
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.whatif("h", SPEC)
    assert excinfo.value.status == 400
    assert not excinfo.value.retryable
    assert len(attempts) == 1


def test_client_register_does_not_retry_transport_errors(orders_db):
    attempts = []

    def opener(request, timeout=None):
        attempts.append(1)
        raise urllib.error.URLError("connection refused")

    client = ServiceClient(
        "http://x", retries=5, sleep=lambda s: None, opener=opener
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.register("h", orders_db)
    assert excinfo.value.retryable  # the caller may retry deliberately
    assert len(attempts) == 1  # ...but the client must not, blindly


def test_client_deadline_bounds_total_retry_time():
    """The clock advances only via recorded sleeps; the client must stop
    retrying when the budget is gone and say so."""
    now = [0.0]
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        now[0] += seconds

    def opener(request, timeout=None):
        now[0] += 0.05  # each attempt costs 50ms of budget
        raise urllib.error.URLError("down")

    client = ServiceClient(
        "http://x",
        retries=100,
        backoff_base=0.2,
        deadline=1.0,
        sleep=fake_sleep,
        rng=lambda: 1.0,
        clock=lambda: now[0],
        opener=opener,
    )
    with pytest.raises(ServiceClientError) as excinfo:
        client.whatif("h", SPEC)
    assert now[0] <= 1.2  # never blew meaningfully past the budget
    assert len(sleeps) < 10  # bounded by the deadline, not by retries


def test_client_propagates_deadline_header():
    seen = {}

    def opener(request, timeout=None):
        seen["deadline"] = request.get_header("X-mahif-deadline-ms")
        seen["timeout"] = timeout
        raise urllib.error.URLError("stop here")

    client = ServiceClient(
        "http://x", retries=0, deadline=2.0, timeout=60.0,
        clock=lambda: 0.0, opener=opener,
    )
    with pytest.raises(ServiceClientError):
        client.whatif("h", SPEC)
    assert seen["deadline"] == "2000"
    assert seen["timeout"] == pytest.approx(2.0)  # min(timeout, budget)
