"""Dependency-graph analysis tests."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.analysis import build_dependency_graph
from repro.relational.algebra import RelScan
from repro.relational.expressions import and_, col, ge, le, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")
ROWS = [(i, i * 10, 5) for i in range(1, 11)]


def db_with(rows=ROWS):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def window(low, high):
    return and_(ge(col("P"), low), le(col("P"), high))


class TestDependencyGraph:
    def test_overlapping_updates_connected(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 50)),
            UpdateStatement("R", {"F": col("F") + 1}, window(40, 90)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert (1, 2) in analysis.graph.edges()

    def test_disjoint_updates_isolated(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 30)),
            UpdateStatement("R", {"F": col("F") + 1}, window(80, 100)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert analysis.graph.number_of_edges() == 0
        assert analysis.independent_statements() == [1, 2]

    def test_transitive_chain_via_attributes(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(50)}, window(10, 30)),
            UpdateStatement("R", {"F": col("F") * 2}, ge(col("F"), 50)),
            UpdateStatement("R", {"k": lit(0)}, ge(col("F"), 100)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert (1, 2) in analysis.graph.edges()
        assert (2, 3) in analysis.graph.edges()
        assert analysis.reachable_from(1) == {1, 2, 3}

    def test_inserts_do_not_interact(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 30)),
            InsertTuple("R", (99, 20, 5)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert analysis.graph.number_of_edges() == 0

    def test_insert_query_conservatively_connected(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 30)),
            InsertQuery("R", RelScan("R")),
            UpdateStatement("R", {"F": col("F") + 1}, window(80, 100)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert (1, 2) in analysis.graph.edges()
        assert (2, 3) in analysis.graph.edges()

    def test_different_relations_never_connected(self):
        other = Schema.of("x")
        db = Database(
            {
                "R": Relation.from_rows(SCHEMA, ROWS),
                "S": Relation.from_rows(other, [(1,)]),
            }
        )
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 90)),
            UpdateStatement("S", {"x": col("x") + 1}, ge(col("x"), 0)),
        )
        analysis = build_dependency_graph(history, db)
        assert analysis.graph.number_of_edges() == 0

    def test_node_attributes(self):
        history = History.of(
            DeleteStatement("R", window(10, 20)),
            InsertTuple("R", (99, 20, 5)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert analysis.graph.nodes[1]["kind"] == "delete"
        assert analysis.graph.nodes[2]["kind"] == "insert"
        assert analysis.graph.nodes[1]["relation"] == "R"

    def test_summary(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 30)),
        )
        analysis = build_dependency_graph(history, db_with())
        assert "1 statements" in analysis.summary()

    def test_generated_workload_matches_d_parameter(self):
        """The workload generator's independent updates must be isolated
        from statement 1 in the graph."""
        from repro.workloads import WorkloadSpec, build_workload

        workload = build_workload(
            WorkloadSpec(rows=400, updates=10, dependent_pct=20, seed=3)
        )
        analysis = build_dependency_graph(
            workload.history,
            workload.database,
        )
        # statement 1 (the modified one) must not reach the far windows
        descendants = analysis.reachable_from(1)
        assert len(descendants) <= 4
