"""Shared fixtures: the paper's running example and small databases."""

from __future__ import annotations

import os
import pathlib
import sys

# Fallback so the tests run even without the editable install.
_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# The static soundness layer is on for every test run: each reenactment
# plan the engine builds is schema/type-verified and each optimizer
# rewrite certified NULL-sound (setdefault, so a run can still opt out
# with MAHIF_VERIFY_PLANS=0 to measure raw planning cost).
os.environ.setdefault("MAHIF_VERIFY_PLANS", "1")

import pytest

from repro import (
    Database,
    History,
    Relation,
    Schema,
    parse_history,
    parse_statement,
)

ORDER_SCHEMA = Schema.of("ID", "Customer", "Country", "Price", "ShippingFee")

ORDER_ROWS = [
    (11, "Susan", "UK", 20, 5),
    (12, "Alex", "UK", 50, 5),
    (13, "Jack", "US", 60, 3),
    (14, "Mark", "US", 30, 4),
]


@pytest.fixture
def orders_db() -> Database:
    """The paper's Figure 1 database."""
    return Database(
        {"Orders": Relation.from_rows(ORDER_SCHEMA, ORDER_ROWS)}
    )


@pytest.fixture
def paper_history() -> History:
    """The paper's Figure 2 history (u1, u2, u3)."""
    return History(
        tuple(
            parse_history(
                """
                UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
                UPDATE Orders SET ShippingFee = ShippingFee + 5
                    WHERE Country = 'UK' AND Price <= 100;
                UPDATE Orders SET ShippingFee = ShippingFee - 2
                    WHERE Price <= 30 AND ShippingFee >= 10;
                """
            )
        )
    )


@pytest.fixture
def u1_prime():
    """The paper's hypothetical replacement u1' (threshold $60)."""
    return parse_statement(
        "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60;"
    )
