"""Four-way differential fuzz: interpreter == compiled == sqlite == vector.

The machine-generated half of the middleware story: seeded random
schemas, databases, plans, histories and what-if modifications are run
through all four execution backends, asserting identical results under
set *and* bag semantics, for query evaluation, full history replay
(final database state), and every engine method variant.

Case budget (unscaled defaults, checked by ``test_case_budget``):

* ``N_PLANS`` reused-generator plans x {set, bag}           = 2*N_PLANS
* ``N_REPLAYS`` typed histories x {set, bag} final states   = 2*N_REPLAYS
* ``N_HWQS`` what-if queries x 5 methods                    = 5*N_HWQS
* ``N_BATCHES`` batched replays x 5 methods (batch ≡ loop,
  shared-plan path) plus their modified histories x {set, bag}

comfortably over the 200-case acceptance floor.  Set
``MAHIF_FUZZ_SEED``/``MAHIF_FUZZ_SCALE`` to randomize or shrink runs
(see ``fuzz_differential``).
"""

import pytest

from fuzz_differential import (
    fresh_rng,
    random_history,
    random_hwq,
    random_hwq_batch,
    random_typed_database,
    scaled,
)
from test_exec_compiled import (
    random_database as random_untyped_database,
    random_plan,
)

from repro.core import Mahif, MahifConfig, Method
from repro.relational import (
    BagDatabase,
    evaluate_query,
    evaluate_query_bag,
    evaluate_query_bag_interpreted,
    evaluate_query_interpreted,
    execute_history_bag,
    use_backend,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    output_schema,
)
from repro.relational.expressions import (
    EvaluationError,
    attributes_of,
    variables_of,
)
from repro.relational.schema import SchemaError

BACKENDS = ("interpreted", "compiled", "sqlite", "vector")

#: The non-oracle backends, compared against the interpreter.
CHECKED = ("compiled", "sqlite", "vector")

N_PLANS = 150
N_REPLAYS = 120
N_HWQS = 24
N_BATCHES = 6
BATCH_SIZE = 4


def test_case_budget():
    """The acceptance floor: ≥ 200 seeded differential cases by default."""
    assert (
        2 * N_PLANS
        + 2 * N_REPLAYS
        + len(Method) * N_HWQS
        + len(Method) * N_BATCHES * BATCH_SIZE
        >= 200
    )


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _well_scoped(op, schemas):
    """Whether every expression reads only in-scope attributes.

    The sqlite backend rejects unbound references eagerly at translation
    time while the in-process backends raise lazily per evaluated row
    (see DESIGN.md); the reused untyped plan generator produces a few
    such plans, which get their own dedicated test below.
    """

    def refs(expr):
        return attributes_of(expr) | variables_of(expr)

    def scope(node):
        return set(output_schema(node, schemas).attributes)

    try:
        if isinstance(op, (RelScan, Singleton)):
            output_schema(op, schemas)
            return True
        if isinstance(op, Select):
            return _well_scoped(op.input, schemas) and refs(
                op.condition
            ) <= scope(op.input)
        if isinstance(op, Project):
            if not _well_scoped(op.input, schemas):
                return False
            inner = scope(op.input)
            return all(refs(expr) <= inner for expr, _ in op.outputs)
        if isinstance(op, (Union, Difference)):
            return _well_scoped(op.left, schemas) and _well_scoped(
                op.right, schemas
            )
        if isinstance(op, Join):
            if not (
                _well_scoped(op.left, schemas)
                and _well_scoped(op.right, schemas)
            ):
                return False
            return refs(op.condition) <= scope(op.left) | scope(op.right)
    except SchemaError:
        # Schema-level failures raise identically on every backend and
        # are compared directly by the differential.
        return True
    return False


def _outcome(fn):
    try:
        return fn(), None
    except (SchemaError, EvaluationError) as exc:
        return None, type(exc)


# ---------------------------------------------------------------------------
# plan-level differential (reusing the untyped PR-1 generators)
# ---------------------------------------------------------------------------

class TestPlanDifferential:
    def test_random_plans_three_way_set_semantics(self):
        rng = fresh_rng(offset=1)
        compared = 0
        for trial in range(scaled(N_PLANS)):
            db = random_untyped_database(rng)
            plan = random_plan(rng)
            if not _well_scoped(
                plan, {name: db.schema_of(name) for name in db.relations}
            ):
                continue
            compared += 1
            reference, ref_err = _outcome(
                lambda: evaluate_query_interpreted(plan, db)
            )
            for backend in CHECKED:
                actual, err = _outcome(
                    lambda: evaluate_query(plan, db, backend=backend)
                )
                assert err == ref_err, (trial, backend, err, ref_err)
                if ref_err is None:
                    assert actual.schema.attributes == reference.schema.attributes
                    assert actual.tuples == reference.tuples, (trial, backend)
        assert compared >= scaled(N_PLANS) * 0.8  # the filter skips few

    def test_random_plans_three_way_bag_semantics(self):
        rng = fresh_rng(offset=2)
        for trial in range(scaled(N_PLANS)):
            db = random_untyped_database(rng, rows=8)
            plan = random_plan(rng)
            if not _well_scoped(
                plan, {name: db.schema_of(name) for name in db.relations}
            ):
                continue
            bag_db = BagDatabase.from_set_database(db)
            reference, ref_err = _outcome(
                lambda: evaluate_query_bag_interpreted(plan, bag_db)
            )
            for backend in CHECKED:
                actual, err = _outcome(
                    lambda: evaluate_query_bag(plan, bag_db, backend=backend)
                )
                assert err == ref_err, (trial, backend, err, ref_err)
                if ref_err is None:
                    assert dict(actual.multiplicities) == dict(
                        reference.multiplicities
                    ), (trial, backend)

    def test_unbound_reference_raises_eagerly_on_sqlite(self):
        """The documented timing caveat: over an *empty* input the lazy
        backends never evaluate the condition, the sqlite translation
        rejects the unknown column up front (it must — SQLite itself
        would silently read ``"missing"`` as the string 'missing')."""
        from repro.relational import Database, Relation, Schema
        from repro.relational.expressions import col, eq, FALSE

        db = Database(
            {"R": Relation.from_rows(Schema.of("a"), [(1,), (2,)])}
        )
        plan = Select(
            Select(RelScan("R"), FALSE), eq(col("missing"), 1)
        )
        assert evaluate_query_interpreted(plan, db).tuples == frozenset()
        assert evaluate_query(plan, db, backend="compiled").tuples == frozenset()
        assert evaluate_query(plan, db, backend="vector").tuples == frozenset()
        with pytest.raises(EvaluationError, match="unbound reference"):
            evaluate_query(plan, db, backend="sqlite")


# ---------------------------------------------------------------------------
# history replay differential: final database state, set and bag
# ---------------------------------------------------------------------------

class TestReplayDifferential:
    def test_history_replay_final_state_three_way(self):
        rng = fresh_rng(offset=3)
        for trial in range(scaled(N_REPLAYS)):
            db, types_by_name = random_typed_database(rng)
            history = random_history(
                rng, db, types_by_name, allow_insert_query=True
            )
            bag_db = BagDatabase.from_set_database(db)
            set_states = {}
            bag_states = {}
            for backend in BACKENDS:
                with use_backend(backend):
                    set_states[backend] = history.execute(db)
                    bag_states[backend] = execute_history_bag(history, bag_db)
            for backend in CHECKED:
                assert set_states[backend].same_contents(
                    set_states["interpreted"]
                ), (trial, backend, "set")
                assert bag_states[backend].same_contents(
                    bag_states["interpreted"]
                ), (trial, backend, "bag")


# ---------------------------------------------------------------------------
# engine differential: every method variant, every backend
# ---------------------------------------------------------------------------

class TestEngineDifferential:
    def test_all_method_variants_agree_three_way(self):
        rng = fresh_rng(offset=4)
        for trial in range(scaled(N_HWQS)):
            query = random_hwq(rng)
            reference = None
            for backend in BACKENDS:
                engine = Mahif(MahifConfig(backend=backend))
                for method in Method:
                    delta = engine.answer(query, method).delta
                    if reference is None:
                        reference = delta
                    else:
                        assert delta == reference, (
                            trial,
                            backend,
                            method.value,
                        )

    def test_workload_generator_three_way(self):
        """The benchmark workload generator through all three backends."""
        from repro.workloads import WorkloadSpec, build_workload

        workload = build_workload(
            WorkloadSpec(dataset="taxi", rows=120, updates=6, seed=3)
        )
        reference = None
        for backend in BACKENDS:
            engine = Mahif(MahifConfig(backend=backend))
            for method in Method:
                delta = engine.answer(workload.query, method).delta
                if reference is None:
                    reference = delta
                else:
                    assert delta == reference, (backend, method.value)


# ---------------------------------------------------------------------------
# batched replay differential: answer_batch ≡ sequential loop, shared plans
# ---------------------------------------------------------------------------

class TestBatchDifferential:
    def test_batched_answering_matches_sequential_three_way(self):
        """``answer_batch`` over a shared database+history (including a
        duplicated modification, so the shared-plan cache takes hits)
        must equal the sequential loop for every method and backend —
        and every backend must agree with the interpreter."""
        rng = fresh_rng(offset=7)
        for trial in range(scaled(N_BATCHES)):
            batch = random_hwq_batch(rng, size=BATCH_SIZE)
            for method in Method:
                reference = None
                for backend in BACKENDS:
                    engine = Mahif(MahifConfig(backend=backend))
                    sequential = [
                        engine.answer(query, method).delta
                        for query in batch
                    ]
                    batched = [
                        result.delta
                        for result in engine.answer_batch(batch, method)
                    ]
                    assert batched == sequential, (
                        trial, backend, method.value,
                    )
                    if reference is None:
                        reference = batched
                    else:
                        assert batched == reference, (
                            trial, backend, method.value,
                        )

    def test_batched_answering_with_worker_pools(self):
        """The pooled paths — processes for compiled, threads for sqlite
        — replay one batch identically to the serial batch."""
        rng = fresh_rng(offset=8)
        batch = random_hwq_batch(rng, size=BATCH_SIZE)
        for backend in CHECKED:
            serial = Mahif(MahifConfig(backend=backend)).answer_batch(batch)
            pooled = Mahif(
                MahifConfig(backend=backend, batch_workers=2)
            ).answer_batch(batch)
            assert [r.delta for r in pooled] == [r.delta for r in serial], (
                backend
            )

    def test_batched_modified_histories_replay_set_and_bag(self):
        """Each batch query's ``H[M]`` replays to the same final state on
        every backend, under set and bag semantics — the batched replay
        sweep of the differential matrix."""
        rng = fresh_rng(offset=9)
        for trial in range(scaled(N_BATCHES)):
            batch = random_hwq_batch(rng, size=BATCH_SIZE)
            bag_db = BagDatabase.from_set_database(batch[0].database)
            for index, query in enumerate(batch):
                modified = query.modified_history()
                set_states = {}
                bag_states = {}
                for backend in BACKENDS:
                    with use_backend(backend):
                        set_states[backend] = modified.execute(
                            query.database
                        )
                        bag_states[backend] = execute_history_bag(
                            modified, bag_db
                        )
                for backend in CHECKED:
                    assert set_states[backend].same_contents(
                        set_states["interpreted"]
                    ), (trial, index, backend, "set")
                    assert bag_states[backend].same_contents(
                        bag_states["interpreted"]
                    ), (trial, index, backend, "bag")


# ---------------------------------------------------------------------------
# CLI end-to-end with --backend sqlite
# ---------------------------------------------------------------------------

class TestCliSqlite:
    def test_whatif_backend_sqlite_matches_compiled(self, tmp_path, capsys):
        from repro.cli import main

        data = tmp_path / "tables"
        data.mkdir()
        (data / "Orders.csv").write_text(
            "id,price,fee\n1,70,5\n2,40,5\n3,90,0\n"
        )
        history = tmp_path / "history.sql"
        history.write_text(
            "UPDATE Orders SET fee = 10 WHERE price >= 50;\n"
            "DELETE FROM Orders WHERE fee >= 10;\n"
        )
        outputs = {}
        for backend in CHECKED:
            out = tmp_path / f"delta_{backend}.csv"
            code = main(
                [
                    "whatif",
                    "--data", str(data),
                    "--history", str(history),
                    "--replace", "1",
                    "UPDATE Orders SET fee = 0 WHERE price >= 50",
                    "--backend", backend,
                    "--out", str(out),
                    "--quiet",
                ]
            )
            assert code == 0
            outputs[backend] = out.read_text()
        assert outputs["sqlite"] == outputs["compiled"]
        assert outputs["vector"] == outputs["compiled"]
        assert outputs["sqlite"].strip()  # the delta is not empty
