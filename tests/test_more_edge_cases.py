"""Additional edge-case coverage across modules."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core import (
    DatabaseDelta,
    HistoricalWhatIfQuery,
    Mahif,
    Method,
    Replace,
)
from repro.relational.expressions import (
    IsNull,
    and_,
    col,
    eq,
    ge,
    le,
    lit,
    not_,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")


class TestNullHandling:
    def test_nulls_flow_through_histories(self):
        db = Database(
            {"R": Relation.from_rows(SCHEMA, [(1, None, 5), (2, 60, None)])}
        )
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
        )
        result = history.execute(db)
        # NULL price fails the comparison: untouched
        assert (1, None, 5) in result["R"]
        assert (2, 60, 0) in result["R"]

    def test_isnull_condition_in_history(self):
        db = Database(
            {"R": Relation.from_rows(SCHEMA, [(1, None, 5), (2, 60, 3)])}
        )
        history = History.of(
            DeleteStatement("R", IsNull(col("P"))),
        )
        assert set(history.execute(db)["R"]) == {(2, 60, 3)}

    def test_engine_on_null_data_all_methods_agree(self):
        db = Database(
            {"R": Relation.from_rows(
                SCHEMA, [(1, None, 5), (2, 60, 3), (3, 40, None)]
            )}
        )
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
            DeleteStatement("R", IsNull(col("F"))),
        )
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"F": lit(0)},
                                        ge(col("P"), 30))),),
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        for method in Method:
            assert Mahif().answer(query, method).delta == direct, method
        # the IS NULL statement makes symbolic checks UNKNOWN -> it must
        # be kept, conservatively, and results stay correct


class TestEmptyAndDegenerate:
    def test_empty_database(self):
        db = Database({"R": Relation.empty(SCHEMA)})
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"F": lit(1)},
                                        ge(col("P"), 50))),),
        )
        for method in Method:
            assert Mahif().answer(query, method).delta.is_empty()

    def test_single_statement_history(self):
        db = Database({"R": Relation.from_rows(SCHEMA, [(1, 60, 5)])})
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
        )
        query = HistoricalWhatIfQuery(
            history, db,
            (Replace(1, DeleteStatement("R", ge(col("P"), 50))),),
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        for method in Method:
            assert Mahif().answer(query, method).delta == direct

    def test_unconditional_statements(self):
        db = Database({"R": Relation.from_rows(SCHEMA, [(1, 10, 5), (2, 20, 6)])})
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}),  # no WHERE: applies to all
        )
        query = HistoricalWhatIfQuery(
            history, db,
            (Replace(1, UpdateStatement("R", {"F": lit(1)})),),
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        for method in Method:
            assert Mahif().answer(query, method).delta == direct

    def test_modification_identical_to_original(self):
        db = Database({"R": Relation.from_rows(SCHEMA, [(1, 60, 5)])})
        u = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        query = HistoricalWhatIfQuery(History.of(u), db, (Replace(1, u),))
        for method in Method:
            assert Mahif().answer(query, method).delta.is_empty()


class TestStringConditions:
    def test_string_predicates_through_the_engine(self):
        schema = Schema.of("k", "Country", "Fee")
        db = Database(
            {"R": Relation.from_rows(
                schema,
                [(1, "UK", 5), (2, "US", 5), (3, "DE", 5), (4, "UK", 9)],
            )}
        )
        history = History.of(
            UpdateStatement("R", {"Fee": lit(0)}, eq(col("Country"), "UK")),
            UpdateStatement(
                "R", {"Fee": col("Fee") + 1}, eq(col("Country"), "DE")
            ),
        )
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"Fee": lit(0)},
                                        eq(col("Country"), "US"))),),
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        results = {}
        for method in Method:
            result = Mahif().answer(query, method)
            assert result.delta == direct, method
            results[method] = result
        # the DE update is provably independent (different country)
        kept = results[Method.R_PS_DS].slice_result.kept_positions
        assert 2 not in kept


class TestLargerComposites:
    def test_long_history_many_modification_types(self):
        rows = [(i, i * 5, i % 7) for i in range(1, 41)]
        db = Database({"R": Relation.from_rows(SCHEMA, rows)})
        statements = []
        for i in range(10):
            low = 5 + i * 15
            statements.append(
                UpdateStatement(
                    "R",
                    {"F": col("F") + (1 if i % 2 else -1)},
                    and_(ge(col("P"), low), le(col("P"), low + 25)),
                )
            )
        statements.insert(3, InsertTuple("R", (100, 77, 1)))
        statements.insert(7, DeleteStatement("R", ge(col("P"), 190)))
        history = History(tuple(statements))
        from repro.core import DeleteStatementMod, InsertStatementMod

        query = HistoricalWhatIfQuery(
            history,
            db,
            (
                Replace(
                    1,
                    UpdateStatement(
                        "R", {"F": col("F") + 2},
                        and_(ge(col("P"), 5), le(col("P"), 45)),
                    ),
                ),
                DeleteStatementMod(5),
                InsertStatementMod(
                    9,
                    UpdateStatement(
                        "R", {"F": lit(3)},
                        and_(ge(col("P"), 10), le(col("P"), 20)),
                    ),
                ),
            ),
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        for method in Method:
            assert Mahif().answer(query, method).delta == direct, method
