"""Unit tests for the relation partitioners and shard-delta merge."""

import random

import pytest

from repro.core.delta import RelationDelta
from repro.relational import (
    BagRelation,
    Relation,
    Schema,
    hash_partition,
    hash_partition_bag,
    merge_bag_deltas,
    merge_shard_bags,
    merge_shard_deltas,
    merge_shard_relations,
    partition_bag,
    partition_relation,
    range_partition,
    range_partition_bag,
    shard_delta,
    stable_shard_of,
)
from repro.relational.partition import ShardDelta, _sort_key

SCHEMA = Schema(("k", "v"))


def rel(rows):
    return Relation.from_rows(SCHEMA, rows)


@pytest.fixture
def relation():
    return rel([(k, k % 5) for k in range(40)])


class TestPartitioners:
    @pytest.mark.parametrize("scheme", ["hash", "range"])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7, 50])
    def test_disjoint_cover(self, relation, scheme, shards):
        parts = partition_relation(relation, shards, scheme)
        assert len(parts) == shards
        assert all(p.schema == relation.schema for p in parts)
        seen: set = set()
        for part in parts:
            assert not (part.tuples & seen), "shards overlap"
            seen |= part.tuples
        assert seen == relation.tuples
        assert merge_shard_relations(parts).tuples == relation.tuples

    def test_shards_one_is_identity(self, relation):
        assert partition_relation(relation, 1, "hash") == [relation]
        assert partition_relation(relation, 1, "range") == [relation]

    def test_range_partition_is_contiguous_and_balanced(self, relation):
        parts = range_partition(relation, 4, key_index=0)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == len(relation)
        assert max(sizes) - min(sizes) <= 1
        # contiguity: every key in shard i precedes every key in i+1
        bounds = [
            sorted(_sort_key(row[0]) for row in part.tuples)
            for part in parts
            if part.tuples
        ]
        for earlier, later in zip(bounds, bounds[1:]):
            assert earlier[-1] <= later[0]

    def test_range_partition_mixed_types_and_nulls(self):
        mixed = rel(
            [(None, 1), (True, 2), (3, 3), (2.5, 4), ("x", 5), ("a", 6)]
        )
        parts = range_partition(mixed, 3)
        assert merge_shard_relations(parts).tuples == mixed.tuples

    def test_stable_shard_of_is_deterministic_and_in_range(self):
        rng = random.Random(7)
        for _ in range(200):
            row = (rng.randint(-9, 9), rng.choice(("a", None, 2.5, True)))
            shard = stable_shard_of(row, 6)
            assert 0 <= shard < 6
            assert shard == stable_shard_of(row, 6)

    def test_empty_relation_partitions(self):
        parts = partition_relation(Relation.empty(SCHEMA), 4, "range")
        assert [len(p) for p in parts] == [0, 0, 0, 0]

    def test_errors(self, relation):
        with pytest.raises(ValueError):
            partition_relation(relation, 0, "hash")
        with pytest.raises(ValueError):
            partition_relation(relation, 2, "nope")
        with pytest.raises(ValueError):
            merge_shard_relations([])


class TestBagPartitioners:
    @pytest.fixture
    def bag(self):
        return BagRelation(
            SCHEMA, {(k, k % 3): 1 + k % 4 for k in range(20)}
        )

    @pytest.mark.parametrize("scheme", ["hash", "range"])
    @pytest.mark.parametrize("shards", [1, 2, 5, 30])
    def test_disjoint_cover_with_multiplicities(self, bag, scheme, shards):
        parts = partition_bag(bag, shards, scheme)
        assert len(parts) == shards
        merged = merge_shard_bags(parts)
        assert dict(merged.multiplicities) == dict(bag.multiplicities)
        seen: set = set()
        for part in parts:
            rows = set(part.multiplicities)
            assert not (rows & seen)
            seen |= rows

    def test_named_partitioners_match_dispatcher(self, bag):
        assert hash_partition_bag(bag, 3) == partition_bag(bag, 3, "hash")
        assert range_partition_bag(bag, 3) == partition_bag(
            bag, 3, "range"
        )

    def test_errors(self, bag):
        with pytest.raises(ValueError):
            partition_bag(bag, 0, "hash")
        with pytest.raises(ValueError):
            partition_bag(bag, 2, "nope")
        with pytest.raises(ValueError):
            merge_shard_bags([])


class TestShardDeltaMerge:
    def test_cross_shard_collision_cancels(self):
        """The counterexample that rules out naive per-shard delta
        unions: shard 1 adds t, shard 2 holds t on both sides — the
        global delta is empty and the merge must agree."""
        t = (1, "x")
        shard1 = shard_delta(rel([]), rel([t]))
        shard2 = shard_delta(rel([t]), rel([t]))
        merged = merge_shard_deltas([shard1, shard2])
        assert merged.is_empty()

    def test_added_and_removed_across_shards_cancel(self):
        t = (1, "x")
        add = shard_delta(rel([]), rel([t]))
        remove = shard_delta(rel([t]), rel([]))
        assert merge_shard_deltas([add, remove]).is_empty()

    def test_merge_equals_global_delta_on_random_pair_families(self):
        """Property: for arbitrary per-shard (h_s, m_s) pairs the merge
        equals Δ(∪h_s, ∪m_s) — stronger than needed (real shards are
        disjoint partitions), so partitions are covered a fortiori."""
        rng = random.Random(20260726)
        universe = [(k, k % 3) for k in range(12)]
        for _ in range(300):
            pairs = [
                (
                    rel(rng.sample(universe, rng.randint(0, 8))),
                    rel(rng.sample(universe, rng.randint(0, 8))),
                )
                for _ in range(rng.randint(1, 4))
            ]
            merged = merge_shard_deltas(
                [shard_delta(h, m) for h, m in pairs]
            )
            union_h = rel([]).union(pairs[0][0])
            union_m = rel([]).union(pairs[0][1])
            for h, m in pairs[1:]:
                union_h = union_h.union(h)
                union_m = union_m.union(m)
            assert merged == RelationDelta.between(union_h, union_m)

    def test_empty_family_needs_schema(self):
        empty = merge_shard_deltas([], schema=SCHEMA)
        assert empty.is_empty()
        with pytest.raises(ValueError):
            merge_shard_deltas([])

    def test_shard_delta_is_lossless(self):
        h = rel([(1, 0), (2, 1)])
        m = rel([(2, 1), (3, 2)])
        triple = shard_delta(h, m)
        assert triple.added == frozenset({(3, 2)})
        assert triple.removed == frozenset({(1, 0)})
        assert triple.common == frozenset({(2, 1)})
        assert isinstance(triple, ShardDelta)


class TestBagDeltaMerge:
    def test_signed_counts_sum_and_zeros_drop(self):
        merged = merge_bag_deltas(
            [
                {(1,): +2, (2,): -1},
                {(1,): -2, (2,): -1, (3,): +4},
            ]
        )
        assert merged == {(2,): -2, (3,): +4}

    def test_empty(self):
        assert merge_bag_deltas([]) == {}
