"""Seeded generators for three-way differential fuzzing.

Shared by ``tests/test_sql_backend_differential.py``: random typed
schemas, databases (NULL-heavy, negative numbers, duplicate-prone and
quote-laden strings), histories, and what-if modifications, built so
that every generated plan/statement is *well-typed for all three
backends* — ordered comparisons stay within a type group, because the
interpreter raises :class:`EvaluationError` on ``1 < 'x'`` while SQLite
applies its cross-type ordering.  Cross-group *equality* is generated on
purpose (both sides agree it is false), as are NULLs in every non-key
column, ``x/0`` divisions, and bool-vs-int coercions.

This module extends (rather than duplicates) the untyped generators in
``tests/test_exec_compiled.py``; the plan-level differential reuses
``random_plan``/``random_database`` from there directly.

Environment knobs, consumed by the differential suite:

* ``MAHIF_FUZZ_SEED`` — base RNG seed (default fixed, for reproducible
  CI); set it to a fresh value for a randomized smoke run.
* ``MAHIF_FUZZ_SCALE`` — float multiplier on trial counts (CI smoke
  runs use ``0.2``); the acceptance budget of ≥ 200 differential cases
  refers to the unscaled defaults.
"""

from __future__ import annotations

import os
import random

from repro.core import (
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    Replace,
)
from repro.relational import Database, History, Relation, Schema
from repro.relational.algebra import Project, RelScan, Select
from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    If,
    IsNull,
    Logic,
    Not,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

FUZZ_SEED = int(os.environ.get("MAHIF_FUZZ_SEED", "20260725"))
_SCALE = float(os.environ.get("MAHIF_FUZZ_SCALE", "1"))

#: The shard-count axis of the shard-invariance differential suite
#: (``tests/test_shard_differential.py``): unsharded, the smallest real
#: split, and more shards than most generated relations have rows (so
#: empty shards and skip routing both get exercised).
SHARD_COUNTS = (1, 2, 8)


def scaled(trials: int) -> int:
    """Trial count honouring the CI smoke-run scale knob."""
    return max(1, int(trials * _SCALE))


#: Duplicate-prone, quote-laden, empty and unicode strings.
STRINGS = ("dup", "dup", "O'Brien", 'say "hi"', "", "x;--", "ünïcode", "0")

#: "numeric" mixes int/float/bool (mutually comparable in Python and
#: SQLite alike); "text" only supports equality across groups.
COLUMN_TYPES = ("int", "float", "bool", "str")

_ORDERED_OPS = ("=", "!=", "<", "<=", ">", ">=")
_EQUALITY_OPS = ("=", "!=")


def random_value(rng, ctype, null_pct=0.25):
    if null_pct and rng.random() < null_pct:
        return None
    if ctype == "int":
        return rng.randint(-50, 50)
    if ctype == "float":
        return round(rng.uniform(-20.0, 20.0), 3)
    if ctype == "bool":
        return rng.random() < 0.5
    return rng.choice(STRINGS)


def random_typed_schema(rng, name_prefix="c", max_extra=3):
    """An int key column plus 1..max_extra typed value columns.

    Returns ``(Schema, types)`` where ``types[i]`` is the column's value
    domain.  The key column stays NULL-free and is never updated, which
    keeps generated histories key-preserving (required for the engine
    methods to agree under set semantics, see DESIGN.md).
    """
    count = rng.randint(1, max_extra)
    attributes = ["k"] + [f"{name_prefix}{i}" for i in range(count)]
    types = ["int"] + [rng.choice(COLUMN_TYPES) for _ in range(count)]
    return Schema(tuple(attributes)), tuple(types)


def random_relation(rng, schema, types, rows):
    """Rows with unique keys, NULLs and duplicates in the value columns."""
    data = []
    for key in range(rows):
        row = [key]
        for ctype in types[1:]:
            row.append(random_value(rng, ctype))
        data.append(tuple(row))
    return Relation.from_rows(schema, data)


def random_typed_database(rng, rows=12):
    """Two same-layout relations (``INSERT ... SELECT`` compatible) plus
    one independently shaped relation.  Returns ``(db, types_by_name)``."""
    schema, types = random_typed_schema(rng)
    other_schema, other_types = random_typed_schema(rng, name_prefix="d")
    db = Database(
        {
            "R": random_relation(rng, schema, types, rows),
            "S": random_relation(rng, schema, types, max(2, rows // 2)),
            "T": random_relation(rng, other_schema, other_types, rows // 2),
        }
    )
    return db, {"R": types, "S": types, "T": other_types}


def _columns_of_group(schema, types, group):
    numeric = {"int", "float", "bool"}
    return [
        attribute
        for attribute, ctype in zip(schema.attributes, types)
        if (ctype in numeric) == (group == "numeric")
    ]


def random_typed_condition(rng, schema, types, depth=2):
    """A condition whose comparisons are type-consistent.

    Ordered comparisons stay within the numeric group (int/float/bool)
    or within text; cross-group equality is generated occasionally — it
    is false on every backend, but exercises SQLite's affinity rules.
    """
    roll = rng.random()
    if depth > 0 and roll < 0.2:
        return Logic(
            rng.choice(["and", "or"]),
            random_typed_condition(rng, schema, types, depth - 1),
            random_typed_condition(rng, schema, types, depth - 1),
        )
    if depth > 0 and roll < 0.3:
        return Not(random_typed_condition(rng, schema, types, depth - 1))
    if roll < 0.4:
        return IsNull(Attr(rng.choice(schema.attributes)))
    numeric = _columns_of_group(schema, types, "numeric")
    text = _columns_of_group(schema, types, "text")
    if roll < 0.5 and numeric and text:
        # Cross-group equality: False everywhere, adversarial for
        # SQLite's storage-class comparison rules.
        return Cmp(
            rng.choice(_EQUALITY_OPS),
            Attr(rng.choice(numeric)),
            Attr(rng.choice(text)),
        )
    group = "text" if (text and (not numeric or rng.random() < 0.3)) else "numeric"
    columns = text if group == "text" else numeric
    attribute = rng.choice(columns)
    ctype = types[schema.index_of(attribute)]
    if rng.random() < 0.5:
        right = Attr(rng.choice(columns))
    else:
        right = Const(random_value(rng, ctype, null_pct=0.1))
    return Cmp(rng.choice(_ORDERED_OPS), Attr(attribute), right)


def random_set_expression(rng, schema, types, attribute, depth=1):
    """A Set expression producing the attribute's value domain."""
    ctype = types[schema.index_of(attribute)]
    same_type = [
        a for a, t in zip(schema.attributes, types) if t == ctype and a != "k"
    ]
    roll = rng.random()
    if roll < 0.25:
        return Const(random_value(rng, ctype, null_pct=0.15))
    if roll < 0.45 and same_type:
        return Attr(rng.choice(same_type))
    if depth > 0 and roll < 0.6:
        return If(
            random_typed_condition(rng, schema, types, depth=1),
            random_set_expression(rng, schema, types, attribute, depth - 1),
            random_set_expression(rng, schema, types, attribute, depth - 1),
        )
    if ctype in ("int", "float"):
        op = rng.choice(["+", "-", "*", "/"])
        constant = (
            rng.randint(-3, 3) if ctype == "int" else round(rng.uniform(-3, 3), 2)
        )
        # x/0 on purpose: NULL on every backend.
        return Arith(op, Attr(attribute), Const(constant))
    if ctype == "bool" and same_type:
        return Cmp(
            rng.choice(_EQUALITY_OPS),
            Attr(rng.choice(same_type)),
            Attr(rng.choice(same_type)),
        )
    return Const(random_value(rng, ctype, null_pct=0.15))


class _KeyCounter:
    """Fresh insert keys, disjoint from the base rows' 0..rows-1 range."""

    def __init__(self, start: int = 1000) -> None:
        self._next = start

    def take(self) -> int:
        self._next += 1
        return self._next


def random_statement(
    rng, relation, schema, types, keys, *, allow_insert_query=False,
    sibling=None,
):
    roll = rng.random()
    if roll < 0.45:
        updatable = [a for a in schema.attributes if a != "k"]
        if updatable:
            sets = {}
            for attribute in rng.sample(
                updatable, rng.randint(1, min(2, len(updatable)))
            ):
                sets[attribute] = random_set_expression(
                    rng, schema, types, attribute
                )
            return UpdateStatement(
                relation, sets, random_typed_condition(rng, schema, types)
            )
        roll = 0.5
    if roll < 0.65:
        return DeleteStatement(
            relation, random_typed_condition(rng, schema, types)
        )
    if allow_insert_query and sibling is not None and roll < 0.75:
        query = RelScan(sibling)
        if rng.random() < 0.6:
            query = Select(
                query, random_typed_condition(rng, schema, types)
            )
        if rng.random() < 0.3:
            query = Project(
                query, tuple((Attr(a), a) for a in schema.attributes)
            )
        return InsertQuery(relation, query)
    values = [keys.take()]
    for ctype in types[1:]:
        values.append(random_value(rng, ctype))
    return InsertTuple(relation, tuple(values))


def random_history(
    rng, db, types_by_name, *, length=None, allow_insert_query=False
):
    """A history over R (occasionally touching S), with fresh insert keys."""
    length = length or rng.randint(2, 6)
    keys = _KeyCounter()
    statements = []
    for _ in range(length):
        relation = "R" if rng.random() < 0.8 else "S"
        statements.append(
            random_statement(
                rng,
                relation,
                db.schema_of(relation),
                types_by_name[relation],
                keys,
                allow_insert_query=allow_insert_query,
                sibling="S" if relation == "R" else "R",
            )
        )
    return History.of(*statements)


def random_modification(rng, db, types_by_name, history):
    """One Replace / delete-statement / insert-statement modification."""
    position = rng.randint(1, len(history))
    roll = rng.random()
    if roll < 0.2:
        return DeleteStatementMod(position)
    target = history[position].relation
    # Replacement inserts get their own key range, disjoint from the
    # history's, so histories stay key-preserving on both sides.
    keys = _KeyCounter(start=2000)
    replacement = random_statement(
        rng,
        target,
        db.schema_of(target),
        types_by_name[target],
        keys,
    )
    if roll < 0.4:
        return InsertStatementMod(position, replacement)
    return Replace(position, replacement)


def random_hwq(rng, *, rows=10, allow_insert_query=False):
    """A complete what-if query: database, history, one modification."""
    db, types_by_name = random_typed_database(rng, rows=rows)
    history = random_history(
        rng, db, types_by_name, allow_insert_query=allow_insert_query
    )
    modification = random_modification(rng, db, types_by_name, history)
    return HistoricalWhatIfQuery(history, db, (modification,))


def random_hwq_batch(rng, *, size=4, rows=10):
    """A batched replay: one shared database and history, ``size``
    random modifications — the shape :meth:`Mahif.answer_batch`
    amortizes (shared time travel, shared reenactment plans).

    The last query duplicates the first one's modification, so every
    generated batch exercises the shared-plan cache hit path, not just
    the miss path.
    """
    db, types_by_name = random_typed_database(rng, rows=rows)
    history = random_history(rng, db, types_by_name)
    queries = [
        HistoricalWhatIfQuery(
            history,
            db,
            (random_modification(rng, db, types_by_name, history),),
        )
        for _ in range(max(1, size - 1))
    ]
    queries.append(
        HistoricalWhatIfQuery(history, db, queries[0].modifications)
    )
    return queries


def fresh_rng(offset=0):
    return random.Random(FUZZ_SEED + offset)


# -- store-codec value fuzzing ------------------------------------------------
#
# The history-store codec promises *exact* round trips — bool is not 1,
# 1 is not 1.0, and the non-finite floats survive — so its property fuzz
# draws from a wider, nastier value pool than the backend-differential
# generators (which keep values well-typed for all three backends).

SPECIAL_FLOATS = (
    float("inf"), float("-inf"), float("nan"), -0.0, 1e308, 5e-324
)


def random_codec_value(rng):
    """Any scalar the store codec must round-trip exactly."""
    roll = rng.random()
    if roll < 0.10:
        return None
    if roll < 0.25:
        return rng.random() < 0.5
    if roll < 0.45:
        return rng.randint(-10**9, 10**9)
    if roll < 0.55:
        return float(rng.randint(-50, 50))  # int-valued float, not int
    if roll < 0.70:
        return rng.choice(SPECIAL_FLOATS)
    if roll < 0.85:
        return round(rng.uniform(-1e3, 1e3), 6)
    return rng.choice(STRINGS)


def random_codec_expr(rng, attributes, depth=2):
    """An expression tree over arbitrary codec values (type soundness is
    irrelevant here: the codec round-trips structure, never evaluates)."""
    roll = rng.random()
    if depth > 0 and roll < 0.15:
        return Arith(
            rng.choice(["+", "-", "*", "/"]),
            random_codec_expr(rng, attributes, depth - 1),
            random_codec_expr(rng, attributes, depth - 1),
        )
    if depth > 0 and roll < 0.30:
        return Cmp(
            rng.choice(_ORDERED_OPS),
            random_codec_expr(rng, attributes, depth - 1),
            random_codec_expr(rng, attributes, depth - 1),
        )
    if depth > 0 and roll < 0.40:
        return Logic(
            rng.choice(["and", "or"]),
            random_codec_expr(rng, attributes, depth - 1),
            random_codec_expr(rng, attributes, depth - 1),
        )
    if depth > 0 and roll < 0.50:
        return Not(random_codec_expr(rng, attributes, depth - 1))
    if depth > 0 and roll < 0.60:
        return If(
            random_codec_expr(rng, attributes, depth - 1),
            random_codec_expr(rng, attributes, depth - 1),
            random_codec_expr(rng, attributes, depth - 1),
        )
    if roll < 0.75:
        return IsNull(Attr(rng.choice(attributes)))
    if rng.random() < 0.5:
        return Attr(rng.choice(attributes))
    return Const(random_codec_value(rng))


def random_codec_statement(rng, relation="R", attributes=("k", "c0", "c1")):
    """A statement carrying codec-corner values in every slot."""
    attributes = tuple(attributes)
    roll = rng.random()
    if roll < 0.35:
        sets = {
            attribute: random_codec_expr(rng, attributes)
            for attribute in rng.sample(
                attributes, rng.randint(1, len(attributes))
            )
        }
        return UpdateStatement(
            relation, sets, random_codec_expr(rng, attributes)
        )
    if roll < 0.6:
        return DeleteStatement(
            relation, random_codec_expr(rng, attributes)
        )
    if roll < 0.8:
        return InsertTuple(
            relation,
            tuple(random_codec_value(rng) for _ in attributes),
        )
    query = RelScan("S")
    if rng.random() < 0.7:
        query = Select(query, random_codec_expr(rng, attributes))
    if rng.random() < 0.4:
        query = Project(
            query,
            tuple(
                (random_codec_expr(rng, attributes, depth=1), a)
                for a in attributes
            ),
        )
    return InsertQuery(relation, query)


def random_codec_rows(rng, arity, rows):
    """Row tuples mixing every codec value kind (NaN/±Inf included)."""
    return [
        tuple(random_codec_value(rng) for _ in range(arity))
        for _ in range(rows)
    ]
