"""Data slicing tests (Section 6, Theorem 2)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.data_slicing import (
    compute_data_slicing,
    push_condition_through_query,
)
from repro.core.delta import DatabaseDelta
from repro.core.hwq import AlignedHistories, Replace, align
from repro.core.reenactment import reenactment_queries
from repro.relational.algebra import (
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
    inject_selection,
)
from repro.relational.expressions import (
    FALSE,
    TRUE,
    and_,
    col,
    eq,
    evaluate,
    ge,
    le,
    lit,
    or_,
    simplify,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")


def db_with(rows):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def schemas():
    return {"R": SCHEMA}


def check_theorem2(db, aligned: AlignedHistories):
    """Executable Theorem 2: the delta with and without data slicing must
    agree."""
    schemas_map = {n: db.schema_of(n) for n in db}
    queries_h = reenactment_queries(aligned.original, schemas_map)
    queries_m = reenactment_queries(aligned.modified, schemas_map)
    conditions = compute_data_slicing(aligned, schemas_map)

    unsliced = {}
    sliced = {}
    for name in schemas_map:
        plain_h = evaluate_query(queries_h[name], db)
        plain_m = evaluate_query(queries_m[name], db)
        unsliced[name] = (plain_h, plain_m)
        ds_h = evaluate_query(
            inject_selection(queries_h[name], dict(conditions.for_original)),
            db,
        )
        ds_m = evaluate_query(
            inject_selection(queries_m[name], dict(conditions.for_modified)),
            db,
        )
        sliced[name] = (ds_h, ds_m)

    for name in schemas_map:
        plain_h, plain_m = unsliced[name]
        ds_h, ds_m = sliced[name]
        plain_delta = plain_h.symmetric_difference(plain_m)
        ds_delta = ds_h.symmetric_difference(ds_m)
        assert set(plain_delta) == set(ds_delta), name
    return conditions


class TestBaseConditions:
    def test_update_update_disjunction(self):
        """Equation 7: theta_u OR theta_u' on both sides."""
        u = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u2 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        aligned = align(History.of(u), [Replace(1, u2)])
        conditions = compute_data_slicing(aligned, schemas())
        expected = simplify(or_(ge(col("P"), 50), ge(col("P"), 60)))
        assert conditions.for_original["R"] == expected
        assert conditions.for_modified["R"] == expected

    def test_delete_delete_refinement(self):
        """Section 6's simplified delete conditions: theta_u' for H and
        theta_u for H[M]."""
        d = DeleteStatement("R", ge(col("P"), 50))
        d2 = DeleteStatement("R", ge(col("P"), 60))
        aligned = align(History.of(d), [Replace(1, d2)])
        conditions = compute_data_slicing(aligned, schemas())
        assert conditions.for_original["R"] == ge(col("P"), 60)
        assert conditions.for_modified["R"] == ge(col("P"), 50)

    def test_insert_modification_admits_colliding_tuples_only(self):
        """An insert-pair modification filters the base relation down to
        tuples that could collide with either inserted value (set
        semantics; see _affected_condition_map)."""
        i = InsertTuple("R", (9, 9, 9))
        i2 = InsertTuple("R", (9, 9, 99))
        aligned = align(History.of(i), [Replace(1, i2)])
        conditions = compute_data_slicing(aligned, schemas())
        condition = conditions.for_original["R"]
        assert evaluate(condition, {"k": 9, "P": 9, "F": 9}) is True
        assert evaluate(condition, {"k": 9, "P": 9, "F": 99}) is True
        assert evaluate(condition, {"k": 1, "P": 9, "F": 9}) is False

    def test_insert_vs_update_modification_collision(self):
        """The regression hypothesis found: replacing an insert with an
        update (or vice versa) must keep colliding base tuples on both
        sides of the delta."""
        from repro.core import (
            DatabaseDelta,
            HistoricalWhatIfQuery,
            Mahif,
            Method,
        )

        db = Database({"R": Relation.from_rows(SCHEMA, [])})
        history = History.of(
            InsertTuple("R", (100, 1, 0)), InsertTuple("R", (100, 1, 0))
        )
        replacement = UpdateStatement(
            "R", {"P": lit(7)}, and_(ge(col("P"), 5), le(col("P"), 40))
        )
        query = HistoricalWhatIfQuery(
            history, db, (Replace(2, replacement),)
        )
        direct = DatabaseDelta.between(
            history.execute(db), query.aligned().modified.execute(db)
        )
        for method in Method:
            assert Mahif().answer(query, method).delta == direct, method

    def test_condition_size_accounting(self):
        u = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u2 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        aligned = align(History.of(u), [Replace(1, u2)])
        conditions = compute_data_slicing(aligned, schemas())
        assert conditions.condition_size() > 0
        assert conditions.affected_relations() == {"R"}


class TestPushdown:
    def test_example4_pushdown_through_updates(self):
        """Example 4: pushing (P<=40 AND F>=10) through u2 and u1."""
        u1 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u2 = UpdateStatement(
            "R", {"F": col("F") + 5},
            and_(eq(col("k"), 1), le(col("P"), 100)),
        )
        u3 = UpdateStatement(
            "R", {"F": col("F") - 2},
            and_(le(col("P"), 30), ge(col("F"), 10)),
        )
        u3p = UpdateStatement(
            "R", {"F": col("F") - 2},
            and_(le(col("P"), 40), ge(col("F"), 10)),
        )
        aligned = align(History.of(u1, u2, u3), [Replace(3, u3p)])
        conditions = compute_data_slicing(aligned, schemas())
        condition = conditions.for_original["R"]
        # For the paper's tuple 11 (k=1, P=20, F=5): F'=5, F''=10 -> true
        assert evaluate(condition, {"k": 1, "P": 20, "F": 5}) is True
        # Tuple 13 (k=3, P=60, F=3): F'=0, F''=0 -> false
        assert evaluate(condition, {"k": 3, "P": 60, "F": 3}) is False

    def test_pushdown_only_when_attributes_referenced(self):
        """Conditions over never-updated attributes pass through
        unchanged."""
        u_first = UpdateStatement("R", {"F": col("F") + 1}, ge(col("P"), 0))
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        aligned = align(
            History.of(u_first, u_mod), [Replace(2, u_mod2)]
        )
        trimmed, dropped = aligned.trim_prefix()
        assert dropped == 1  # prefix before first modified is trimmed...
        # ...but compute on the untrimmed pair to exercise the pushdown:
        conditions = compute_data_slicing(aligned, schemas())
        expected = simplify(or_(ge(col("P"), 50), ge(col("P"), 60)))
        assert conditions.for_original["R"] == expected

    def test_pushdown_substitutes_updated_attribute(self):
        """A condition over an updated attribute picks up the conditional
        update expression."""
        u_first = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod = UpdateStatement("R", {"k": lit(0)}, ge(col("F"), 10))
        u_mod2 = UpdateStatement("R", {"k": lit(0)}, ge(col("F"), 20))
        aligned = align(History.of(u_first, u_mod), [Replace(2, u_mod2)])
        conditions = compute_data_slicing(aligned, schemas())
        condition = conditions.for_original["R"]
        # a tuple with P>=50 has F set to 0, so it cannot satisfy F>=10
        assert evaluate(condition, {"k": 1, "P": 60, "F": 99}) is False
        assert evaluate(condition, {"k": 1, "P": 10, "F": 15}) is True


class TestPushThroughQuery:
    def test_scan(self):
        assert push_condition_through_query(
            ge(col("a"), 1), "R", RelScan("R"), {}
        ) == ge(col("a"), 1)
        assert (
            push_condition_through_query(TRUE, "R", RelScan("S"), {}) is None
        )

    def test_select_conjoins(self):
        query = Select(RelScan("R"), ge(col("a"), 5))
        pushed = push_condition_through_query(
            ge(col("b"), 1), "R", query, {"R": Schema.of("a", "b")}
        )
        assert evaluate(pushed, {"a": 6, "b": 2}) is True
        assert evaluate(pushed, {"a": 1, "b": 2}) is False

    def test_project_substitutes(self):
        query = Project(RelScan("R"), ((col("a") + 1, "b"),))
        pushed = push_condition_through_query(
            ge(col("b"), 5), "R", query, {"R": Schema.of("a")}
        )
        assert evaluate(pushed, {"a": 4}) is True
        assert evaluate(pushed, {"a": 3}) is False

    def test_union_disjunction(self):
        query = Union(
            Select(RelScan("R"), ge(col("a"), 5)),
            Select(RelScan("R"), le(col("a"), 1)),
        )
        pushed = push_condition_through_query(
            TRUE, "R", query, {"R": Schema.of("a")}
        )
        assert evaluate(pushed, {"a": 6}) is True
        assert evaluate(pushed, {"a": 0}) is True
        assert evaluate(pushed, {"a": 3}) is False

    def test_singleton_contributes_nothing(self):
        query = Union(RelScan("R"), Singleton(Schema.of("a"), (1,)))
        pushed = push_condition_through_query(
            ge(col("a"), 5), "R", query, {"R": Schema.of("a")}
        )
        assert pushed == ge(col("a"), 5)

    def test_join_pushes_side_conjuncts(self):
        from repro.relational.algebra import Join

        query = Join(
            RelScan("R"), RelScan("S"), eq(col("a"), col("c"))
        )
        schemas_map = {"R": Schema.of("a", "b"), "S": Schema.of("c")}
        pushed = push_condition_through_query(
            ge(col("a"), 5), "R", query, schemas_map
        )
        # the single-side conjunct a>=5 is pushable to R
        assert evaluate(pushed, {"a": 6, "b": 0}) is True
        assert evaluate(pushed, {"a": 4, "b": 0}) is False


class TestTheorem2EndToEnd:
    ROWS = [(i, i * 10, i) for i in range(1, 11)]

    def test_update_modification(self):
        u = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u2 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 70))
        downstream = UpdateStatement(
            "R", {"F": col("F") + 1}, le(col("P"), 60)
        )
        aligned = align(History.of(u, downstream), [Replace(1, u2)])
        conditions = check_theorem2(db_with(self.ROWS), aligned)
        assert "R" in conditions.for_original

    def test_delete_modification(self):
        d = DeleteStatement("R", ge(col("P"), 80))
        d2 = DeleteStatement("R", ge(col("P"), 50))
        downstream = UpdateStatement("R", {"F": col("F") * 2}, TRUE)
        aligned = align(History.of(d, downstream), [Replace(1, d2)])
        check_theorem2(db_with(self.ROWS), aligned)

    def test_multiple_modifications(self):
        u1 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u1b = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 70))
        u2 = UpdateStatement("R", {"F": col("F") + 3}, le(col("P"), 40))
        u2b = UpdateStatement("R", {"F": col("F") + 3}, le(col("P"), 20))
        aligned = align(
            History.of(u1, u2), [Replace(1, u1b), Replace(2, u2b)]
        )
        check_theorem2(db_with(self.ROWS), aligned)

    def test_insert_query_modification(self):
        """Modifying an INSERT ... SELECT: sources get pushed conditions."""
        iq = InsertQuery(
            "R",
            Project(
                Select(RelScan("R"), ge(col("P"), 90)),
                ((col("k") + 100, "k"), (col("P"), "P"), (col("F"), "F")),
            ),
        )
        iq2 = InsertQuery(
            "R",
            Project(
                Select(RelScan("R"), ge(col("P"), 80)),
                ((col("k") + 100, "k"), (col("P"), "P"), (col("F"), "F")),
            ),
        )
        aligned = align(History.of(iq), [Replace(1, iq2)])
        check_theorem2(db_with(self.ROWS), aligned)

    def test_filtering_actually_filters(self):
        """The injected selection must reduce the reenacted input."""
        u = UpdateStatement("R", {"F": lit(0)}, eq(col("P"), 10))
        u2 = UpdateStatement("R", {"F": lit(0)}, eq(col("P"), 20))
        aligned = align(History.of(u), [Replace(1, u2)])
        conditions = compute_data_slicing(aligned, {"R": SCHEMA})
        relation = db_with(self.ROWS)["R"]
        kept = relation.filter(conditions.for_original["R"])
        assert len(kept) == 2  # only P=10 and P=20 rows
