"""Unit tests for the sharded execution driver (``repro.core.shard``)."""

import pytest

from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.core.data_slicing import DataSlicingConditions
from repro.core.shard import (
    evaluate_plan_sharded,
    routing_condition,
    shard_keep_mask,
    shardable,
)
from repro.relational import (
    Database,
    History,
    Relation,
    Schema,
    use_backend,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.expressions import (
    Attr,
    Const,
    TRUE,
    and_,
    eq,
    ge,
    le,
)
from repro.relational.partition import range_partition
from repro.relational.statements import (
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema(("k", "v"))


def make_db(rows=40):
    return Database(
        {"data": Relation.from_rows(SCHEMA, [(k, k % 7) for k in range(rows)])}
    )


def window_update(low, high, shift):
    return UpdateStatement(
        "data",
        {"v": Attr("v") + shift},
        and_(ge(Attr("k"), low), le(Attr("k"), high)),
    )


def window_query(db=None, *, updates=3):
    db = db or make_db()
    history = History.of(
        *(window_update(0, 5, 1 + i) for i in range(updates))
    )
    replacement = window_update(0, 5, 99)
    return HistoricalWhatIfQuery(history, db, (Replace(1, replacement),))


class TestShardable:
    def test_reenactment_shapes_are_shardable(self):
        scan = RelScan("data")
        stack = Project(
            Select(
                Union(scan, Singleton(SCHEMA, (1, 2))), eq(Attr("k"), 1)
            ),
            ((Attr("k"), "k"), (Attr("v"), "v")),
        )
        assert shardable(stack, "data")

    def test_foreign_scan_join_difference_are_not(self):
        assert not shardable(RelScan("other"), "data")
        assert not shardable(
            Join(RelScan("data"), RelScan("data"), TRUE), "data"
        )
        assert not shardable(
            Difference(RelScan("data"), RelScan("data")), "data"
        )
        assert not shardable(
            Union(RelScan("data"), RelScan("other")), "data"
        )


class TestRouting:
    def test_no_conditions_means_no_skipping(self):
        assert routing_condition(None, "data") == TRUE
        empty = DataSlicingConditions({}, {})
        assert routing_condition(empty, "data") == TRUE

    def test_disjunction_of_both_sides(self):
        conditions = DataSlicingConditions(
            {"data": eq(Attr("k"), 1)}, {"data": eq(Attr("k"), 2)}
        )
        condition = routing_condition(conditions, "data")
        parts = range_partition(make_db()["data"], 4)
        keep = shard_keep_mask(parts, condition)
        assert keep[0] is True  # keys 1 and 2 live in the first chunk
        assert keep[1:] == [False, False, False]

    def test_protect_first_overrides_skip(self):
        parts = range_partition(make_db()["data"], 4)
        condition = eq(Attr("k"), -1)  # matches nothing
        assert shard_keep_mask(parts, condition) == [False] * 4
        assert shard_keep_mask(parts, condition, protect_first=True) == [
            True, False, False, False,
        ]

    def test_erroring_predicate_is_conservative(self):
        parts = range_partition(make_db()["data"], 2)
        condition = le(Attr("k"), Const("not-a-number"))
        assert shard_keep_mask(parts, condition) == [True, True]

    def test_true_condition_keeps_everything(self):
        parts = range_partition(make_db()["data"], 3)
        assert shard_keep_mask(parts, TRUE) == [True, True, True]


class TestEngineSharded:
    @pytest.mark.parametrize("scheme", ["hash", "range"])
    @pytest.mark.parametrize("shards", [2, 4, 9])
    def test_sharded_answer_matches_unsharded(self, scheme, shards):
        query = window_query()
        oracle = Mahif(MahifConfig()).answer(query, Method.R_PS_DS).delta
        config = MahifConfig(
            shards=shards, shard_scheme=scheme, shard_workers=0
        )
        assert Mahif(config).answer(query, Method.R_PS_DS).delta == oracle

    def test_skip_statistics_on_clustered_workload(self):
        """Range partitioning + a narrow window: shards the modification
        provably cannot touch skip reenactment entirely."""
        engine = Mahif(MahifConfig(shards=4, shard_scheme="range"))
        query = window_query()
        with use_backend("compiled"):
            plan = engine._plan_reenactment(query, Method.R)
            deltas, stats = evaluate_plan_sharded(
                plan, engine.config, "compiled"
            )
        assert stats["data"]["sharded"] is True
        assert stats["data"]["shards"] == 4
        assert stats["data"]["skipped"] == 3
        oracle = Mahif(MahifConfig()).answer(query, Method.R).delta
        assert dict(oracle.relations) == {
            name: delta
            for name, delta in deltas.items()
            if not delta.is_empty()
        }

    def test_insert_modification_survives_full_skip(self):
        """An inserted tuple arrives via a singleton, not the base rows;
        with every shard otherwise skippable the protected first shard
        must still deliver it."""
        db = make_db(rows=30)
        history = History.of(window_update(0, 5, 1))
        replacement = InsertTuple("data", (1000, 0))
        query = HistoricalWhatIfQuery(
            history, db, (Replace(1, replacement),)
        )
        oracle = Mahif(MahifConfig()).answer(query, Method.R).delta
        sharded = Mahif(MahifConfig(shards=8)).answer(query, Method.R).delta
        assert sharded == oracle
        assert (1000, 0) in sharded["data"].added

    def test_insert_select_history_falls_back_unsharded(self):
        db = Database(
            {
                "data": Relation.from_rows(SCHEMA, [(1, 2), (2, 3)]),
                "src": Relation.from_rows(SCHEMA, [(7, 8), (9, 1)]),
            }
        )
        # The insert sits *after* the modified statement, so it is part
        # of the reenacted pair (a prefix insert would be time-travelled
        # away) and the data query must scan src — unshardable.
        history = History.of(
            window_update(0, 99, 5),
            InsertQuery(
                "data", Select(RelScan("src"), ge(Attr("k"), 8))
            ),
        )
        query = HistoricalWhatIfQuery(
            history, db, (Replace(1, window_update(0, 99, 50)),)
        )
        oracle = Mahif(MahifConfig()).answer(query, Method.R).delta
        engine = Mahif(MahifConfig(shards=3))
        assert engine.answer(query, Method.R).delta == oracle
        with use_backend("compiled"):
            plan = engine._plan_reenactment(query, Method.R)
            _, stats = evaluate_plan_sharded(plan, engine.config, "compiled")
        assert stats["data"]["sharded"] is False

    @pytest.mark.parametrize("backend", ["compiled", "sqlite"])
    def test_shard_worker_pools(self, backend):
        """Processes for the in-process backends, threads for sqlite —
        pooled shard evaluation equals serial."""
        query = window_query()
        oracle = Mahif(MahifConfig(backend=backend)).answer(
            query, Method.R_PS_DS
        ).delta
        config = MahifConfig(backend=backend, shards=3, shard_workers=3)
        assert Mahif(config).answer(query, Method.R_PS_DS).delta == oracle

    def test_batch_with_shards_and_pool(self):
        db = make_db()
        base = window_query(db)
        other = HistoricalWhatIfQuery(
            base.history, db, (Replace(2, window_update(2, 4, 77)),)
        )
        queries = [base, other, base]
        expected = [
            Mahif(MahifConfig()).answer(q, Method.R_PS_DS).delta
            for q in queries
        ]
        for workers in (0, 2):
            config = MahifConfig(shards=4, batch_workers=workers)
            results = Mahif(config).answer_batch(queries, Method.R_PS_DS)
            assert [r.delta for r in results] == expected

    def test_partition_memo_reuses_shard_databases(self):
        """Batch queries over one start database must share the shard
        Database wrappers — the sqlite connection cache is keyed by
        database identity, so fresh wrappers per query would re-ingest
        every shard server-side."""
        from repro.core.shard import plan_relation_shards

        engine = Mahif(MahifConfig(shards=3))
        db = make_db()
        first = window_query(db)
        second = HistoricalWhatIfQuery(
            first.history, db, (Replace(2, window_update(1, 3, 55)),)
        )
        with use_backend("compiled"):
            plan_a = engine._plan_reenactment(first, Method.R)
            plan_b = engine._plan_reenactment(
                second, Method.R, start_db=plan_a.start_db
            )
            partitions: dict = {}
            work_a = plan_relation_shards(
                "compiled", plan_a, "data", 3, "range", partitions
            )
            work_b = plan_relation_shards(
                "compiled", plan_b, "data", 3, "range", partitions
            )
        dbs_a = {id(call[3]) for call in work_a.calls}
        dbs_b = {id(call[3]) for call in work_b.calls}
        assert dbs_a & dbs_b, "shard databases were rebuilt, not reused"

    def test_naive_method_ignores_sharding(self):
        query = window_query()
        oracle = Mahif(MahifConfig()).answer(query, Method.NAIVE).delta
        assert (
            Mahif(MahifConfig(shards=4)).answer(query, Method.NAIVE).delta
            == oracle
        )


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            MahifConfig(shards=-1)
        with pytest.raises(ValueError):
            MahifConfig(shards="many")
        with pytest.raises(ValueError):
            MahifConfig(shard_workers=-1)
        with pytest.raises(ValueError):
            MahifConfig(shard_scheme="zigzag")

    def test_auto_sentinel_accepted(self):
        from repro.core.planner import AUTO_SHARDS

        assert MahifConfig(shards="auto").shards == AUTO_SHARDS
        assert MahifConfig(shards=0).shards_auto
        assert MahifConfig(shards="auto").may_shard
        assert not MahifConfig(shards=1).may_shard
        assert MahifConfig(shards=4).may_shard

    def test_cli_flag_parses(self):
        from repro.cli import _engine_config, build_parser

        args = build_parser().parse_args(
            ["whatif", "--data", "d", "--history", "h", "--replace",
             "1", "sql", "--shards", "4"]
        )
        assert args.shards == 4
        assert _engine_config(args).shards == 4
        serve = build_parser().parse_args(
            ["serve", "--root", "r", "--shards", "2"]
        )
        assert serve.shards == 2

    def test_cli_shards_default_is_unset(self):
        """The remote path must distinguish "not given" (server default
        applies) from an explicit --shards 1 (force unsharded), so the
        flag defaults to None and the local config maps None -> 1."""
        from repro.cli import _engine_config, build_parser

        args = build_parser().parse_args(
            ["whatif", "--data", "d", "--history", "h", "--replace",
             "1", "sql"]
        )
        assert args.shards is None
        assert _engine_config(args).shards == 1
