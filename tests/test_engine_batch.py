"""Batched what-if answering: ``answer_batch`` ≡ a sequential ``answer``
loop, across every method, backend, pool and sharing configuration.

The batch path amortizes time travel, reenactment planning and (with a
pool) delta evaluation — none of which may change a single delta.  The
matrix here is deterministic; the seeded-random counterpart (including
the set/bag batched-replay sweep) lives in
``tests/test_sql_backend_differential.py``.
"""

import pytest

from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.core.batch import shared_start_databases
from repro.relational import Database, History, Relation, Schema, parse_statement
from repro.relational.expressions import Attr, Cmp, Const, col, ge, gt
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)

BACKENDS = ("interpreted", "compiled", "sqlite")


def _db() -> Database:
    return Database(
        {
            "Orders": Relation.from_rows(
                Schema.of("ID", "Price", "Fee"),
                [(1, 20, 5), (2, 50, 5), (3, 60, 3), (4, 30, 4), (5, 80, 2)],
            ),
            "Refunds": Relation.from_rows(
                Schema.of("ID", "Amount"), [(2, 10), (5, 3)]
            ),
        }
    )


def _history() -> History:
    return History.of(
        UpdateStatement("Orders", {"Fee": Const(0)}, ge(col("Price"), 50)),
        UpdateStatement(
            "Orders", {"Fee": Attr("Fee") + 1}, ge(col("Price"), 30)
        ),
        DeleteStatement("Refunds", gt(col("Amount"), 8)),
        UpdateStatement(
            "Orders", {"Price": Attr("Price") + 2}, gt(col("Fee"), 0)
        ),
        InsertTuple("Orders", (6, 45, 1)),
    )


def _batch(history: History, db: Database) -> list[HistoricalWhatIfQuery]:
    """Distinct what-ifs over one shared history: thresholds 55/65/75 for
    u1, plus one modification deeper in the history."""
    queries = [
        HistoricalWhatIfQuery(
            history,
            db,
            (
                Replace(
                    1,
                    UpdateStatement(
                        "Orders", {"Fee": Const(0)},
                        ge(col("Price"), threshold),
                    ),
                ),
            ),
        )
        for threshold in (55, 65, 75)
    ]
    queries.append(
        HistoricalWhatIfQuery(
            history,
            db,
            (
                Replace(
                    4,
                    UpdateStatement(
                        "Orders", {"Price": Attr("Price") + 5},
                        gt(col("Fee"), 0),
                    ),
                ),
            ),
        )
    )
    return queries


def _assert_batch_matches_sequential(config, queries, method):
    engine = Mahif(config)
    sequential = [engine.answer(query, method) for query in queries]
    batch = engine.answer_batch(queries, method)
    assert len(batch) == len(sequential)
    for seq, bat in zip(sequential, batch):
        assert bat.delta == seq.delta
        assert bat.method is method


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", list(Method))
    def test_every_method_every_backend(self, backend, method):
        _assert_batch_matches_sequential(
            MahifConfig(backend=backend),
            _batch(_history(), _db()),
            method,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_worker_pool(self, backend):
        """Two workers: a thread pool for sqlite, processes otherwise."""
        config = MahifConfig(backend=backend, batch_workers=2)
        queries = _batch(_history(), _db())
        _assert_batch_matches_sequential(config, queries, Method.R_PS_DS)
        _assert_batch_matches_sequential(config, queries, Method.NAIVE)

    def test_plan_sharing_disabled(self):
        _assert_batch_matches_sequential(
            MahifConfig(batch_share_plans=False),
            _batch(_history(), _db()),
            Method.R_PS_DS,
        )

    def test_workers_argument_overrides_config(self):
        engine = Mahif(MahifConfig(batch_workers=0))
        queries = _batch(_history(), _db())
        sequential = [engine.answer(q, Method.R_PS_DS) for q in queries]
        batch = engine.answer_batch(queries, Method.R_PS_DS, workers=2)
        assert [r.delta for r in batch] == [r.delta for r in sequential]

    def test_mixed_databases_and_histories(self):
        """A batch need not share anything to stay correct."""
        db_a, db_b = _db(), _db()
        history = _history()
        other = History.of(*history.statements[:3])
        queries = [
            HistoricalWhatIfQuery(
                history, db_a,
                (Replace(1, parse_statement(
                    "UPDATE Orders SET Fee = 1 WHERE Price >= 50"
                )),),
            ),
            HistoricalWhatIfQuery(
                other, db_b,
                (Replace(3, DeleteStatement("Refunds", gt(col("Amount"), 1))),),
            ),
        ]
        _assert_batch_matches_sequential(
            MahifConfig(), queries, Method.R_PS_DS
        )

    def test_empty_batch(self):
        assert Mahif().answer_batch([]) == []

    def test_results_keep_input_order(self):
        queries = _batch(_history(), _db())
        engine = Mahif(MahifConfig())
        batch = engine.answer_batch(list(reversed(queries)), Method.R_PS_DS)
        sequential = [
            engine.answer(q, Method.R_PS_DS) for q in reversed(queries)
        ]
        assert [r.delta for r in batch] == [r.delta for r in sequential]


class TestSharedWork:
    def test_shared_time_travel_versions(self):
        """Queries modifying the same position share one start database;
        deeper prefixes extend the shallower materialization."""
        db, history = _db(), _history()
        queries = _batch(history, db)
        starts = shared_start_databases(queries)
        # thresholds 55/65/75 all modify u1: prefix length 0 -> db itself
        assert starts[0] is db and starts[1] is db and starts[2] is db
        # the position-4 modification time-travels past u1..u3
        assert starts[3] is not db
        expected = history.prefix(3).execute(db)
        assert starts[3].relations == expected.relations

    def test_identical_queries_share_plans(self):
        """Two equal queries hit the keyed plan cache: their results
        reference the same reenactment-tree mapping object."""
        db, history = _db(), _history()
        modification = (
            Replace(1, parse_statement(
                "UPDATE Orders SET Fee = 0 WHERE Price >= 65"
            )),
        )
        queries = [
            HistoricalWhatIfQuery(history, db, modification)
            for _ in range(2)
        ]
        results = Mahif(MahifConfig()).answer_batch(queries, Method.R_PS_DS)
        assert results[0].queries_original is results[1].queries_original
        assert results[0].delta == results[1].delta

    def test_plan_sharing_is_constant_type_faithful(self):
        """``SET Fee = 1`` and ``SET Fee = TRUE`` compare equal under
        dataclass equality but must not share reenactment trees — the
        projected values differ in type."""
        db, history = _db(), _history()
        queries = [
            HistoricalWhatIfQuery(
                history, db,
                (Replace(1, UpdateStatement(
                    "Orders", {"Fee": Const(value)}, ge(col("Price"), 50)
                )),),
            )
            for value in (1, True)
        ]
        engine = Mahif(MahifConfig(backend="interpreted"))
        results = engine.answer_batch(queries, Method.R)
        # Equal statements, different constant types: the share key's
        # fingerprint must keep them apart (tuple/set equality would not
        # catch a swap — ``1 == True`` — so tree identity is asserted).
        assert results[0].queries_original is not results[1].queries_original
        sequential = [engine.answer(q, Method.R) for q in queries]
        for seq, bat in zip(sequential, results):
            assert bat.delta == seq.delta

    def test_batch_workers_validated(self):
        with pytest.raises(ValueError, match="batch_workers"):
            MahifConfig(batch_workers=-1)

    def test_unhashable_constants_fall_back_to_no_sharing(self):
        """Statements embedding unhashable constants cannot key either
        shared cache; the batch must still answer (regression: the
        hash error used to escape from ``versions.get`` in
        ``shared_start_databases``)."""
        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("a", "b"), [(1, 10), (2, 20), (3, 30)]
                )
            }
        )
        # The unhashable constant lives in a *condition* — it is only
        # evaluated (equality against it is False), never stored, so the
        # history itself replays fine; only cache keys over it can't hash.
        unhashable = DeleteStatement(
            "R", Cmp("=", col("b"), Const((9, [9])))
        )
        history = History.of(
            unhashable,
            DeleteStatement("R", gt(col("a"), 5)),
        )
        queries = [
            HistoricalWhatIfQuery(
                history, db,
                (Replace(2, DeleteStatement("R", gt(col("a"), limit))),),
            )
            for limit in (1, 2)
        ]
        engine = Mahif(MahifConfig(backend="interpreted"))
        sequential = [engine.answer(q, Method.R) for q in queries]
        batch = engine.answer_batch(queries, Method.R)
        assert [r.delta for r in batch] == [r.delta for r in sequential]
