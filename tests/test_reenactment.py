"""Reenactment correctness (Definition 3): R_H(D) == H(D)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.reenactment import (
    reenact_statement,
    reenactment_queries,
    reenactment_query,
)
from repro.relational.algebra import (
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
)
from repro.relational.expressions import col, eq, ge, le, lit, and_
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
    no_op,
)


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation.from_rows(
                Schema.of("k", "v"), [(1, 10), (2, 20), (3, 30), (4, 40)]
            ),
            "S": Relation.from_rows(Schema.of("x", "y"), [(5, 50), (6, 60)]),
        }
    )


def schemas_of(db):
    return {n: db.schema_of(n) for n in db}


class TestSingleStatement:
    def test_update_becomes_conditional_projection(self, db):
        stmt = UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 20))
        query = reenact_statement(stmt, db.schema_of("R"))
        assert isinstance(query, Project)
        assert set(evaluate_query(query, db)) == set(stmt.apply(db)["R"])

    def test_delete_becomes_negated_selection(self, db):
        stmt = DeleteStatement("R", ge(col("v"), 20))
        query = reenact_statement(stmt, db.schema_of("R"))
        assert isinstance(query, Select)
        assert set(evaluate_query(query, db)) == set(stmt.apply(db)["R"])

    def test_insert_tuple_becomes_union_singleton(self, db):
        stmt = InsertTuple("R", (9, 90))
        query = reenact_statement(stmt, db.schema_of("R"))
        assert isinstance(query, Union)
        assert isinstance(query.right, Singleton)
        assert set(evaluate_query(query, db)) == set(stmt.apply(db)["R"])

    def test_insert_query_becomes_union_query(self, db):
        inner = Project(RelScan("S"), ((col("x"), "k"), (col("y"), "v")))
        stmt = InsertQuery("R", inner)
        query = reenact_statement(stmt, db.schema_of("R"))
        assert set(evaluate_query(query, db)) == set(stmt.apply(db)["R"])


class TestHistoryReenactment:
    @pytest.mark.parametrize(
        "history",
        [
            History.of(
                UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 20)),
                UpdateStatement("R", {"v": col("v") * 2}, le(col("v"), 21)),
            ),
            History.of(
                UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 20)),
                DeleteStatement("R", eq(col("v"), 0)),
                InsertTuple("R", (7, 70)),
            ),
            History.of(
                InsertTuple("R", (7, 70)),
                UpdateStatement("R", {"v": col("v") + 5}, ge(col("k"), 4)),
                DeleteStatement("R", ge(col("v"), 70)),
            ),
            History.of(no_op("R"), no_op("R")),
        ],
        ids=["two-updates", "update-delete-insert", "insert-then-ops", "noops"],
    )
    def test_equivalence_single_relation(self, db, history):
        query = reenactment_query(history, "R", schemas_of(db))
        assert set(evaluate_query(query, db)) == set(history.execute(db)["R"])

    def test_multi_relation_histories(self, db):
        history = History.of(
            UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 20)),
            UpdateStatement("S", {"y": col("y") - 1}, ge(col("y"), 50)),
            DeleteStatement("R", ge(col("v"), 41)),
        )
        queries = reenactment_queries(history, schemas_of(db))
        final = history.execute(db)
        for name in ("R", "S"):
            assert set(evaluate_query(queries[name], db)) == set(final[name])

    def test_insert_query_sees_source_as_of_statement_time(self, db):
        """I_Q must read the reenacted state of its sources (D_{i-1}),
        not the base relation."""
        history = History.of(
            UpdateStatement("S", {"y": lit(99)}, eq(col("x"), 5)),
            InsertQuery(
                "R",
                Project(
                    Select(RelScan("S"), eq(col("y"), 99)),
                    ((col("x"), "k"), (col("y"), "v")),
                ),
            ),
        )
        query = reenactment_query(history, "R", schemas_of(db))
        expected = history.execute(db)["R"]
        assert set(evaluate_query(query, db)) == set(expected)
        assert (5, 99) in expected

    def test_unknown_relation_raises(self, db):
        history = History.of(UpdateStatement("Z", {"v": lit(0)}))
        with pytest.raises(KeyError):
            reenactment_queries(history, schemas_of(db))

    def test_update_order_matters(self, db):
        """Reenactment composes in history order (not commutative)."""
        u_then_d = History.of(
            UpdateStatement("R", {"v": lit(25)}, eq(col("v"), 10)),
            DeleteStatement("R", eq(col("v"), 25)),
        )
        d_then_u = History.of(
            DeleteStatement("R", eq(col("v"), 25)),
            UpdateStatement("R", {"v": lit(25)}, eq(col("v"), 10)),
        )
        r1 = evaluate_query(
            reenactment_query(u_then_d, "R", schemas_of(db)), db
        )
        r2 = evaluate_query(
            reenactment_query(d_then_u, "R", schemas_of(db)), db
        )
        assert set(r1) != set(r2)

    def test_paper_example3_structure(self, orders_db, paper_history):
        """Example 3: the running example's reenactment query is three
        nested conditional projections."""
        query = reenactment_query(
            paper_history, "Orders",
            {n: orders_db.schema_of(n) for n in orders_db},
        )
        # Π(Π(Π(Orders))) — three projections over the base scan
        assert isinstance(query, Project)
        assert isinstance(query.input, Project)
        assert isinstance(query.input.input, Project)
        assert isinstance(query.input.input.input, RelScan)
        result = evaluate_query(query, orders_db)
        assert set(result) == set(paper_history.execute(orders_db)["Orders"])
