"""End-to-end service smoke: the real ``repro.cli serve`` process, the
real CLI client over HTTP, deltas asserted equal to the in-process
``Mahif.answer_batch`` oracle.  This is the test the CI service-smoke
job runs."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro import HistoricalWhatIfQuery, Mahif, MahifConfig
from repro.relational.csvio import load_database_dir
from repro.relational.history import History
from repro.relational.parser import parse_history
from repro.service import METHODS, modifications_from_spec, result_payload

HISTORY_SQL = (
    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;\n"
    "UPDATE Orders SET ShippingFee = ShippingFee + 5 "
    "WHERE Country = 'UK' AND Price <= 100;\n"
    "UPDATE Orders SET ShippingFee = ShippingFee - 2 "
    "WHERE Price <= 30 AND ShippingFee >= 10;\n"
)

SPECS = [
    {"replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                     f"WHERE Price >= {threshold}"]]}
    for threshold in (25, 40, 60, 75)
] + [{"delete_stmt": [2]}]


@pytest.fixture
def workspace(tmp_path):
    data = tmp_path / "data"
    data.mkdir()
    (data / "Orders.csv").write_text(
        "ID,Customer,Country,Price,ShippingFee\n"
        "11,Susan,UK,20,5\n"
        "12,Alex,UK,50,5\n"
        "13,Jack,US,60,3\n"
        "14,Mark,US,30,4\n"
    )
    (tmp_path / "history.sql").write_text(HISTORY_SQL)
    (tmp_path / "batch.json").write_text(json.dumps(SPECS))
    return tmp_path


def _spawn_server(tmp_path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--root", str(tmp_path / "stores"),
            "--port", "0",
            "--name", "orders",
            "--data", str(tmp_path / "data"),
            "--history", str(tmp_path / "history.sql"),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    url = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise RuntimeError("server exited before becoming ready")
        if "serving what-if queries on " in line:
            url = line.split("serving what-if queries on ", 1)[1].split()[0]
            break
    if url is None:
        process.kill()
        raise RuntimeError("server did not report its address in time")
    return process, url


def test_cli_server_batch_equals_in_process_answer_batch(workspace):
    process, url = _spawn_server(workspace)
    try:
        result = subprocess.run(
            [
                sys.executable, "-m", "repro.cli", "whatif",
                "--url", url,
                "--name", "orders",
                "--batch", str(workspace / "batch.json"),
                "--quiet",
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env={
                **os.environ,
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[1] / "src"
                ),
            },
        )
        assert result.returncode == 0, result.stderr
        remote = [
            json.loads(line)
            for line in result.stdout.splitlines()
            if line.startswith("{")
        ]
        assert len(remote) == len(SPECS)

        database = load_database_dir(workspace / "data")
        history = History(tuple(parse_history(HISTORY_SQL)))
        queries = [
            HistoricalWhatIfQuery(
                history, database, modifications_from_spec(spec)
            )
            for spec in SPECS
        ]
        oracle = Mahif(MahifConfig(backend="compiled")).answer_batch(
            queries, METHODS["R+PS+DS"]
        )
        assert [record["delta"] for record in remote] == [
            result_payload(r)["delta"] for r in oracle
        ]
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
