"""The paper's running example, end to end (Figures 1-4, Examples 1-9)."""

import pytest

from repro import (
    Database,
    HistoricalWhatIfQuery,
    Mahif,
    Method,
    Relation,
    Schema,
)
from repro.core import Replace
from repro.core.data_slicing import compute_data_slicing
from repro.core.hwq import align
from repro.relational.expressions import col, evaluate, ge, or_, simplify
from repro.relational.parser import parse_statement


class TestRunningExample:
    def test_figure3_original_history(self, orders_db, paper_history):
        """Executing H over Figure 1 yields Figure 3."""
        result = paper_history.execute(orders_db)["Orders"]
        assert set(result) == {
            (11, "Susan", "UK", 20, 8),
            (12, "Alex", "UK", 50, 5),
            (13, "Jack", "US", 60, 0),
            (14, "Mark", "US", 30, 4),
        }

    def test_figure4_modified_history(self, orders_db, paper_history, u1_prime):
        """Executing H[M] yields Figure 4 (Alex's fee 5 -> 10)."""
        aligned = align(paper_history, [Replace(1, u1_prime)])
        result = aligned.modified.execute(orders_db)["Orders"]
        assert set(result) == {
            (11, "Susan", "UK", 20, 8),
            (12, "Alex", "UK", 50, 10),
            (13, "Jack", "US", 60, 0),
            (14, "Mark", "US", 30, 4),
        }

    @pytest.mark.parametrize("method", list(Method), ids=lambda m: m.value)
    def test_example2_answer(self, orders_db, paper_history, u1_prime, method):
        """Δ(H(D), H[M](D)) = {-o6, +o6'} for every method."""
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, method)
        delta = result.delta["Orders"]
        assert delta.removed == {(12, "Alex", "UK", 50, 5)}
        assert delta.added == {(12, "Alex", "UK", 50, 10)}

    def test_example_data_slicing_condition(self, paper_history, u1_prime):
        """Section 6: the slicing condition for u1 <- u1' is
        (Price >= 50) OR (Price >= 60), admitting only Alex and Jack."""
        aligned = align(paper_history, [Replace(1, u1_prime)])
        conditions = compute_data_slicing(
            aligned,
            {"Orders": Schema.of("ID", "Customer", "Country", "Price",
                                 "ShippingFee")},
        )
        condition = conditions.for_original["Orders"]
        expected = simplify(
            or_(ge(col("Price"), 50), ge(col("Price"), 60))
        )
        assert condition == expected
        rows = {
            11: {"Price": 20}, 12: {"Price": 50},
            13: {"Price": 60}, 14: {"Price": 30},
        }
        admitted = {
            k for k, row in rows.items() if evaluate(condition, row)
        }
        assert admitted == {12, 13}

    def test_program_slicing_drops_u3(self, orders_db, paper_history, u1_prime):
        """u3 (discount for fee >= 10 and price <= 30) cannot interact
        with the modification: no order is both cheap enough for u3 and
        expensive enough for u1/u1'."""
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, Method.R_PS_DS)
        kept = result.slice_result.kept_positions
        assert 1 in kept and 2 in kept and 3 not in kept

    def test_greedy_slicer_agrees(self, orders_db, paper_history, u1_prime):
        from repro.core import MahifConfig

        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif(MahifConfig(slicing_algorithm="greedy")).answer(
            query, Method.R_PS_DS
        )
        assert 3 not in result.slice_result.kept_positions
        delta = result.delta["Orders"]
        assert delta.added == {(12, "Alex", "UK", 50, 10)}

    def test_example1_narrative_parse(self, orders_db):
        """The SQL from Figure 2 parses and reproduces the same states."""
        u1 = parse_statement(
            "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;"
        )
        u2 = parse_statement(
            "UPDATE Orders SET ShippingFee = ShippingFee + 5 "
            "WHERE Country = 'UK' AND Price <= 100;"
        )
        u3 = parse_statement(
            "UPDATE Orders SET ShippingFee = ShippingFee - 2 "
            "WHERE Price <= 30 AND ShippingFee >= 10;"
        )
        from repro import History

        db = History.of(u1, u2, u3).execute(orders_db)
        assert (11, "Susan", "UK", 20, 8) in db["Orders"]
