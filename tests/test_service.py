"""The concurrent what-if service: HTTP round trips, three-backend
equality with the in-process engine, result-cache behavior, concurrency,
and restart persistence."""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import (
    Database,
    HistoricalWhatIfQuery,
    History,
    Mahif,
    MahifConfig,
    Relation,
    Schema,
    parse_history,
)
from repro.service import (
    METHODS,
    ServiceClient,
    ServiceClientError,
    WhatIfServer,
    WhatIfService,
    modifications_from_spec,
    result_payload,
)

BACKENDS = ("interpreted", "compiled", "sqlite")

HISTORY_SQL = """
UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
UPDATE Orders SET ShippingFee = ShippingFee + 5
    WHERE Country = 'UK' AND Price <= 100;
UPDATE Orders SET ShippingFee = ShippingFee - 2
    WHERE Price <= 30 AND ShippingFee >= 10;
"""


def spec_for(threshold: int) -> dict:
    return {
        "replace": [
            [1, f"UPDATE Orders SET ShippingFee = 0 "
                f"WHERE Price >= {threshold}"]
        ]
    }


def expected_delta(
    database, history, spec, *, method="R+PS+DS", backend="compiled"
):
    """The in-process oracle for one spec, as a wire delta payload."""
    query = HistoricalWhatIfQuery(
        history, database, modifications_from_spec(spec)
    )
    result = Mahif(MahifConfig(backend=backend)).answer(
        query, METHODS[method]
    )
    return result_payload(result)["delta"]


@pytest.fixture
def server(tmp_path, orders_db, paper_history):
    service = WhatIfService(tmp_path / "stores")
    service.register("orders", orders_db, paper_history)
    server = WhatIfServer(service, port=0).start_background()
    yield server
    server.shutdown()


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestHistoryManagement:
    def test_health_and_listing(self, client):
        health = client.health()
        assert health["ok"] and health["histories"] == ["orders"]
        (info,) = client.histories()
        assert info["name"] == "orders"
        assert info["length"] == 3
        assert info["relations"] == ["Orders"]

    def test_register_via_http_and_info(self, client, orders_db):
        info = client.register(
            "orders2", orders_db, history_sql=HISTORY_SQL,
            checkpoint_interval=2,
        )
        assert info["length"] == 3
        assert info["checkpoint_interval"] == 2
        assert 2 in info["checkpoints"]

    def test_register_duplicate_conflicts(self, client, orders_db):
        with pytest.raises(ServiceClientError) as err:
            client.register("orders", orders_db)
        assert err.value.status == 409

    def test_register_bad_name_rejected(self, client, orders_db):
        with pytest.raises(ServiceClientError) as err:
            client.register("no/slashes", orders_db)
        assert err.value.status == 400

    def test_unknown_history_404(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.whatif("nope", spec_for(60))
        assert err.value.status == 404

    def test_append_sql(self, client):
        info = client.append(
            "orders",
            statements_sql="UPDATE Orders SET Price = Price + 1 "
            "WHERE Country = 'US';",
        )
        assert info["length"] == 4


class TestAnswering:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_single_matches_in_process(
        self, client, orders_db, paper_history, backend
    ):
        spec = spec_for(60)
        answer = client.whatif("orders", spec, backend=backend)
        assert answer["cached"] is False
        assert answer["backend"] == backend
        assert answer["delta"] == expected_delta(
            orders_db, paper_history, spec, backend=backend
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_matches_in_process_answer_batch(
        self, client, orders_db, paper_history, backend
    ):
        specs = [spec_for(t) for t in (25, 40, 60, 75)]
        answers = client.whatif_batch("orders", specs, backend=backend)
        queries = [
            HistoricalWhatIfQuery(
                paper_history, orders_db, modifications_from_spec(spec)
            )
            for spec in specs
        ]
        engine = Mahif(MahifConfig(backend=backend))
        expected = engine.answer_batch(queries, METHODS["R+PS+DS"])
        assert [a["delta"] for a in answers] == [
            result_payload(r)["delta"] for r in expected
        ]

    def test_methods_agree(self, client):
        spec = spec_for(60)
        deltas = {
            method: client.whatif("orders", spec, method=method)["delta"]
            for method in ("N", "R", "R+DS", "R+PS", "R+PS+DS")
        }
        assert len({repr(sorted(d.items())) for d in deltas.values()}) == 1

    def test_malformed_spec_is_400(self, client):
        for bad in (
            {"replace": [[1]]},
            {"unknown_key": []},
            {},
            {"replace": [[1, "NOT SQL !!"]]},
            {"replace": [["x", "UPDATE Orders SET Price = 1"]]},
        ):
            with pytest.raises(ServiceClientError) as err:
                client.whatif("orders", bad)
            assert err.value.status == 400

    def test_out_of_range_position_is_400(self, client):
        with pytest.raises(ServiceClientError) as err:
            client.whatif(
                "orders",
                {"replace": [[9, "UPDATE Orders SET Price = 1"]]},
            )
        assert err.value.status == 400


class TestResultCache:
    def test_repeat_query_hits_cache(self, client):
        spec = spec_for(60)
        first = client.whatif("orders", spec)
        second = client.whatif("orders", spec)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["delta"] == first["delta"]
        info = client.info("orders")
        assert info["cache"]["hits"] >= 1

    def test_equivalent_sql_spellings_share_one_entry(self, client):
        a = client.whatif(
            "orders",
            {"replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                             "WHERE Price >= 60"]]},
        )
        b = client.whatif(
            "orders",
            {"replace": [[1, "UPDATE  Orders  SET  ShippingFee = 0  "
                             "WHERE  Price >= 60;"]]},
        )
        assert b["cached"] is True
        assert b["delta"] == a["delta"]

    def test_append_drops_overlapping_entries(
        self, client, orders_db, paper_history
    ):
        spec = spec_for(60)
        client.whatif("orders", spec)
        # the appended statement touches Orders, which carries the delta
        append_sql = (
            "UPDATE Orders SET Price = Price + 1 WHERE Country = 'US';"
        )
        info = client.append("orders", statements_sql=append_sql)
        assert info["cache_dropped"] == 1
        answer = client.whatif("orders", spec)
        assert answer["cached"] is False
        extended = History(
            tuple(paper_history) + tuple(parse_history(append_sql))
        )
        assert answer["delta"] == expected_delta(
            orders_db, extended, spec
        )

    def test_append_retains_disjoint_entries(self, tmp_path):
        """Appending to a relation outside a cached answer's delta keeps
        the entry valid — and still correct for the longer history."""
        db = Database(
            {
                "Orders": Relation.from_rows(
                    Schema.of("ID", "Price", "ShippingFee"),
                    [(1, 20, 5), (2, 60, 3)],
                ),
                "Audit": Relation.from_rows(
                    Schema.of("ID", "Flag"), [(1, 0)]
                ),
            }
        )
        history = History(
            tuple(
                parse_history(
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;"
                )
            )
        )
        service = WhatIfService(tmp_path / "stores2")
        service.register("mixed", db, history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            client = ServiceClient(server.url)
            spec = {
                "replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                                "WHERE Price >= 70"]]
            }
            first = client.whatif("mixed", spec)
            append_sql = "UPDATE Audit SET Flag = 1 WHERE ID = 1;"
            info = client.append("mixed", statements_sql=append_sql)
            assert info["cache_retained"] == 1
            assert info["cache_dropped"] == 0
            second = client.whatif("mixed", spec)
            assert second["cached"] is True
            extended = History(
                tuple(history) + tuple(parse_history(append_sql))
            )
            assert second["delta"] == expected_delta(db, extended, spec)
            assert first["delta"] == second["delta"]
        finally:
            server.shutdown()


class TestConcurrency:
    def test_concurrent_clients_get_in_process_answers(
        self, server, orders_db, paper_history
    ):
        thresholds = [20 + 5 * i for i in range(12)]
        expected = {
            t: expected_delta(orders_db, paper_history, spec_for(t))
            for t in thresholds
        }

        def probe(threshold):
            client = ServiceClient(server.url)
            return (
                threshold,
                client.whatif("orders", spec_for(threshold))["delta"],
            )

        with ThreadPoolExecutor(max_workers=8) as pool:
            # two rounds: the second exercises concurrent cache hits
            for _ in range(2):
                for threshold, delta in pool.map(probe, thresholds):
                    assert delta == expected[threshold]

    def test_concurrent_queries_and_appends_stay_consistent(
        self, tmp_path
    ):
        """Appends racing queries: every answer must match the oracle
        for *some* history length the store actually passed through."""
        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("k", "v"), [(i, 10 * i) for i in range(6)]
                )
            }
        )
        history = History(
            tuple(parse_history("UPDATE R SET v = v + 1 WHERE k >= 2;"))
        )
        service = WhatIfService(tmp_path / "stores3")
        service.register("race", db, history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            client = ServiceClient(server.url)
            spec = {"replace": [[1, "UPDATE R SET v = v + 2 WHERE k >= 2"]]}
            lengths = range(1, 6)
            oracles = {}
            h = history
            oracles[1] = expected_delta(db, h, spec)
            for n in lengths[1:]:
                h = History(
                    tuple(h)
                    + tuple(parse_history("UPDATE R SET v = v + 1 WHERE k >= 2;"))
                )
                oracles[n] = expected_delta(db, h, spec)

            def query(_):
                return client.whatif("race", spec)["delta"]

            def append(_):
                client.append(
                    "race",
                    statements_sql="UPDATE R SET v = v + 1 WHERE k >= 2;",
                )

            with ThreadPoolExecutor(max_workers=6) as pool:
                answer_futures = [
                    pool.submit(query, i) for i in range(8)
                ]
                append_futures = [
                    pool.submit(append, i) for i in range(4)
                ]
                for future in append_futures:
                    future.result()
                for future in answer_futures:
                    assert future.result() in oracles.values()
            # after the dust settles, a fresh answer matches length 5
            assert client.whatif("race", spec)["delta"] == oracles[5]
        finally:
            server.shutdown()


class TestPersistence:
    def test_service_resumes_from_disk(self, tmp_path, orders_db,
                                       paper_history):
        root = tmp_path / "stores"
        service = WhatIfService(root)
        service.register("orders", orders_db, paper_history)
        server = WhatIfServer(service, port=0).start_background()
        client = ServiceClient(server.url)
        spec = spec_for(60)
        before = client.whatif("orders", spec)["delta"]
        client.append(
            "orders",
            statements_sql="UPDATE Orders SET Price = Price + 1 "
            "WHERE Country = 'US';",
        )
        server.shutdown()

        # a fresh process (service) over the same root sees everything
        revived = WhatIfServer(
            WhatIfService(root), port=0
        ).start_background()
        try:
            client = ServiceClient(revived.url)
            info = client.info("orders")
            assert info["length"] == 4
            after = client.whatif("orders", spec)
            assert after["cached"] is False  # caches are process-local
            extended = History(
                tuple(paper_history)
                + tuple(
                    parse_history(
                        "UPDATE Orders SET Price = Price + 1 "
                        "WHERE Country = 'US';"
                    )
                )
            )
            assert after["delta"] == expected_delta(
                orders_db, extended, spec
            )
            assert before != after["delta"] or True  # values may coincide
        finally:
            revived.shutdown()


class TestRobustness:
    """Regressions for the review findings: partial appends, broken
    store directories, empty/invalid registration, backend scoping."""

    def test_invalid_statement_mid_append_persists_nothing(
        self, client, orders_db, paper_history
    ):
        spec = spec_for(60)
        client.whatif("orders", spec)  # populate the cache
        with pytest.raises(ServiceClientError) as err:
            client.append(
                "orders",
                statements_sql=(
                    "UPDATE Orders SET Price = Price + 1;"
                    # unknown relation: fails validation before any write
                    "UPDATE Nope SET x = 1;"
                ),
            )
        assert err.value.status == 400
        info = client.info("orders")
        assert info["length"] == 3  # nothing was appended
        assert client.whatif("orders", spec)["cached"] is True

    def test_broken_store_directory_is_skipped_on_startup(
        self, tmp_path, orders_db, paper_history
    ):
        root = tmp_path / "stores"
        service = WhatIfService(root)
        service.register("good", orders_db, paper_history)
        service.close()
        broken = root / "broken"
        broken.mkdir()
        (broken / "META.json").write_text(
            '{"format": "mahif-history-store", "version": 1, '
            '"checkpoint_interval": 32}'
        )
        (broken / "log.jsonl").touch()
        (broken / "checkpoints").mkdir()  # no base checkpoint
        revived = WhatIfService(root)
        try:
            assert revived.history_names() == ["good"]
            assert "broken" in revived.skipped_on_startup
            assert revived.info("good")["length"] == 3
        finally:
            revived.close()

    def test_register_empty_history_is_valid(self, client, orders_db):
        info = client.register("empty", orders_db)
        assert info["length"] == 0
        # and the history is usable once statements arrive
        client.append(
            "empty",
            statements_sql="UPDATE Orders SET ShippingFee = 0 "
            "WHERE Price >= 50;",
        )
        answer = client.whatif(
            "empty",
            {"replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                             "WHERE Price >= 60"]]},
        )
        assert "Orders" in answer["delta"]

    def test_invalid_history_does_not_squat_the_name(
        self, client, orders_db
    ):
        with pytest.raises(ServiceClientError) as err:
            client.register(
                "retry", orders_db,
                history_sql="UPDATE Nope SET x = 1;",
            )
        assert err.value.status == 400
        # the name is free: registering with a good history now works
        info = client.register(
            "retry", orders_db,
            history_sql="UPDATE Orders SET ShippingFee = 0 "
            "WHERE Price >= 50;",
        )
        assert info["length"] == 1

    def test_retained_cache_hit_reports_current_history_length(
        self, tmp_path
    ):
        db = Database(
            {
                "Orders": Relation.from_rows(
                    Schema.of("ID", "Price"), [(1, 20), (2, 60)]
                ),
                "Audit": Relation.from_rows(Schema.of("ID"), [(1,)]),
            }
        )
        history = History(
            tuple(parse_history("DELETE FROM Orders WHERE Price >= 50;"))
        )
        service = WhatIfService(tmp_path / "stores-len")
        service.register("h", db, history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            client = ServiceClient(server.url)
            spec = {"replace": [[1, "DELETE FROM Orders WHERE Price >= 70"]]}
            first = client.whatif("h", spec)
            assert first["history_length"] == 1
            client.append("h", statements_sql="DELETE FROM Audit WHERE ID = 99;")
            second = client.whatif("h", spec)
            assert second["cached"] is True
            assert second["history_length"] == 2
        finally:
            server.shutdown()

    def test_use_backend_scopes_are_per_thread(self):
        import threading

        from repro.relational import get_default_backend, use_backend

        base = get_default_backend()
        errors = []
        barrier = threading.Barrier(2)

        def scoped(backend):
            try:
                for _ in range(50):
                    barrier.wait(timeout=10)
                    with use_backend(backend):
                        if get_default_backend() != backend:
                            errors.append(
                                f"{backend} saw {get_default_backend()}"
                            )
                        barrier.wait(timeout=10)
            except threading.BrokenBarrierError:
                pass

        threads = [
            threading.Thread(target=scoped, args=(b,))
            for b in ("sqlite", "interpreted")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors, errors
        assert get_default_backend() == base


class TestRequestValidation:
    """Bad client input is a 400 with a one-line message, never a 500."""

    def test_non_integer_body_fields_are_400(self, client, orders_db):
        import json
        import urllib.request

        def post(path, body):
            request = urllib.request.Request(
                f"{client.url}{path}",
                method="POST",
                data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request) as response:
                    return response.status
            except urllib.error.HTTPError as exc:
                return exc.code

        from repro.store import encode_database

        assert post("/histories", {
            "name": "bad-interval",
            "database": encode_database(orders_db),
            "checkpoint_interval": "abc",
        }) == 400
        assert post("/histories", {
            "name": 5,
            "database": encode_database(orders_db),
        }) == 400
        assert post("/histories/orders/batch", {
            "queries": [spec_for(60)],
            "workers": "two",
        }) == 400

    def test_zero_checkpoint_interval_rejected_not_defaulted(
        self, client, orders_db
    ):
        with pytest.raises(ServiceClientError) as err:
            client.register(
                "zero-k", orders_db, checkpoint_interval=0
            )
        assert err.value.status == 400
        assert "checkpoint_interval" in str(err.value)

    def test_missing_log_store_is_skipped_not_fatal(self, tmp_path,
                                                    orders_db,
                                                    paper_history):
        root = tmp_path / "stores"
        service = WhatIfService(root)
        service.register("good", orders_db, paper_history)
        service.close()
        broken = root / "nolog"
        broken.mkdir()
        (broken / "META.json").write_text(
            '{"format": "mahif-history-store", "version": 1, '
            '"checkpoint_interval": 32}'
        )
        # no log.jsonl at all (crash between META write and log touch)
        revived = WhatIfService(root)
        try:
            assert revived.history_names() == ["good"]
            assert "nolog" in revived.skipped_on_startup
        finally:
            revived.close()


class TestKeepAlive:
    def test_unread_body_on_error_route_does_not_corrupt_connection(
        self, server
    ):
        """Two pipelined requests over one keep-alive connection, the
        first erroring before its body is read: the second must still
        parse cleanly."""
        import http.client
        import json

        host, port = server.address
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"padding": "x" * 4096})
            connection.request(
                "POST", "/histories/orders/unknown-route", body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # same socket: a well-formed second request
            connection.request("GET", "/health")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["ok"] is True
        finally:
            connection.close()


class TestRegistrationCleanup:
    def test_failed_registration_leaves_no_store_behind(
        self, tmp_path, orders_db
    ):
        """A register that fails mid-history must be fully retryable:
        no partial directory on disk, nothing resurrected on restart."""
        root = tmp_path / "stores-clean"
        service = WhatIfService(root)
        bad = History(
            tuple(
                parse_history(
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;"
                )
            )
            + tuple(parse_history("UPDATE Nope SET x = 1;"))
        )
        with pytest.raises(Exception):
            service.register("retryme", orders_db, bad)
        assert not (root / "retryme").exists()
        # the same name registers cleanly afterwards
        good = History(
            tuple(
                parse_history(
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;"
                )
            )
        )
        info = service.register("retryme", orders_db, good)
        assert info["length"] == 1
        service.close()
        # and a restart sees exactly the good history
        revived = WhatIfService(root)
        try:
            assert revived.info("retryme")["length"] == 1
        finally:
            revived.close()

    def test_skipped_store_directory_name_is_not_reusable(
        self, tmp_path, orders_db
    ):
        root = tmp_path / "stores-skip"
        root.mkdir()
        broken = root / "broken"
        broken.mkdir()
        (broken / "META.json").write_text(
            '{"format": "mahif-history-store", "version": 1, '
            '"checkpoint_interval": 32}'
        )
        service = WhatIfService(root)
        try:
            assert "broken" in service.skipped_on_startup
            from repro.service import ServiceError

            with pytest.raises(ServiceError, match="taken by an existing"):
                service.register("broken", orders_db)
            # the broken directory was NOT deleted by the failed attempt
            assert (broken / "META.json").exists()
        finally:
            service.close()
