"""Bag-semantics tests, including the set-semantics collision case."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.reenactment import reenactment_query
from repro.relational.bag import (
    BagDatabase,
    BagRelation,
    apply_statement_bag,
    bag_delta,
    evaluate_query_bag,
    execute_history_bag,
)
from repro.relational.expressions import col, eq, ge, lit
from repro.relational.schema import SchemaError
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("a", "b")


def bag(rows):
    return BagRelation.from_rows(SCHEMA, rows)


class TestBagRelation:
    def test_multiplicities(self):
        relation = bag([(1, 1), (1, 1), (2, 2)])
        assert len(relation) == 3
        assert relation.distinct_count() == 2
        assert relation.count_of((1, 1)) == 2

    def test_zero_counts_dropped(self):
        relation = BagRelation(SCHEMA, {(1, 1): 0, (2, 2): 1})
        assert relation.distinct_count() == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            BagRelation(SCHEMA, {(1, 1): -1})

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            BagRelation(SCHEMA, {(1,): 1})

    def test_union_all_adds(self):
        combined = bag([(1, 1)]).union_all(bag([(1, 1), (2, 2)]))
        assert combined.count_of((1, 1)) == 2

    def test_monus_floors_at_zero(self):
        result = bag([(1, 1)]).monus(bag([(1, 1), (1, 1)]))
        assert result.count_of((1, 1)) == 0

    def test_filter_preserves_counts(self):
        result = bag([(1, 1), (1, 1), (2, 2)]).filter(eq(col("a"), 1))
        assert result.count_of((1, 1)) == 2
        assert result.count_of((2, 2)) == 0

    def test_iteration_with_repetition(self):
        assert sorted(bag([(1, 1), (1, 1)])) == [(1, 1), (1, 1)]

    def test_set_round_trip(self):
        relation = Relation.from_rows(SCHEMA, [(1, 1), (2, 2)])
        assert BagRelation.from_set_relation(
            relation
        ).to_set_relation() == relation


class TestBagStatements:
    def test_update_merges_counts_not_rows(self):
        db = BagDatabase({"R": bag([(1, 10), (2, 10)])})
        # both rows map onto (0, 10): bag keeps multiplicity 2
        stmt = UpdateStatement("R", {"a": lit(0)}, ge(col("a"), 0))
        result = apply_statement_bag(stmt, db)
        assert result["R"].count_of((0, 10)) == 2

    def test_delete(self):
        db = BagDatabase({"R": bag([(1, 10), (1, 10), (2, 20)])})
        result = apply_statement_bag(DeleteStatement("R", eq(col("a"), 1)), db)
        assert len(result["R"]) == 1

    def test_insert_increases_multiplicity(self):
        db = BagDatabase({"R": bag([(1, 10)])})
        result = apply_statement_bag(InsertTuple("R", (1, 10)), db)
        assert result["R"].count_of((1, 10)) == 2

    def test_history_execution(self):
        db = BagDatabase({"R": bag([(1, 10), (2, 20)])})
        history = History.of(
            UpdateStatement("R", {"b": col("b") + 1}, ge(col("b"), 20)),
            InsertTuple("R", (3, 30)),
        )
        final = execute_history_bag(history, db)
        assert final["R"].count_of((2, 21)) == 1
        assert final["R"].count_of((3, 30)) == 1


class TestBagReenactment:
    def test_reenactment_equivalence_under_bags(self):
        """R_H evaluated with bag semantics equals bag execution of H —
        including a merging update where set semantics loses counts."""
        rows = [(1, 10), (2, 10), (2, 10)]
        db = BagDatabase({"R": BagRelation.from_rows(SCHEMA, rows)})
        history = History.of(
            UpdateStatement("R", {"a": lit(0)}, ge(col("b"), 10)),
            UpdateStatement("R", {"b": col("b") * 2}, ge(col("b"), 10)),
        )
        query = reenactment_query(history, "R", {"R": SCHEMA})
        reenacted = evaluate_query_bag(query, db)
        executed = execute_history_bag(history, db)["R"]
        assert dict(reenacted.multiplicities) == dict(
            executed.multiplicities
        )

    def test_collision_counterexample_resolved_by_bags(self):
        """DESIGN.md's set-semantics caveat: u = (A=2 -> A=1),
        u' = (A=3 -> A=1) over D = {1, 2}.  Under set semantics filtering
        with theta_u OR theta_u' perturbs the delta; under bag semantics
        the filtered and unfiltered deltas agree."""
        schema = Schema.of("A")
        rows = [(1,), (2,)]
        u = UpdateStatement("R", {"A": lit(1)}, eq(col("A"), 2))
        u_prime = UpdateStatement("R", {"A": lit(1)}, eq(col("A"), 3))
        condition = eq(col("A"), 2)  # theta_u OR theta_u' simplifies here

        full = BagRelation.from_rows(schema, rows)
        filtered = full.filter(
            eq(col("A"), 2)
        ).union_all(full.filter(eq(col("A"), 3)))

        def run(statement, relation):
            db = BagDatabase({"R": relation})
            return apply_statement_bag(statement, db)["R"]

        # unfiltered delta
        delta_full = bag_delta(run(u, full), run(u_prime, full))
        # filtered delta (tuples failing both conditions removed)
        delta_filtered = bag_delta(run(u, filtered), run(u_prime, filtered))
        assert delta_full == delta_filtered == {(1,): -1, (2,): 1}

    def test_set_semantics_differs_on_collision(self):
        """The same scenario under set semantics shows the discrepancy —
        the reason the main engine documents its key-preservation
        requirement."""
        schema = Schema.of("A")
        db = Database({"R": Relation.from_rows(schema, [(1,), (2,)])})
        u = UpdateStatement("R", {"A": lit(1)}, eq(col("A"), 2))
        u_prime = UpdateStatement("R", {"A": lit(1)}, eq(col("A"), 3))
        full_u = set(u.apply(db)["R"])           # {1}
        full_up = set(u_prime.apply(db)["R"])    # {1, 2}
        full_delta = full_u ^ full_up            # {2}

        filtered = Database(
            {"R": db["R"].filter(eq(col("A"), 2))}
        )
        f_u = set(u.apply(filtered)["R"])        # {1}
        f_up = set(u_prime.apply(filtered)["R"])  # {2}
        filtered_delta = f_u ^ f_up              # {1, 2} != {2}
        assert filtered_delta != full_delta


class TestBagDelta:
    def test_signed_counts(self):
        current = bag([(1, 1), (1, 1), (2, 2)])
        modified = bag([(1, 1), (3, 3)])
        delta = bag_delta(current, modified)
        assert delta == {(1, 1): -1, (2, 2): -1, (3, 3): 1}

    def test_empty_delta(self):
        assert bag_delta(bag([(1, 1)]), bag([(1, 1)])) == {}

    def test_bag_database_same_contents(self):
        a = BagDatabase({"R": bag([(1, 1)])})
        b = BagDatabase({"R": bag([(1, 1)])})
        c = BagDatabase({"R": bag([(1, 1), (1, 1)])})
        assert a.same_contents(b)
        assert not a.same_contents(c)
