"""Tests for database deltas and the delta query (Sections 3-4)."""

import pytest

from repro import Database, Relation, Schema
from repro.core.delta import DatabaseDelta, RelationDelta, delta_query
from repro.relational.algebra import RelScan, evaluate_query


def rel(rows):
    return Relation.from_rows(Schema.of("k", "v"), rows)


class TestRelationDelta:
    def test_between(self):
        delta = RelationDelta.between(rel([(1, 10), (2, 20)]), rel([(2, 20), (3, 30)]))
        assert delta.removed == {(1, 10)}
        assert delta.added == {(3, 30)}
        assert len(delta) == 2

    def test_empty(self):
        delta = RelationDelta.between(rel([(1, 1)]), rel([(1, 1)]))
        assert delta.is_empty()

    def test_annotated_rows_order(self):
        delta = RelationDelta.between(rel([(1, 1)]), rel([(2, 2)]))
        rows = list(delta.annotated_rows())
        assert rows[0][0] == "-" and rows[1][0] == "+"

    def test_equality_ignores_schema_types(self):
        typed = Schema.of("k", "v", types=["int", "int"])
        untyped = Schema.of("k", "v")
        a = RelationDelta(typed, frozenset({(1, 1)}), frozenset())
        b = RelationDelta(untyped, frozenset({(1, 1)}), frozenset())
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_contents(self):
        a = RelationDelta(Schema.of("k"), frozenset({(1,)}), frozenset())
        b = RelationDelta(Schema.of("k"), frozenset(), frozenset({(1,)}))
        assert a != b

    def test_pretty(self):
        delta = RelationDelta.between(rel([(1, 1)]), rel([]))
        assert "- (1, 1)" in delta.pretty()
        assert RelationDelta.between(rel([]), rel([])).pretty() == "(empty delta)"


class TestDatabaseDelta:
    def test_between_drops_empty_relations(self):
        a = Database({"R": rel([(1, 1)]), "S": rel([(9, 9)])})
        b = Database({"R": rel([(2, 2)]), "S": rel([(9, 9)])})
        delta = DatabaseDelta.between(a, b)
        assert "R" in delta and "S" not in delta
        assert len(delta) == 2

    def test_between_handles_missing_relations(self):
        a = Database({"R": rel([(1, 1)])})
        b = Database({})
        delta = DatabaseDelta.between(a, b)
        assert delta["R"].removed == {(1, 1)}

    def test_is_empty(self):
        a = Database({"R": rel([(1, 1)])})
        assert DatabaseDelta.between(a, a).is_empty()

    def test_getitem_raises_for_unchanged(self):
        a = Database({"R": rel([(1, 1)])})
        delta = DatabaseDelta.between(a, a)
        with pytest.raises(KeyError):
            delta["R"]

    def test_equality(self):
        a = Database({"R": rel([(1, 1)])})
        b = Database({"R": rel([(2, 2)])})
        assert DatabaseDelta.between(a, b) == DatabaseDelta.between(a, b)
        assert DatabaseDelta.between(a, b) != DatabaseDelta.between(b, a)

    def test_pretty(self):
        a = Database({"R": rel([(1, 1)])})
        b = Database({"R": rel([(2, 2)])})
        rendered = DatabaseDelta.between(a, b).pretty()
        assert "Δ R" in rendered


class TestDeltaQuery:
    def test_delta_query_matches_direct_computation(self):
        """The paper's Π(R_cur − R_mod) ∪ Π(R_mod − R_cur) query."""
        current = Database({"cur": rel([(1, 10), (2, 20)]),
                            "mod": rel([(2, 20), (3, 30)])})
        query = delta_query(
            Schema.of("k", "v"), RelScan("cur"), RelScan("mod")
        )
        result = evaluate_query(query, current)
        assert set(result) == {(1, 10, "-"), (3, 30, "+")}
        assert result.schema.attributes == ("k", "v", "_annotation")
