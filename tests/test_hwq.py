"""Tests for HWQ definitions, modification alignment and padding."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.hwq import (
    AlignedHistories,
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    ModificationError,
    Replace,
    align,
)
from repro.relational.expressions import TRUE, col, ge, lit
from repro.relational.statements import (
    DeleteStatement,
    UpdateStatement,
    is_no_op,
)


def u(n):
    return UpdateStatement("R", {"v": lit(n)}, ge(col("v"), n))


@pytest.fixture
def history():
    return History.of(u(1), u(2), u(3))


class TestAlign:
    def test_replace(self, history):
        aligned = align(history, [Replace(2, u(99))])
        assert len(aligned) == 3
        assert aligned.modified[2] == u(99)
        assert aligned.modified_positions == (2,)

    def test_delete_pads_with_noop(self, history):
        aligned = align(history, [DeleteStatementMod(3)])
        assert len(aligned) == 3
        assert is_no_op(aligned.modified[3])
        assert aligned.original[3] == u(3)

    def test_insert_pads_original_with_noop(self, history):
        aligned = align(history, [InsertStatementMod(2, u(50))])
        assert len(aligned) == 4
        assert is_no_op(aligned.original[2])
        assert aligned.modified[2] == u(50)
        assert aligned.original[3] == aligned.modified[3] == u(2)

    def test_append_via_insert_at_n_plus_1(self, history):
        aligned = align(history, [InsertStatementMod(4, u(50))])
        assert aligned.modified[4] == u(50)

    def test_paper_example_replace_plus_delete(self, history):
        """M = (u1 <- u1', del(3)) gives H[M] = u1', u2 (Section 3)."""
        aligned = align(
            history, [Replace(1, u(99)), DeleteStatementMod(3)]
        )
        effective = [
            s for s in aligned.modified.statements if not is_no_op(s)
        ]
        assert effective == [u(99), u(2)]

    def test_multiple_inserts_same_position_stack_in_order(self, history):
        aligned = align(
            history,
            [InsertStatementMod(1, u(50)), InsertStatementMod(1, u(60))],
        )
        assert aligned.modified[1] == u(50)
        assert aligned.modified[2] == u(60)

    def test_conflicting_modifications_rejected(self, history):
        with pytest.raises(ModificationError):
            align(history, [Replace(1, u(9)), DeleteStatementMod(1)])
        with pytest.raises(ModificationError):
            align(history, [Replace(1, u(9)), Replace(1, u(8))])

    def test_position_bounds(self, history):
        with pytest.raises(ModificationError):
            align(history, [Replace(4, u(9))])
        with pytest.raises(ModificationError):
            align(history, [DeleteStatementMod(0)])
        with pytest.raises(ModificationError):
            align(history, [InsertStatementMod(5, u(9))])

    def test_alignment_preserves_semantics(self, history):
        """Executing the padded modified history equals executing the
        unpadded one (no-ops change nothing)."""
        db = Database(
            {"R": Relation.from_rows(Schema.of("k", "v"), [(1, 5), (2, 7)])}
        )
        modifications = [Replace(1, u(4)), DeleteStatementMod(2),
                         InsertStatementMod(3, u(6))]
        aligned = align(history, modifications)
        padded_result = aligned.modified.execute(db)
        unpadded = History(
            tuple(s for s in aligned.modified.statements if not is_no_op(s))
        )
        assert padded_result.same_contents(unpadded.execute(db))


class TestAlignedHistories:
    def test_length_mismatch_rejected(self, history):
        with pytest.raises(ModificationError):
            AlignedHistories(history, History.of(u(1)))

    def test_trim_prefix(self, history):
        aligned = align(history, [Replace(3, u(99))])
        trimmed, dropped = aligned.trim_prefix()
        assert dropped == 2
        assert len(trimmed) == 1
        assert trimmed.modified_positions == (1,)

    def test_trim_prefix_noop_when_first_modified(self, history):
        aligned = align(history, [Replace(1, u(99))])
        trimmed, dropped = aligned.trim_prefix()
        assert dropped == 0 and trimmed is aligned

    def test_subset(self, history):
        aligned = align(history, [Replace(2, u(99))])
        subset = aligned.subset([2, 3])
        assert len(subset) == 2
        assert subset.modified[1] == u(99)

    def test_pairs(self, history):
        aligned = align(history, [Replace(2, u(99))])
        triples = list(aligned.pairs())
        assert triples[1] == (2, u(2), u(99))

    def test_target_relations(self, history):
        aligned = align(history, [Replace(2, u(99))])
        assert aligned.target_relations_of_modifications() == {"R"}


class TestHistoricalWhatIfQuery:
    def test_requires_modifications(self, history):
        db = Database({"R": Relation.from_rows(Schema.of("k", "v"), [])})
        with pytest.raises(ModificationError):
            HistoricalWhatIfQuery(history, db, ())

    def test_validates_positions_eagerly(self, history):
        db = Database({"R": Relation.from_rows(Schema.of("k", "v"), [])})
        with pytest.raises(ModificationError):
            HistoricalWhatIfQuery(history, db, (Replace(7, u(1)),))

    def test_modified_history_drops_noops(self, history):
        db = Database({"R": Relation.from_rows(Schema.of("k", "v"), [])})
        query = HistoricalWhatIfQuery(
            history, db, (DeleteStatementMod(2),)
        )
        assert len(query.modified_history()) == 2
