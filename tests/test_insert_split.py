"""Insert splitting tests (Section 10)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.hwq import ModificationError, Replace, align
from repro.core.insert_split import can_split, split_inserts
from repro.relational.algebra import RelScan
from repro.relational.expressions import col, ge, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
    is_no_op,
)

SCHEMA = Schema.of("k", "v")


def db_with(rows):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def schemas():
    return {"R": SCHEMA}


class TestCanSplit:
    def test_updates_and_inserts_ok(self):
        aligned = align(
            History.of(
                UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 5)),
                InsertTuple("R", (9, 9)),
            ),
            [Replace(1, UpdateStatement("R", {"v": lit(1)}, ge(col("v"), 5)))],
        )
        assert can_split(aligned)

    def test_insert_query_blocks(self):
        aligned = align(
            History.of(
                InsertQuery("R", RelScan("R")),
                UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 5)),
            ),
            [Replace(2, UpdateStatement("R", {"v": lit(1)}, ge(col("v"), 5)))],
        )
        assert not can_split(aligned)
        with pytest.raises(ModificationError):
            split_inserts(aligned, schemas())


class TestSplitInserts:
    def test_split_preserves_union_semantics(self):
        """H(D) == H_noIns(D) ∪ H(∅) — the Section 10 equivalence."""
        history = History.of(
            InsertTuple("R", (9, 90)),
            UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 50)),
            InsertTuple("R", (10, 100)),
            DeleteStatement("R", ge(col("v"), 101)),
        )
        aligned = align(
            history,
            [Replace(2, UpdateStatement("R", {"v": col("v") + 2},
                                        ge(col("v"), 50)))],
        )
        db = db_with([(1, 10), (2, 60)])
        split = split_inserts(aligned, schemas())

        for side, full_history in (
            ("original", aligned.original),
            ("modified", aligned.modified),
        ):
            without = (
                split.without_inserts.original
                if side == "original"
                else split.without_inserts.modified
            )
            inserted = (
                split.inserted_original
                if side == "original"
                else split.inserted_modified
            )
            combined = without.execute(db)["R"].union(inserted["R"])
            direct = full_history.execute(db)["R"]
            assert set(combined) == set(direct), side

    def test_positions_preserved(self):
        history = History.of(
            InsertTuple("R", (9, 90)),
            UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 50)),
        )
        aligned = align(
            history,
            [Replace(2, UpdateStatement("R", {"v": lit(1)},
                                        ge(col("v"), 50)))],
        )
        split = split_inserts(aligned, schemas())
        assert len(split.without_inserts) == len(aligned)
        assert split.insert_positions == (1,)
        assert is_no_op(split.without_inserts.original[1])

    def test_inserted_side_flows_through_suffix(self):
        """Inserted tuples are transformed by downstream statements."""
        history = History.of(
            InsertTuple("R", (9, 90)),
            UpdateStatement("R", {"v": col("v") * 2}, ge(col("v"), 90)),
        )
        aligned = align(
            history,
            [Replace(2, UpdateStatement("R", {"v": col("v") * 3},
                                        ge(col("v"), 90)))],
        )
        split = split_inserts(aligned, schemas())
        assert set(split.inserted_original["R"]) == {(9, 180)}
        assert set(split.inserted_modified["R"]) == {(9, 270)}

    def test_modified_insert_value(self):
        """Replacing an insert's tuple shows up on the inserted side."""
        history = History.of(InsertTuple("R", (9, 90)))
        aligned = align(history, [Replace(1, InsertTuple("R", (9, 95)))])
        split = split_inserts(aligned, schemas())
        assert set(split.inserted_original["R"]) == {(9, 90)}
        assert set(split.inserted_modified["R"]) == {(9, 95)}
        # both sides of the no-insert pair are no-ops now
        assert is_no_op(split.without_inserts.original[1])
        assert is_no_op(split.without_inserts.modified[1])

    def test_no_inserts_is_identity(self):
        history = History.of(
            UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 50))
        )
        aligned = align(
            history,
            [Replace(1, UpdateStatement("R", {"v": lit(1)},
                                        ge(col("v"), 50)))],
        )
        split = split_inserts(aligned, schemas())
        assert split.insert_positions == ()
        assert split.without_inserts.original == aligned.original
        assert len(split.inserted_original["R"]) == 0
