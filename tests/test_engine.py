"""Integration tests for the Mahif engine (Algorithm 2).

The load-bearing assertion throughout: *every method returns exactly the
same delta* — Theorems 2, 4 and 5 as executable facts — across history
shapes, modification types, datasets and multi-relation databases.
"""

import pytest

from repro import Database, History, Relation, Schema
from repro.core import (
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    Mahif,
    MahifConfig,
    Method,
    Replace,
    answer,
)
from repro.relational.expressions import and_, col, eq, ge, le, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)
from repro.relational.algebra import Project, RelScan, Select

SCHEMA = Schema.of("k", "P", "F")
ROWS = [(i, i * 10, 5) for i in range(1, 13)]

ALL_METHODS = list(Method)


def window(low, high):
    return and_(ge(col("P"), low), le(col("P"), high))


def db_with(rows=ROWS):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def assert_all_methods_agree(query, expect_nonempty=True):
    engine = Mahif()
    results = {m: engine.answer(query, m) for m in ALL_METHODS}
    reference = results[Method.NAIVE].delta
    for method, result in results.items():
        assert result.delta == reference, method.value
    if expect_nonempty:
        assert not reference.is_empty()
    return results


class TestMethodAgreement:
    def test_update_replacement(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(20, 60)),
            UpdateStatement("R", {"F": col("F") + 1}, window(40, 90)),
            UpdateStatement("R", {"F": col("F") * 2}, window(100, 120)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(1, UpdateStatement("R", {"F": lit(0)}, window(20, 80))),),
        )
        results = assert_all_methods_agree(query)
        # the independent third update must be sliced away
        kept = results[Method.R_PS_DS].slice_result.kept_positions
        assert 3 not in kept

    def test_delete_replacement(self):
        history = History.of(
            DeleteStatement("R", window(100, 120)),
            UpdateStatement("R", {"F": col("F") + 1}, window(90, 130)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(1, DeleteStatement("R", window(80, 120))),),
        )
        assert_all_methods_agree(query)

    def test_statement_deletion_modification(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(9)}, window(20, 60)),
            UpdateStatement("R", {"F": col("F") + 1}, window(40, 90)),
        )
        query = HistoricalWhatIfQuery(
            history, db_with(), (DeleteStatementMod(1),)
        )
        assert_all_methods_agree(query)

    def test_statement_insertion_modification(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(9)}, window(20, 60)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            # window reaches past u1's (20,60), so the inserted update's
            # effect on P in (60,90] is not masked and the delta is nonempty
            (InsertStatementMod(
                1, UpdateStatement("R", {"F": lit(0)}, window(50, 90))
            ),),
        )
        assert_all_methods_agree(query)

    def test_insert_tuple_modification(self):
        history = History.of(
            InsertTuple("R", (99, 55, 5)),
            UpdateStatement("R", {"F": col("F") + 1}, window(50, 60)),
        )
        query = HistoricalWhatIfQuery(
            history, db_with(), (Replace(1, InsertTuple("R", (99, 55, 9))),)
        )
        assert_all_methods_agree(query)

    def test_mixed_history_with_late_modification(self):
        history = History.of(
            UpdateStatement("R", {"F": col("F") + 1}, window(10, 40)),
            InsertTuple("R", (50, 45, 5)),
            DeleteStatement("R", window(110, 120)),
            UpdateStatement("R", {"F": lit(0)}, window(30, 60)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(4, UpdateStatement("R", {"F": lit(2)}, window(30, 70))),),
        )
        assert_all_methods_agree(query)

    def test_multiple_modifications(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 30)),
            UpdateStatement("R", {"F": col("F") + 1}, window(50, 70)),
            UpdateStatement("R", {"F": col("F") + 2}, window(90, 120)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (
                Replace(1, UpdateStatement("R", {"F": lit(1)}, window(10, 30))),
                Replace(3, UpdateStatement("R", {"F": col("F") + 2},
                                           window(80, 120))),
            ),
        )
        assert_all_methods_agree(query)

    def test_multi_relation_database(self):
        other = Schema.of("x", "y")
        db = Database(
            {
                "R": Relation.from_rows(SCHEMA, ROWS),
                "S": Relation.from_rows(other, [(1, 1), (2, 2)]),
            }
        )
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(20, 60)),
            UpdateStatement("S", {"y": col("y") + 1}, ge(col("x"), 0)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"F": lit(3)}, window(20, 60))),),
        )
        results = assert_all_methods_agree(query)
        # S is untouched by the modification: no delta entry
        assert "S" not in results[Method.NAIVE].delta.relations

    def test_insert_query_history_falls_back_gracefully(self):
        """INSERT..SELECT disables program slicing but all methods still
        agree (R_PS silently behaves like R)."""
        iq = InsertQuery(
            "R",
            Project(
                Select(RelScan("R"), ge(col("P"), 110)),
                ((col("k") + 100, "k"), (col("P"), "P"), (col("F"), "F")),
            ),
        )
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(20, 60)),
            iq,
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(1, UpdateStatement("R", {"F": lit(1)}, window(20, 60))),),
        )
        assert_all_methods_agree(query)

    def test_empty_delta_workload(self):
        """A modification that provably changes nothing."""
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(200, 300)),
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(1, UpdateStatement("R", {"F": lit(0)},
                                        window(200, 400))),),
        )
        assert_all_methods_agree(query, expect_nonempty=False)


class TestEngineAccounting:
    def make_query(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(20, 60)),
            UpdateStatement("R", {"F": col("F") + 1}, window(100, 120)),
        )
        return HistoricalWhatIfQuery(
            history,
            db_with(),
            (Replace(1, UpdateStatement("R", {"F": lit(1)}, window(20, 60))),),
        )

    def test_ps_timing_reported(self):
        result = Mahif().answer(self.make_query(), Method.R_PS_DS)
        assert result.ps_seconds > 0
        assert result.exe_seconds > 0
        assert result.total_seconds == pytest.approx(
            result.ps_seconds + result.exe_seconds
        )

    def test_r_method_has_no_ps_cost(self):
        result = Mahif().answer(self.make_query(), Method.R)
        assert result.ps_seconds == 0
        assert result.slice_result is None
        assert result.data_slicing is None

    def test_ds_conditions_exposed(self):
        result = Mahif().answer(self.make_query(), Method.R_DS)
        assert result.data_slicing is not None
        assert "R" in result.data_slicing.for_original

    def test_naive_breakdown_exposed(self):
        result = Mahif().answer(self.make_query(), Method.NAIVE)
        assert result.naive_breakdown is not None

    def test_queries_exposed_for_inspection(self):
        result = Mahif().answer(self.make_query(), Method.R)
        assert "R" in result.queries_original
        from repro.relational.sqlgen import query_to_sql

        assert "SELECT" in query_to_sql(result.queries_original["R"])

    def test_greedy_config(self):
        config = MahifConfig(slicing_algorithm="greedy")
        result = Mahif(config).answer(self.make_query(), Method.R_PS_DS)
        assert 2 not in result.slice_result.kept_positions

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MahifConfig(slicing_algorithm="magic")

    def test_module_level_answer(self):
        result = answer(self.make_query(), Method.R)
        assert not result.delta.is_empty()


class TestMethodEnum:
    def test_labels_match_paper(self):
        assert Method.NAIVE.value == "N"
        assert Method.R_PS_DS.value == "R+PS+DS"

    def test_capability_flags(self):
        assert Method.R_PS.uses_program_slicing
        assert not Method.R_PS.uses_data_slicing
        assert Method.R_DS.uses_data_slicing
        assert Method.R_PS_DS.uses_program_slicing
        assert Method.R_PS_DS.uses_data_slicing
        assert not Method.NAIVE.uses_program_slicing
