"""Differential NULL-soundness fuzz for the algebraic optimizer.

PR 2's three-way harness caught three NULL-unsound rewrites in
``expressions.simplify`` (``x = x -> TRUE``, ``x * 0 -> 0``,
NOT-comparison flipping); ``relational/optimizer.py`` composes those
expression rewrites with its own algebraic ones (projection merging,
selection fusion/pushdown, union pruning), each of which substitutes
expressions into expressions — exactly where 2VL NULL semantics breaks
naive identities.  This suite mirrors the PR 2 harness one level up:
random NULL-heavy databases, random operator trees (ad-hoc stacks and
real reenactment queries with injected data-slicing-style selections),
asserting ``eval(optimize(Q)) == eval(Q)`` on the interpreter (the
oracle) and the compiled backend.
"""

import pytest

from fuzz_differential import (
    fresh_rng,
    random_history,
    random_set_expression,
    random_typed_condition,
    random_typed_database,
    scaled,
)

from repro.core.reenactment import reenactment_queries
from repro.relational import OptimizerConfig, optimize
from repro.relational.algebra import (
    Project,
    RelScan,
    Select,
    Union,
    evaluate_query,
    evaluate_query_interpreted,
    inject_selection,
)
from repro.relational.expressions import Attr

N_REENACT = 40
N_INJECTED = 40
N_ADHOC = 80

#: A second config that forces aggressive merging — the growth-aware
#: default can decline merges, which would leave rewrites untested.
AGGRESSIVE = OptimizerConfig(
    max_expression_size=100_000, growth_factor=1_000.0
)


def _assert_equivalent(op, db, label):
    expected = evaluate_query_interpreted(op, db)
    for config in (None, AGGRESSIVE):
        optimized = optimize(op, config)
        assert (
            evaluate_query_interpreted(optimized, db).tuples
            == expected.tuples
        ), f"{label}: optimizer changed the interpreted result"
        assert (
            evaluate_query(optimized, db, backend="compiled").tuples
            == expected.tuples
        ), f"{label}: optimizer changed the compiled result"


class TestOptimizerNullSoundness:
    def test_reenactment_queries(self):
        """Real reenactment stacks (the optimizer's production input)
        over NULL-bearing relations."""
        rng = fresh_rng(offset=80)
        for trial in range(scaled(N_REENACT)):
            db, types_by_name = random_typed_database(rng, rows=10)
            history = random_history(rng, db, types_by_name)
            schemas = {
                name: db.schema_of(name) for name in db.relations
            }
            for relation, op in reenactment_queries(
                history, schemas
            ).items():
                _assert_equivalent(op, db, f"trial {trial} ({relation})")

    def test_reenactment_with_injected_selections(self):
        """Data-slicing-shaped selections injected at the scans, then
        optimized — the exact pipeline R+DS/R+PS+DS runs."""
        rng = fresh_rng(offset=81)
        for trial in range(scaled(N_INJECTED)):
            db, types_by_name = random_typed_database(rng, rows=10)
            history = random_history(rng, db, types_by_name)
            schemas = {
                name: db.schema_of(name) for name in db.relations
            }
            conditions = {
                name: random_typed_condition(
                    rng, db.schema_of(name), types_by_name[name]
                )
                for name in ("R", "S")
            }
            for relation, op in reenactment_queries(
                history, schemas
            ).items():
                injected = inject_selection(op, dict(conditions))
                _assert_equivalent(
                    injected, db, f"trial {trial} ({relation}, injected)"
                )

    def test_adhoc_select_project_union_stacks(self):
        """Random stacks hitting every rewrite rule: selection fusion
        (σσ), pushdown through projections (σΠ) and unions (σ∪), and
        projection merging (ΠΠ) with NULL-producing outputs."""
        rng = fresh_rng(offset=82)
        for trial in range(scaled(N_ADHOC)):
            db, types_by_name = random_typed_database(rng, rows=10)
            schema = db.schema_of("R")
            types = types_by_name["R"]

            def random_project(inner):
                outputs = []
                for attribute in schema.attributes:
                    if attribute != "k" and rng.random() < 0.5:
                        outputs.append(
                            (
                                random_set_expression(
                                    rng, schema, types, attribute
                                ),
                                attribute,
                            )
                        )
                    else:
                        outputs.append((Attr(attribute), attribute))
                return Project(inner, tuple(outputs))

            def random_tree(depth):
                if depth == 0:
                    return RelScan("R")
                roll = rng.random()
                if roll < 0.4:
                    return Select(
                        random_tree(depth - 1),
                        random_typed_condition(rng, schema, types),
                    )
                if roll < 0.8:
                    return random_project(random_tree(depth - 1))
                return Union(
                    random_tree(depth - 1), random_tree(depth - 1)
                )

            op = random_tree(rng.randint(2, 4))
            _assert_equivalent(op, db, f"trial {trial} (ad-hoc)")


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
