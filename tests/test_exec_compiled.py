"""Differential tests: compiled execution backend vs. the interpreter.

The compiled backend (``repro.relational.exec``) must agree with the
tree-walking interpreter on every expression and operator shape.  These
tests drive both backends over seeded-random expression trees, operator
trees, and whole historical what-if pipelines (all five ``Method``
variants), including NULL-heavy data — the interpreter is the oracle.
"""

import random

import pytest

from repro.core import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
    slicing_selectivity,
)
from repro.relational import (
    BagDatabase,
    BagRelation,
    Database,
    Relation,
    Schema,
    evaluate_query,
    evaluate_query_bag,
    evaluate_query_bag_interpreted,
    evaluate_query_interpreted,
    use_backend,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.exec import (
    compile_expr,
    compile_plan,
    compile_predicate,
    compile_row,
    get_default_backend,
    set_default_backend,
    split_equijoin_condition,
)
from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    EvaluationError,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
    Var,
    and_,
    col,
    eq,
    evaluate,
    ge,
    gt,
    le,
    lit,
    lt,
)
from repro.relational.history import History
from repro.relational.schema import SchemaError
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

# ---------------------------------------------------------------------------
# random generators (seeded — reproducible without hypothesis)
# ---------------------------------------------------------------------------

ATTRS = ("a", "b", "c", "d")
SCHEMA = Schema.of(*ATTRS)


def random_value(rng, null_pct=0.25):
    roll = rng.random()
    if roll < null_pct:
        return None
    if roll < 0.5:
        return rng.randint(-5, 5)
    if roll < 0.7:
        return round(rng.uniform(-3, 3), 2)
    if roll < 0.85:
        return rng.choice([True, False])
    return rng.choice(["x", "y", "zz"])


def random_numeric(rng, null_pct=0.25):
    if rng.random() < null_pct:
        return None
    return rng.randint(-5, 5)


def random_expr(rng, depth=3, numeric_only=False):
    """A random expression over ATTRS, mixing every node type."""
    if depth == 0 or rng.random() < 0.25:
        if rng.random() < 0.5:
            return Attr(rng.choice(ATTRS))
        return Const(
            random_numeric(rng) if numeric_only else random_value(rng)
        )
    kind = rng.randrange(7)
    if kind == 0:
        return Arith(
            rng.choice(["+", "-", "*", "/"]),
            random_expr(rng, depth - 1, numeric_only=True),
            random_expr(rng, depth - 1, numeric_only=True),
        )
    if kind == 1:
        return Cmp(
            rng.choice(["=", "!=", "<", "<=", ">", ">="]),
            random_expr(rng, depth - 1, numeric_only=True),
            random_expr(rng, depth - 1, numeric_only=True),
        )
    if kind == 2:
        return Logic(
            rng.choice(["and", "or"]),
            random_condition(rng, depth - 1),
            random_condition(rng, depth - 1),
        )
    if kind == 3:
        return Not(random_condition(rng, depth - 1))
    if kind == 4:
        return IsNull(random_expr(rng, depth - 1))
    if kind == 5:
        return If(
            random_condition(rng, depth - 1),
            random_expr(rng, depth - 1, numeric_only=numeric_only),
            random_expr(rng, depth - 1, numeric_only=numeric_only),
        )
    return random_expr(rng, depth - 1, numeric_only=numeric_only)


def random_condition(rng, depth=2):
    kind = rng.randrange(4)
    if depth == 0 or kind == 0:
        return Cmp(
            rng.choice(["=", "!=", "<", "<=", ">", ">="]),
            Attr(rng.choice(ATTRS)),
            Const(random_numeric(rng)),
        )
    if kind == 1:
        return Logic(
            rng.choice(["and", "or"]),
            random_condition(rng, depth - 1),
            random_condition(rng, depth - 1),
        )
    if kind == 2:
        return Not(random_condition(rng, depth - 1))
    return IsNull(Attr(rng.choice(ATTRS)))


def random_numeric_row(rng, arity=len(ATTRS)):
    return tuple(random_numeric(rng) for _ in range(arity))


def both_outcomes(fn_a, fn_b):
    """Run two callables; assert identical value or identical error type."""
    try:
        a = fn_a()
        a_err = None
    except (EvaluationError, ZeroDivisionError, TypeError) as exc:
        a, a_err = None, type(exc)
    try:
        b = fn_b()
        b_err = None
    except (EvaluationError, ZeroDivisionError, TypeError) as exc:
        b, b_err = None, type(exc)
    assert a_err == b_err, (a_err, b_err)
    if a_err is None:
        assert a == b and type(a) == type(b), (a, b)


# ---------------------------------------------------------------------------
# expression-level differential
# ---------------------------------------------------------------------------

class TestCompiledExpressions:
    def test_random_trees_match_interpreter(self):
        rng = random.Random(1234)
        for trial in range(300):
            expr = random_expr(rng)
            fn = compile_expr(expr, SCHEMA)
            for _ in range(5):
                row = tuple(random_value(rng) for _ in ATTRS)
                both_outcomes(
                    lambda: evaluate(expr, SCHEMA.as_dict(row)),
                    lambda: fn(row),
                )

    def test_numeric_trees_match_interpreter(self):
        rng = random.Random(99)
        for trial in range(300):
            expr = random_expr(rng, depth=4, numeric_only=True)
            fn = compile_expr(expr, SCHEMA)
            for _ in range(5):
                row = random_numeric_row(rng)
                both_outcomes(
                    lambda: evaluate(expr, SCHEMA.as_dict(row)),
                    lambda: fn(row),
                )

    def test_null_propagation_and_division_by_zero(self):
        fn = compile_expr((col("a") + 1) / col("b"), SCHEMA)
        assert fn((None, 2, 0, 0)) is None
        assert fn((1, 0, 0, 0)) is None  # division by zero -> NULL
        assert fn((1, None, 0, 0)) is None
        assert fn((3, 2, 0, 0)) == 2.0

    def test_null_comparison_is_false(self):
        fn = compile_expr(lt(col("a"), col("b")), SCHEMA)
        assert fn((None, 5, 0, 0)) is False
        assert fn((1, None, 0, 0)) is False
        assert fn((1, 5, 0, 0)) is True

    def test_incomparable_values_raise_evaluation_error(self):
        fn = compile_expr(lt(col("a"), col("b")), SCHEMA)
        with pytest.raises(EvaluationError):
            fn((1, "x", 0, 0))

    @pytest.mark.parametrize(
        "tricky", ["O'Brien", 'say "hi"', "back\\slash", "new\nline", "{x!r}"]
    )
    def test_tricky_string_constants_compile(self, tricky):
        """Quotes/escapes/braces in string constants must survive
        codegen (regression: reprs embedded in a generated f-string)."""
        fn = compile_expr(eq(col("d"), lit(tricky)), SCHEMA)
        assert fn((0, 0, 0, tricky)) is True
        assert fn((0, 0, 0, "other")) is False
        with pytest.raises(EvaluationError, match="cannot compare"):
            compile_expr(lt(col("a"), lit(tricky)), SCHEMA)((1, 0, 0, 0))

    def test_unbound_reference_raises_lazily(self):
        expr = If(ge(col("a"), 0), lit(1), Attr("missing"))
        fn = compile_expr(expr, SCHEMA)
        assert fn((5, 0, 0, 0)) == 1  # dead branch never reads "missing"
        with pytest.raises(EvaluationError):
            fn((-5, 0, 0, 0))

    def test_short_circuit_matches_interpreter(self):
        # right operand unbound: must only raise when left doesn't decide
        expr_and = Logic("and", eq(col("a"), 1), gt(Var("free"), 0))
        fn = compile_expr(expr_and, SCHEMA)
        assert fn((0, 0, 0, 0)) is False
        with pytest.raises(EvaluationError):
            fn((1, 0, 0, 0))
        expr_or = Logic("or", eq(col("a"), 1), gt(Var("free"), 0))
        fn = compile_expr(expr_or, SCHEMA)
        assert fn((1, 0, 0, 0)) is True
        with pytest.raises(EvaluationError):
            fn((0, 0, 0, 0))

    def test_compile_row_single_and_empty(self):
        row_fn = compile_row((col("b"),), SCHEMA)
        assert row_fn((1, 2, 3, 4)) == (2,)
        assert compile_row((), SCHEMA)((1, 2, 3, 4)) == ()

    def test_predicate_returns_bool(self):
        pred = compile_predicate(col("a"), SCHEMA)
        assert pred((3, 0, 0, 0)) is True
        assert pred((0, 0, 0, 0)) is False

    def test_compiled_closures_are_cached(self):
        expr = gt(col("a") * 2, col("b"))
        assert compile_expr(expr, SCHEMA) is compile_expr(expr, SCHEMA)


# ---------------------------------------------------------------------------
# plan-level differential (set and bag)
# ---------------------------------------------------------------------------

def random_database(rng, rows=12, null_pct=0.25):
    def rel(arity_schema):
        return Relation.from_rows(
            arity_schema,
            [
                tuple(random_numeric(rng, null_pct) for _ in arity_schema)
                for _ in range(rows)
            ],
        )

    return Database(
        {
            "R": rel(Schema.of("a", "b", "c", "d")),
            "S": rel(Schema.of("a", "b", "c", "d")),
            "T": rel(Schema.of("e", "f")),
        }
    )


def random_plan(rng, depth=3):
    """A random operator tree over R/S (same schema) and T."""
    if depth == 0 or rng.random() < 0.3:
        return RelScan(rng.choice(["R", "S"]))
    kind = rng.randrange(6)
    if kind == 0:
        return Select(random_plan(rng, depth - 1), random_condition(rng))
    if kind == 1:
        child = random_plan(rng, depth - 1)
        outputs = tuple(
            (random_expr(rng, 2, numeric_only=True), name)
            for name in ("a", "b", "c", "d")
        )
        return Project(child, outputs)
    if kind == 2:
        return Union(random_plan(rng, depth - 1), random_plan(rng, depth - 1))
    if kind == 3:
        return Difference(
            random_plan(rng, depth - 1), random_plan(rng, depth - 1)
        )
    if kind == 4:
        # join against T (disjoint attribute names keep concat legal)
        cond = and_(
            eq(col(rng.choice(ATTRS)), col("e")),
            *( [gt(col("f"), 0)] if rng.random() < 0.5 else [] ),
        )
        left = random_plan(rng, depth - 1)
        return Project(
            Join(left, RelScan("T"), cond),
            tuple((col(n), n) for n in ("a", "b", "c", "e")),
        )
    return Union(
        random_plan(rng, depth - 1),
        Singleton(
            Schema.of("a", "b", "c", "d"), random_numeric_row(rng)
        ),
    )


class TestCompiledPlans:
    def test_random_plans_match_interpreter_set_semantics(self):
        rng = random.Random(4321)
        for trial in range(120):
            db = random_database(rng)
            plan = random_plan(rng)
            try:
                expected = evaluate_query_interpreted(plan, db)
                expected_err = None
            except (SchemaError, EvaluationError) as exc:
                expected, expected_err = None, type(exc)
            try:
                actual = evaluate_query(plan, db, backend="compiled")
                actual_err = None
            except (SchemaError, EvaluationError) as exc:
                actual, actual_err = None, type(exc)
            assert actual_err == expected_err, (trial, actual_err, expected_err)
            if expected_err is None:
                assert actual.schema.attributes == expected.schema.attributes
                assert actual.tuples == expected.tuples, trial

    def test_random_plans_match_interpreter_bag_semantics(self):
        rng = random.Random(8765)
        for trial in range(120):
            db = BagDatabase.from_set_database(random_database(rng, rows=8))
            plan = random_plan(rng)
            try:
                expected = evaluate_query_bag_interpreted(plan, db)
                expected_err = None
            except (SchemaError, EvaluationError) as exc:
                expected, expected_err = None, type(exc)
            try:
                actual = evaluate_query_bag(plan, db, backend="compiled")
                actual_err = None
            except (SchemaError, EvaluationError) as exc:
                actual, actual_err = None, type(exc)
            assert actual_err == expected_err, (trial, actual_err, expected_err)
            if expected_err is None:
                assert dict(actual.multiplicities) == dict(
                    expected.multiplicities
                ), trial

    def test_bag_projection_preserves_multiplicity(self):
        db = BagDatabase(
            {
                "R": BagRelation.from_rows(
                    Schema.of("a", "b"), [(1, 1), (1, 2), (2, 2)]
                )
            }
        )
        plan = Project(RelScan("R"), ((col("b"), "b"),))
        compiled = evaluate_query_bag(plan, db, backend="compiled")
        interpreted = evaluate_query_bag_interpreted(plan, db)
        assert dict(compiled.multiplicities) == {(1,): 1, (2,): 2}
        assert dict(compiled.multiplicities) == dict(
            interpreted.multiplicities
        )


# ---------------------------------------------------------------------------
# hash join fast path
# ---------------------------------------------------------------------------

class TestHashJoin:
    def make_db(self):
        return Database(
            {
                "L": Relation.from_rows(
                    Schema.of("a", "b"),
                    [(1, 10), (2, 20), (None, 30), (True, 40), (2, 50)],
                ),
                "R2": Relation.from_rows(
                    Schema.of("c", "d"),
                    [(1, "x"), (2, "y"), (None, "z"), (1.0, "w")],
                ),
            }
        )

    def schemas(self, db):
        return {name: db.schema_of(name) for name in db.relations}

    def test_equijoin_uses_hash_path(self):
        db = self.make_db()
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        compiled = compile_plan(plan, self.schemas(db))
        assert compiled.uses_hash_join
        assert compiled.execute(db).tuples == evaluate_query_interpreted(
            plan, db
        ).tuples

    def test_null_keys_never_match(self):
        db = self.make_db()
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        rows = evaluate_query(plan, db, backend="compiled").tuples
        assert all(row[0] is not None and row[2] is not None for row in rows)

    def test_nan_keys_never_match(self):
        """nan == nan is False, so the same NaN object on both sides
        must not join (regression: dict probes take an identity fast
        path the interpreter's == does not)."""
        nan = float("nan")
        db = Database(
            {
                "L": Relation.from_rows(Schema.of("a", "b"), [(nan, 1), (2.0, 2)]),
                "R2": Relation.from_rows(Schema.of("c", "d"), [(nan, 10), (2.0, 20)]),
            }
        )
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        compiled = evaluate_query(plan, db, backend="compiled").tuples
        interpreted = evaluate_query_interpreted(plan, db).tuples
        assert compiled == interpreted == frozenset({(2.0, 2, 2.0, 20)})

    def test_bool_int_float_key_coercion_matches_interpreter(self):
        # SQL-ish equality: True == 1 == 1.0; dict hashing agrees.
        db = self.make_db()
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        compiled = evaluate_query(plan, db, backend="compiled").tuples
        interpreted = evaluate_query_interpreted(plan, db).tuples
        assert compiled == interpreted
        assert (True, 40, 1, "x") in compiled  # bool joins int

    def test_residual_condition_applies(self):
        db = self.make_db()
        plan = Join(
            RelScan("L"),
            RelScan("R2"),
            and_(eq(col("a"), col("c")), gt(col("b"), 15)),
        )
        compiled = compile_plan(plan, self.schemas(db))
        assert compiled.uses_hash_join
        assert compiled.execute(db).tuples == evaluate_query_interpreted(
            plan, db
        ).tuples

    def test_non_equi_join_falls_back_to_nested_loop(self):
        db = self.make_db()
        plan = Join(RelScan("L"), RelScan("R2"), lt(col("a"), col("c")))
        compiled = compile_plan(plan, self.schemas(db))
        assert not compiled.uses_hash_join
        assert compiled.execute(db).tuples == evaluate_query_interpreted(
            plan, db
        ).tuples

    def test_cross_join_matches(self):
        db = self.make_db()
        plan = Join(RelScan("L"), RelScan("R2"), TRUE)
        assert (
            evaluate_query(plan, db, backend="compiled").tuples
            == evaluate_query_interpreted(plan, db).tuples
        )

    def test_computed_key_expressions(self):
        db = self.make_db()
        plan = Join(
            RelScan("L"), RelScan("R2"), eq(col("a") + 1, col("c") + 1)
        )
        compiled = compile_plan(plan, self.schemas(db))
        assert compiled.uses_hash_join
        assert compiled.execute(db).tuples == evaluate_query_interpreted(
            plan, db
        ).tuples

    def test_split_equijoin_condition(self):
        left, right = Schema.of("a", "b"), Schema.of("c", "d")
        lk, rk, residual = split_equijoin_condition(
            and_(eq(col("c"), col("a")), gt(col("b"), col("d"))), left, right
        )
        assert lk == (col("a"),) and rk == (col("c"),)
        assert residual == gt(col("b"), col("d"))
        lk, rk, residual = split_equijoin_condition(
            lt(col("a"), col("c")), left, right
        )
        assert lk == () and residual == lt(col("a"), col("c"))

    def test_residual_errors_only_on_matching_pairs(self):
        """Documented divergence (DESIGN.md): the interpreter evaluates
        the full condition on every pair and raises on ill-typed
        residuals; the hash join never visits non-matching pairs, so it
        succeeds.  Results agree whenever neither backend raises."""
        db = Database(
            {
                "L": Relation.from_rows(Schema.of("a"), [(1,), (2,)]),
                "R2": Relation.from_rows(Schema.of("c"), [("x",), (2,)]),
            }
        )
        # Residual 'c < a+1' is ill-typed for the ("x",) row.  It comes
        # FIRST so the interpreter's left-to-right short-circuit reaches
        # it on every pair; the hash join still hoists the equality into
        # the key and only evaluates the residual on matching pairs.
        plan = Join(
            RelScan("L"),
            RelScan("R2"),
            and_(lt(col("c"), col("a") + 1), eq(col("a"), col("c"))),
        )
        with pytest.raises(EvaluationError):
            evaluate_query_interpreted(plan, db)
        compiled = evaluate_query(plan, db, backend="compiled")
        assert compiled.tuples == frozenset({(2, 2)})

    def test_free_variables_stay_in_residual(self):
        left, right = Schema.of("a"), Schema.of("c")
        lk, rk, residual = split_equijoin_condition(
            eq(col("a"), Var("v")), left, right
        )
        assert lk == ()
        assert residual == eq(col("a"), Var("v"))


# ---------------------------------------------------------------------------
# plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_same_plan_and_schema_hits_cache(self):
        db = Database(
            {"R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)])}
        )
        schemas = {"R": db.schema_of("R")}
        plan = Select(RelScan("R"), gt(col("a"), 0))
        assert compile_plan(plan, schemas) is compile_plan(plan, schemas)

    def test_schema_change_misses_cache(self):
        plan = Select(RelScan("R"), gt(col("a"), 0))
        first = compile_plan(plan, {"R": Schema.of("a", "b")})
        second = compile_plan(plan, {"R": Schema.of("x", "a")})
        assert first is not second
        # attribute position changed: the compiled predicate must follow
        assert first.execute(
            Database({"R": Relation.from_rows(Schema.of("a", "b"), [(1, -5)])})
        ).tuples == frozenset({(1, -5)})
        assert second.execute(
            Database({"R": Relation.from_rows(Schema.of("x", "a"), [(1, -5)])})
        ).tuples == frozenset()

    def test_compiled_plan_reusable_across_databases(self):
        schema = Schema.of("a", "b")
        plan = Select(RelScan("R"), gt(col("a"), 0))
        compiled = compile_plan(plan, {"R": schema})
        db1 = Database({"R": Relation.from_rows(schema, [(1, 2), (-1, 3)])})
        db2 = Database({"R": Relation.from_rows(schema, [(5, 0)])})
        assert compiled.execute(db1).tuples == frozenset({(1, 2)})
        assert compiled.execute(db2).tuples == frozenset({(5, 0)})


# ---------------------------------------------------------------------------
# union / difference schema-name validation (satellite)
# ---------------------------------------------------------------------------

class TestUnionNameValidation:
    def make_db(self):
        return Database(
            {
                "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                "S": Relation.from_rows(Schema.of("x", "y"), [(3, 4)]),
                "A3": Relation.from_rows(Schema.of("p", "q", "r"), [(1, 2, 3)]),
            }
        )

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    @pytest.mark.parametrize("op_cls", [Union, Difference])
    def test_name_mismatch_rejected(self, backend, op_cls):
        db = self.make_db()
        plan = op_cls(RelScan("R"), RelScan("S"))
        with pytest.raises(SchemaError, match="attribute-name mismatch"):
            evaluate_query(plan, db, backend=backend)

    @pytest.mark.parametrize("backend", ["compiled", "interpreted"])
    @pytest.mark.parametrize("op_cls", [Union, Difference])
    def test_arity_mismatch_still_rejected(self, backend, op_cls):
        db = self.make_db()
        plan = op_cls(RelScan("R"), RelScan("A3"))
        with pytest.raises(SchemaError, match="arity mismatch"):
            evaluate_query(plan, db, backend=backend)

    def test_bag_union_all_and_monus_reject_names(self):
        left = BagRelation.from_rows(Schema.of("a", "b"), [(1, 2)])
        right = BagRelation.from_rows(Schema.of("x", "y"), [(1, 2)])
        with pytest.raises(SchemaError, match="attribute-name mismatch"):
            left.union_all(right)
        with pytest.raises(SchemaError, match="attribute-name mismatch"):
            left.monus(right)

    def test_insert_select_stays_positional(self):
        """INSERT ... SELECT relabels the query result (SQL semantics):
        differently-named source columns are not a union mismatch."""
        db = self.make_db()
        stmt = InsertQuery("R", RelScan("S"))
        assert (3, 4) in stmt.apply(db)["R"].tuples
        bag_db = BagDatabase.from_set_database(db)
        from repro.relational import apply_statement_bag

        assert (3, 4) in apply_statement_bag(stmt, bag_db)["R"].multiplicities

    def test_insert_select_reenactment_arity_mismatch_raises(self):
        """A wider/narrower source query must raise the same arity error
        the direct apply paths raise — not silently truncate columns."""
        from repro.core import reenactment_queries

        db = self.make_db()
        history = History.of(InsertQuery("R", RelScan("A3")))  # arity 3 vs 2
        schemas = {name: db.schema_of(name) for name in db.relations}
        with pytest.raises(SchemaError, match="arity 3 does not match"):
            reenactment_queries(history, schemas)

    def test_insert_select_reenactment_relabels(self):
        """Reenactment of a positional INSERT ... SELECT must relabel
        the query to the target schema — the name check must not reject
        histories that apply cleanly (regression)."""
        from repro.core import reenactment_queries

        db = self.make_db()
        history = History.of(
            UpdateStatement("R", {"b": col("b") + 1}, ge(col("a"), 0)),
            InsertQuery("R", RelScan("S")),  # S has names (x, y)
        )
        schemas = {name: db.schema_of(name) for name in db.relations}
        queries = reenactment_queries(history, schemas)
        expected = history.execute(db)["R"]
        for backend in ("compiled", "interpreted"):
            reenacted = evaluate_query(queries["R"], db, backend=backend)
            assert reenacted.tuples == expected.tuples, backend
        # end-to-end: a modification over such a history, every method
        query = HistoricalWhatIfQuery(
            history,
            db,
            (
                Replace(
                    1,
                    UpdateStatement("R", {"b": col("b") + 2}, ge(col("a"), 0)),
                ),
            ),
        )
        reference = None
        for backend in ("interpreted", "compiled"):
            engine = Mahif(MahifConfig(backend=backend))
            for method in Method:
                delta = engine.answer(query, method).delta
                if reference is None:
                    reference = delta
                else:
                    assert delta == reference, (backend, method.value)


# ---------------------------------------------------------------------------
# statements through both backends
# ---------------------------------------------------------------------------

class TestCompiledStatements:
    def random_statement(self, rng, schema):
        kind = rng.randrange(3)
        if kind == 0:
            sets = {
                rng.choice(ATTRS): random_expr(rng, 2, numeric_only=True)
            }
            return UpdateStatement("R", sets, random_condition(rng))
        if kind == 1:
            return DeleteStatement("R", random_condition(rng))
        return InsertTuple("R", random_numeric_row(rng))

    def test_history_replay_matches_interpreter(self):
        rng = random.Random(2024)
        schema = Schema.of(*ATTRS)
        for trial in range(40):
            rows = [random_numeric_row(rng) for _ in range(10)]
            db = Database({"R": Relation.from_rows(schema, rows)})
            history = History.of(
                *[self.random_statement(rng, schema) for _ in range(5)]
            )
            with use_backend("compiled"):
                compiled = history.execute(db)
            with use_backend("interpreted"):
                interpreted = history.execute(db)
            assert compiled.same_contents(interpreted), trial

    def test_update_merging_rows_matches(self):
        schema = Schema.of("a", "b")
        db = Database(
            {"R": Relation.from_rows(schema, [(1, 1), (2, 1), (3, 2)])}
        )
        stmt = UpdateStatement("R", {"a": lit(0)}, eq(col("b"), 1))
        with use_backend("compiled"):
            compiled = stmt.apply(db)
        with use_backend("interpreted"):
            interpreted = stmt.apply(db)
        assert compiled["R"].tuples == interpreted["R"].tuples
        assert compiled["R"].tuples == frozenset({(0, 1), (3, 2)})


# ---------------------------------------------------------------------------
# whole-engine differential: all five methods, both backends
# ---------------------------------------------------------------------------

def random_history_and_modification(rng, schema, relation="R"):
    statements = []
    for _ in range(rng.randint(2, 6)):
        kind = rng.random()
        if kind < 0.6:
            statements.append(
                UpdateStatement(
                    relation,
                    {"b": col("b") + rng.randint(-2, 2)},
                    and_(
                        ge(col("a"), rng.randint(-5, 0)),
                        le(col("a"), rng.randint(1, 6)),
                    ),
                )
            )
        elif kind < 0.8:
            statements.append(
                DeleteStatement(relation, ge(col("b"), rng.randint(5, 9)))
            )
        else:
            statements.append(
                InsertTuple(
                    relation,
                    (rng.randint(0, 9), rng.randint(-5, 5), rng.randint(0, 1)),
                )
            )
    history = History.of(*statements)
    position = rng.randint(1, len(statements))
    original = statements[position - 1]
    if isinstance(original, UpdateStatement):
        replacement = UpdateStatement(
            relation,
            {"b": col("b") + rng.randint(-3, 3)},
            original.condition,
        )
    elif isinstance(original, DeleteStatement):
        replacement = DeleteStatement(
            relation, ge(col("b"), rng.randint(3, 10))
        )
    else:
        replacement = InsertTuple(
            relation,
            (rng.randint(0, 9), rng.randint(-5, 5), rng.randint(0, 1)),
        )
    return history, Replace(position, replacement)


class TestEngineDifferential:
    def test_all_methods_agree_across_backends(self):
        """Seeded random HWQs: every Method × both backends must produce
        one identical delta (NULL-heavy value column included)."""
        rng = random.Random(77)
        schema = Schema.of("a", "b", "k")
        for trial in range(12):
            rows = [
                (
                    rng.randint(0, 9),
                    rng.choice([None, rng.randint(-5, 5)]),
                    i,  # immutable key: keeps histories key-preserving
                )
                for i in range(rng.randint(6, 14))
            ]
            db = Database({"R": Relation.from_rows(schema, rows)})
            history, modification = random_history_and_modification(
                rng, schema
            )
            query = HistoricalWhatIfQuery(history, db, (modification,))
            reference = None
            for backend in ("interpreted", "compiled"):
                engine = Mahif(MahifConfig(backend=backend))
                for method in Method:
                    delta = engine.answer(query, method).delta
                    if reference is None:
                        reference = delta
                    else:
                        assert delta == reference, (
                            trial,
                            backend,
                            method.value,
                        )

    def test_workload_differential(self):
        """The benchmark workload generator, both backends, all methods."""
        from repro.workloads import WorkloadSpec, build_workload

        workload = build_workload(
            WorkloadSpec(dataset="taxi", rows=120, updates=6, seed=3)
        )
        reference = None
        for backend in ("interpreted", "compiled"):
            engine = Mahif(MahifConfig(backend=backend))
            for method in Method:
                delta = engine.answer(workload.query, method).delta
                if reference is None:
                    reference = delta
                else:
                    assert delta == reference, (backend, method.value)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            MahifConfig(backend="vectorized")

    def test_default_backend_is_compiled(self):
        assert MahifConfig().backend == "compiled"
        assert get_default_backend() == "compiled"

    def test_use_backend_restores_previous_default(self):
        before = get_default_backend()
        with use_backend("interpreted"):
            assert get_default_backend() == "interpreted"
        assert get_default_backend() == before

    def test_set_default_backend_validates(self):
        with pytest.raises(ValueError):
            set_default_backend("postgres")


# ---------------------------------------------------------------------------
# data slicing selectivity diagnostic
# ---------------------------------------------------------------------------

class TestSlicingSelectivity:
    def test_selectivity_counts_match_backends(self):
        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("a", "b"),
                    [(i, i * 10) for i in range(10)],
                )
            }
        )
        conditions = {"R": ge(col("a"), 6), "missing": TRUE}
        compiled = slicing_selectivity(conditions, db, backend="compiled")
        interpreted = slicing_selectivity(
            conditions, db, backend="interpreted"
        )
        assert compiled == interpreted == {"R": (4, 10)}


# ---------------------------------------------------------------------------
# plan picklability (the batched process-pool path ships plans to workers)
# ---------------------------------------------------------------------------

class TestPlanPickling:
    def test_compiled_plan_roundtrips_by_recompiling(self):
        import pickle

        from repro.relational.exec.plan_compile import compile_plan
        from repro.relational.algebra import Join

        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("a", "b"), [(1, 10), (2, 20), (None, 30)]
                ),
                "S": Relation.from_rows(
                    Schema.of("c", "d"), [(1, 5), (2, 6)]
                ),
            }
        )
        schemas = {name: db.schema_of(name) for name in db.relations}
        plan = compile_plan(
            Join(RelScan("R"), RelScan("S"), eq(col("a"), col("c"))),
            schemas,
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.schema == plan.schema
        assert clone.uses_hash_join == plan.uses_hash_join
        assert clone.execute(db).tuples == plan.execute(db).tuples

    def test_compiled_bag_plan_roundtrips(self):
        import pickle

        from repro.relational import BagDatabase
        from repro.relational.exec.bag_compile import compile_plan_bag

        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("a", "b"), [(1, 10), (2, 20)]
                )
            }
        )
        bag_db = BagDatabase.from_set_database(db)
        plan = compile_plan_bag(
            Select(RelScan("R"), ge(col("a"), 1)),
            {"R": db.schema_of("R")},
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert dict(clone.execute(bag_db).multiplicities) == dict(
            plan.execute(bag_db).multiplicities
        )
