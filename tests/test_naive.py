"""Naive algorithm tests (Algorithm 1)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.delta import DatabaseDelta
from repro.core.hwq import HistoricalWhatIfQuery, Replace
from repro.core.naive import naive_what_if
from repro.relational.expressions import col, ge, lit
from repro.relational.statements import UpdateStatement

SCHEMA = Schema.of("k", "v")


def make_query(rows, history_statements, modification):
    db = Database({"R": Relation.from_rows(SCHEMA, rows)})
    history = History(tuple(history_statements))
    return HistoricalWhatIfQuery(history, db, (modification,)), db, history


class TestNaive:
    def test_matches_direct_delta(self):
        query, db, history = make_query(
            [(1, 10), (2, 60)],
            [UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 50))],
            Replace(1, UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 5))),
        )
        result = naive_what_if(query)
        modified = query.aligned().modified.execute(db)
        current = history.execute(db)
        assert result.delta == DatabaseDelta.between(current, modified)

    def test_phase_timings_populated(self):
        query, _, _ = make_query(
            [(1, 10)],
            [UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 5))],
            Replace(1, UpdateStatement("R", {"v": lit(1)}, ge(col("v"), 5))),
        )
        result = naive_what_if(query)
        assert result.creation_seconds >= 0
        assert result.execution_seconds >= 0
        assert result.delta_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.creation_seconds
            + result.execution_seconds
            + result.delta_seconds
        )

    def test_prefix_trimming_uses_time_travel(self):
        """A modification late in the history replays only the suffix,
        starting from the version before it (Section 4's WLOG)."""
        statements = [
            UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 0)),
            UpdateStatement("R", {"v": col("v") * 2}, ge(col("v"), 50)),
        ]
        query, db, history = make_query(
            [(1, 10), (2, 60)],
            statements,
            Replace(2, UpdateStatement("R", {"v": col("v") * 3},
                                       ge(col("v"), 50))),
        )
        result = naive_what_if(query)
        # direct computation for cross-check
        current = history.execute(db)
        modified = query.aligned().modified.execute(db)
        assert result.delta == DatabaseDelta.between(current, modified)
        assert len(result.delta) == 2  # tuple 2 differs (122 vs 183)

    def test_accepts_precomputed_current_state(self):
        query, db, history = make_query(
            [(1, 10), (2, 60)],
            [UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 50))],
            Replace(1, UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 5))),
        )
        current = history.execute(db)
        result = naive_what_if(query, current_state=current)
        assert not result.delta.is_empty()

    def test_empty_delta_when_modification_is_equivalent(self):
        same = UpdateStatement("R", {"v": lit(0)}, ge(col("v"), 50))
        # replace with a syntactically different but equivalent condition
        equivalent = UpdateStatement(
            "R", {"v": lit(0)}, ge(col("v") + 0, 50)
        )
        query, _, _ = make_query([(1, 10), (2, 60)], [same],
                                 Replace(1, equivalent))
        assert naive_what_if(query).delta.is_empty()
