"""Unit tests for the columnar data layer and the ``vector`` backend.

The four-way differential suite (``test_sql_backend_differential.py``)
is the correctness workhorse; this file pins the columnar
representation itself (type sniffing, NULL bitmaps, caching, the tuple
view), the exactness-preserving kernel fallbacks, statements, and the
pure-Python mode that runs when NumPy is unavailable or disabled via
``MAHIF_VECTOR_NUMPY=0``.
"""

import math

import pytest

from repro.relational import (
    BagDatabase,
    BagRelation,
    Database,
    Relation,
    Schema,
    evaluate_query,
    evaluate_query_bag,
    evaluate_query_bag_interpreted,
    evaluate_query_interpreted,
    use_backend,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.columnar import (
    ColumnarTable,
    bulk_shard_indices,
    column_from_values,
    column_values,
    columnar_cache_info,
    columnar_of_relation,
    numpy_active,
    ordered_indices_by_column,
    set_numpy_enabled,
)
from repro.relational.expressions import (
    Arith,
    Attr,
    Const,
    EvaluationError,
    If,
    IsNull,
    Var,
    and_,
    col,
    eq,
    ge,
    gt,
    lit,
    lt,
)
from repro.relational.partition import stable_shard_of
from repro.relational.statements import DeleteStatement, UpdateStatement

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the CI image bundles numpy
    HAVE_NUMPY = False


@pytest.fixture
def no_numpy():
    """Force the pure-Python column fallback for one test."""
    previous = set_numpy_enabled(False)
    try:
        yield
    finally:
        set_numpy_enabled(previous)


def _db():
    return Database(
        {
            "R": Relation.from_rows(
                Schema.of("a", "b"),
                [(1, 10), (2, None), (3, 30), (None, 40)],
            ),
            "T": Relation.from_rows(
                Schema.of("e", "f"), [(1, "x"), (3, "y"), (5, "z")]
            ),
        }
    )


# ---------------------------------------------------------------------------
# columns: sniffing, NULL bitmaps, the tuple view
# ---------------------------------------------------------------------------

class TestColumn:
    def test_int_column_round_trips(self):
        values = [1, -2, 3]
        assert column_values(column_from_values(values)) == values

    def test_null_round_trips(self):
        values = [1, None, 3]
        assert column_values(column_from_values(values)) == values

    def test_bool_not_collapsed_to_int(self):
        values = [True, False, True]
        back = column_values(column_from_values(values))
        assert back == values
        assert all(type(v) is bool for v in back)

    def test_mixed_int_float_stays_object(self):
        # Promoting 1 to 1.0 would change downstream type checks.
        values = [1, 2.5, 3]
        colx = column_from_values(values)
        assert colx.tag == "object"
        back = column_values(colx)
        assert [type(v) for v in back] == [int, float, int]

    def test_nan_forces_object_column(self):
        # hash(nan) is identity-based: the same object must come back.
        nan = float("nan")
        colx = column_from_values([nan, 1.0])
        assert colx.tag == "object"
        assert column_values(colx)[0] is nan

    def test_huge_int_stays_exact(self):
        values = [2**70, -(2**70), 0]
        assert column_values(column_from_values(values)) == values

    def test_string_column_with_nulls(self):
        values = ["a", None, ""]
        assert column_values(column_from_values(values)) == values

    def test_tuple_view_round_trips(self):
        relation = _db()["R"]
        table = ColumnarTable.from_relation(relation)
        assert frozenset(table.tuples()) == relation.tuples
        assert table.to_relation() == relation

    def test_bag_multiplicities_round_trip(self):
        bag = BagRelation(Schema.of("x"), {(1,): 3, (2,): 1})
        table = ColumnarTable.from_bag(bag)
        assert table.to_bag() == bag


class TestColumnarCache:
    def test_cache_hits_by_identity(self):
        relation = _db()["R"]
        first = columnar_of_relation(relation)
        assert columnar_of_relation(relation) is first
        info = columnar_cache_info()
        assert info["relations"] >= 1


# ---------------------------------------------------------------------------
# bulk partition kernels
# ---------------------------------------------------------------------------

class TestPartitionKernels:
    def test_bulk_shard_indices_matches_per_row(self):
        rows = [(i, f"s{i}", i * 0.5, None) for i in range(50)]
        for shards in (1, 2, 7):
            assert bulk_shard_indices(rows, shards) == [
                stable_shard_of(row, shards) for row in rows
            ]

    def test_ordered_indices_match_python_sort(self):
        rows = [(5,), (1,), (3,), (1,), (2,)]
        indices = ordered_indices_by_column(rows, 0)
        if indices is not None:  # numpy path
            assert [rows[i] for i in indices] == sorted(rows)

    def test_ordered_indices_refuse_mixed_columns(self):
        assert ordered_indices_by_column([(1,), (True,)], 0) is None
        assert ordered_indices_by_column([(1,), (None,)], 0) is None
        assert ordered_indices_by_column([(float("nan"),), (1.0,)], 0) is None


# ---------------------------------------------------------------------------
# operator kernels against the interpreter
# ---------------------------------------------------------------------------

class TestVectorOperators:
    def check(self, plan, db=None):
        db = db or _db()
        expected = evaluate_query_interpreted(plan, db)
        actual = evaluate_query(plan, db, backend="vector")
        assert actual == expected
        return actual

    def test_select_bitmap(self):
        self.check(Select(RelScan("R"), gt(col("a"), 1)))

    def test_select_null_comparison_is_false(self):
        result = self.check(Select(RelScan("R"), ge(col("b"), 0)))
        assert (2, None) not in result.tuples  # NULL >= 0 is not true

    def test_project_arith_with_nulls(self):
        self.check(
            Project(RelScan("R"), ((Arith("+", col("a"), col("b")), "s"),))
        )

    def test_project_division_by_zero_is_null(self):
        db = Database(
            {"R": Relation.from_rows(Schema.of("a", "b"), [(4, 0), (9, 3)])}
        )
        result = self.check(
            Project(RelScan("R"), ((Arith("/", col("a"), col("b")), "q"),)),
            db,
        )
        assert (None,) in result.tuples

    def test_union_difference(self):
        self.check(Union(RelScan("R"), RelScan("R")))
        self.check(
            Difference(RelScan("R"), Select(RelScan("R"), gt(col("a"), 1)))
        )

    def test_equi_join(self):
        self.check(
            Join(RelScan("R"), RelScan("T"), eq(col("a"), col("e")))
        )

    def test_join_with_residual(self):
        self.check(
            Join(
                RelScan("R"),
                RelScan("T"),
                and_(eq(col("a"), col("e")), gt(col("b"), 10)),
            )
        )

    def test_nested_loop_join(self):
        self.check(
            Join(RelScan("R"), RelScan("T"), lt(col("a"), col("e")))
        )

    def test_string_join_keys(self):
        db = Database(
            {
                "L": Relation.from_rows(
                    Schema.of("s"), [("a",), ("b",), (None,)]
                ),
                "M": Relation.from_rows(
                    Schema.of("t", "v"), [("a", 1), ("c", 2)]
                ),
            }
        )
        self.check(Join(RelScan("L"), RelScan("M"), eq(col("s"), col("t"))), db)

    def test_cross_type_equality_is_false(self):
        db = Database(
            {
                "L": Relation.from_rows(Schema.of("s"), [("1",), ("x",)]),
                "M": Relation.from_rows(Schema.of("t"), [(1,), (2,)]),
            }
        )
        self.check(Join(RelScan("L"), RelScan("M"), eq(col("s"), col("t"))), db)

    def test_unbound_attr_raises_like_interpreter(self):
        plan = Select(RelScan("R"), gt(col("missing"), 0))
        with pytest.raises(EvaluationError):
            evaluate_query_interpreted(plan, _db())
        with pytest.raises(EvaluationError):
            evaluate_query(plan, _db(), backend="vector")

    def test_if_and_isnull(self):
        self.check(
            Project(
                RelScan("R"),
                ((If(IsNull(col("b")), lit(0), col("b")), "b0"),),
            )
        )

    def test_singleton_and_empty_inputs(self):
        self.check(Union(Select(RelScan("R"), lit(False)), RelScan("R")))
        self.check(
            Union(
                RelScan("R"),
                Singleton(Schema.of("a", "b"), (99, 99)),
            )
        )

    def test_minus_zero_and_exact_floats(self):
        db = Database(
            {
                "F": Relation.from_rows(
                    Schema.of("x"), [(-0.0,), (0.5,), (2.0**53,)]
                ),
                "G": Relation.from_rows(Schema.of("y"), [(0.0,), (0.5,)]),
            }
        )
        plan = Join(RelScan("F"), RelScan("G"), eq(col("x"), col("y")))
        expected = evaluate_query_interpreted(plan, db)
        actual = evaluate_query(plan, db, backend="vector")
        assert actual == expected

    def test_bag_semantics_aggregate(self):
        bag_db = BagDatabase.from_set_database(_db())
        plan = Project(RelScan("R"), ((Const(1), "one"),))
        expected = evaluate_query_bag_interpreted(plan, bag_db)
        actual = evaluate_query_bag(plan, bag_db, backend="vector")
        assert actual == expected
        assert actual.multiplicities[(1,)] == 4

    def test_bag_monus(self):
        bag_db = BagDatabase.from_set_database(_db())
        plan = Difference(
            Union(RelScan("R"), RelScan("R")), RelScan("R")
        )
        expected = evaluate_query_bag_interpreted(plan, bag_db)
        actual = evaluate_query_bag(plan, bag_db, backend="vector")
        assert actual == expected


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------

class TestVectorStatements:
    def test_update_matches_compiled(self):
        db = _db()
        stmt = UpdateStatement(
            "R", {"b": Arith("+", col("b"), lit(1))}, gt(col("a"), 1)
        )
        with use_backend("compiled"):
            expected = stmt.apply(db)
        with use_backend("vector"):
            actual = stmt.apply(db)
        assert actual["R"] == expected["R"]

    def test_delete_matches_compiled(self):
        db = _db()
        stmt = DeleteStatement("R", ge(col("b"), 30))
        with use_backend("compiled"):
            expected = stmt.apply(db)
        with use_backend("vector"):
            actual = stmt.apply(db)
        assert actual["R"] == expected["R"]

    def test_update_error_propagates(self):
        db = _db()
        stmt = UpdateStatement("R", {"b": Var("free")}, gt(col("a"), 0))
        with use_backend("vector"):
            with pytest.raises(EvaluationError):
                stmt.apply(db)


# ---------------------------------------------------------------------------
# pure-Python mode (NumPy gated off)
# ---------------------------------------------------------------------------

class TestPurePythonMode:
    def test_columns_fall_back_to_lists(self, no_numpy):
        assert not numpy_active()
        colx = column_from_values([1, 2, 3])
        assert not colx.is_array

    def test_plans_still_match_interpreter(self, no_numpy):
        db = _db()
        plans = [
            Select(RelScan("R"), gt(col("a"), 1)),
            Join(RelScan("R"), RelScan("T"), eq(col("a"), col("e"))),
            Union(RelScan("R"), RelScan("R")),
            Difference(RelScan("R"), Select(RelScan("R"), gt(col("a"), 1))),
        ]
        for plan in plans:
            assert evaluate_query(plan, db, backend="vector") == (
                evaluate_query_interpreted(plan, db)
            )

    def test_bag_still_matches_interpreter(self, no_numpy):
        bag_db = BagDatabase.from_set_database(_db())
        plan = Union(RelScan("R"), RelScan("R"))
        assert evaluate_query_bag(plan, bag_db, backend="vector") == (
            evaluate_query_bag_interpreted(plan, bag_db)
        )

    def test_ordered_indices_disabled(self, no_numpy):
        assert ordered_indices_by_column([(1,), (2,)], 0) is None


# ---------------------------------------------------------------------------
# NaN identity through the vector pipeline
# ---------------------------------------------------------------------------

class TestNanIdentity:
    def test_nan_rows_survive_select_and_union(self):
        nan = float("nan")
        db = Database(
            {
                "N": Relation.from_rows(
                    Schema.of("x", "k"), [(nan, 1), (2.0, 2)]
                )
            }
        )
        plan = Union(
            Select(RelScan("N"), gt(col("k"), 0)), RelScan("N")
        )
        result = evaluate_query(plan, db, backend="vector")
        expected = evaluate_query_interpreted(plan, db)
        assert sorted(map(repr, result.tuples)) == sorted(
            map(repr, expected.tuples)
        )
        assert any(math.isnan(row[0]) for row in result.tuples)
