"""Interval presolver tests, including agreement with the MILP path."""

import pytest

from repro.relational.parser import parse_expression
from repro.solver import SolverConfig, check_satisfiable
from repro.solver.intervals import IntervalOutcome, interval_presolve


class TestPresolve:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("x >= 1 AND x <= 5", IntervalOutcome.SAT),
            ("x >= 5 AND x <= 1", IntervalOutcome.UNSAT),
            ("x > 3 AND x < 3", IntervalOutcome.UNSAT),
            ("x > 3 AND x <= 3", IntervalOutcome.UNSAT),
            ("x >= 3 AND x <= 3", IntervalOutcome.SAT),
            ("x = 3 AND x != 3", IntervalOutcome.UNSAT),
            ("x != 3 AND x >= 1 AND x <= 5", IntervalOutcome.SAT),
            ("x = 3 AND x = 4", IntervalOutcome.UNSAT),
            ("x >= 1 OR x <= 0", IntervalOutcome.SAT),
            ("(x >= 5 AND x <= 1) OR (y > 2 AND y < 2)", IntervalOutcome.UNSAT),
            ("NOT (x >= 1)", IntervalOutcome.SAT),
            ("NOT (x >= 1 OR x < 1)", IntervalOutcome.UNSAT),
            ("c = 'UK' AND c = 'US'", IntervalOutcome.UNSAT),
            ("c = 'UK' AND c != 'UK'", IntervalOutcome.UNSAT),
            ("c = 'UK' AND c != 'US'", IntervalOutcome.SAT),
            ("5 <= x AND 9 >= x", IntervalOutcome.SAT),   # mirrored atoms
            ("10 < x AND x < 5", IntervalOutcome.UNSAT),
            ("true", IntervalOutcome.SAT),
            ("false", IntervalOutcome.UNSAT),
        ],
    )
    def test_decidable_formulas(self, source, expected):
        assert interval_presolve(parse_expression(source)) is expected

    @pytest.mark.parametrize(
        "source",
        [
            "x + y >= 3 AND x <= 0",          # non-atomic arithmetic
            "a = b AND a != b",               # var-to-var comparison
            "x * 2 = 6",                      # expression atom
            "c = 'UK' AND c >= 5",            # mixed string/numeric facts
        ],
    )
    def test_inconclusive_falls_through(self, source):
        assert (
            interval_presolve(parse_expression(source))
            is IntervalOutcome.UNKNOWN
        )

    def test_point_interval_with_exclusion_order_independent(self):
        # exclusion seen before the bounds must still kill the box
        assert (
            interval_presolve(parse_expression("x != 3 AND x = 3"))
            is IntervalOutcome.UNSAT
        )

    def test_residual_disjunct_does_not_block_unsat_of_others(self):
        # first disjunct provably empty, second residual -> UNKNOWN overall
        formula = parse_expression("(x >= 5 AND x <= 1) OR a + b = 3")
        assert interval_presolve(formula) is IntervalOutcome.UNKNOWN


class TestAgreementWithMILP:
    CASES = [
        "x >= 1 AND x <= 5",
        "x >= 5 AND x <= 1",
        "x = 3 AND x != 3",
        "(x >= 5 AND x <= 1) OR (y >= 0 AND y <= 1)",
        "c = 'UK' AND c = 'US'",
        "NOT (x >= 1 OR x < 1)",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_presolve_matches_milp(self, source):
        formula = parse_expression(source)
        with_presolve = check_satisfiable(
            formula, SolverConfig(use_interval_presolve=True)
        )
        without = check_satisfiable(
            formula, SolverConfig(use_interval_presolve=False)
        )
        assert with_presolve.status == without.status

    def test_presolve_speeds_up_window_checks(self):
        """The presolver must decide a typical dependency-check formula
        (disjoint windows) without compiling a model."""
        formula = parse_expression(
            "(P >= 10 AND P <= 30 OR P >= 10 AND P <= 40)"
            " AND P >= 80 AND P <= 95"
        )
        result = check_satisfiable(formula)
        assert result.is_unsat
        assert result.model_stats is None  # never reached the compiler
