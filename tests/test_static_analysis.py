"""Tests for the static soundness layer (src/repro/static_analysis).

Covers the lattice, the plan verifier (>= 1 accept + 1 reject case per
operator and expression constructor), rewrite certification (the three
PR-2 optimizer bugs must be rejected statically), the engine wiring
behind ``MahifConfig(verify_plans=...)``, and fuzz acceptance: every
plan the differential generators produce must verify clean.
"""

from __future__ import annotations

import random
import time

import pytest

from fuzz_differential import fresh_rng, random_hwq
from test_exec_compiled import random_database, random_plan

from repro.core.engine import Mahif, MahifConfig, Method
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query_interpreted,
    output_schema,
)
from repro.relational.database import Database
from repro.relational.exec.sqlite_sql import MULT_COLUMN
from repro.relational.expressions import (
    FALSE,
    TRUE,
    EvaluationError,
    Arith,
    Attr,
    Cmp,
    Const,
    If,
    IsNull,
    Logic,
    Not,
    Var,
    col,
    eq,
    lit,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema, SchemaError
from repro.static_analysis import (
    BOOL,
    INT,
    NULL_TYPE,
    STR,
    TOP,
    AbstractType,
    PlanVerificationError,
    RewriteUnsoundError,
    abstract_of_type_tag,
    abstract_of_value,
    certify_optimizer_rules,
    check_expr_rewrite,
    check_rewrite,
    infer_expr_type,
    is_condition_like,
    join,
    verify_plan,
    verify_plan_or_raise,
)
from repro.static_analysis.lattice import ordered_comparable

SCHEMAS = {
    "R": Schema.of("a", "b", "c", "d"),
    "S": Schema.of("a", "b", "c", "d"),
    "T": Schema.of("e", "f"),
    "Typed": Schema(("n", "s"), ("int", "str")),
}

#: Environment with *known* kinds, so provable-error rules can fire.
TYPED_ENV = {
    "n": AbstractType(frozenset({"int"}), True),
    "s": AbstractType(frozenset({"str"}), True),
}


def rules_of(violations):
    return {v.rule for v in violations}


def infer(expr, env=None, *, allow_vars=False):
    violations = []
    abstract = infer_expr_type(
        expr, dict(env or TYPED_ENV), violations, "$", allow_vars=allow_vars
    )
    return abstract, violations


# ---------------------------------------------------------------------------
# lattice
# ---------------------------------------------------------------------------

class TestLattice:
    def test_join_is_least_upper_bound(self):
        assert join(INT, STR) == AbstractType(
            frozenset({"int", "str"}), False
        )
        assert join(INT, NULL_TYPE).nullable is True
        assert join(TOP, BOOL) == TOP
        assert INT.leq(join(INT, STR))
        assert not TOP.leq(INT)

    def test_definitely_null(self):
        assert NULL_TYPE.is_definitely_null
        assert not TOP.is_definitely_null
        assert not INT.is_definitely_null

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AbstractType(frozenset({"complex"}), False)

    def test_abstract_of_value(self):
        assert abstract_of_value(None) == NULL_TYPE
        # bool before int: True is an int subclass but must stay bool
        assert abstract_of_value(True).kinds == frozenset({"bool"})
        assert abstract_of_value(3).kinds == frozenset({"int"})
        assert abstract_of_value(2.5).kinds == frozenset({"float"})
        assert abstract_of_value("x") == STR
        assert abstract_of_value(b"raw") is None
        assert abstract_of_value(object()) is None

    def test_maybe_zero_refinement(self):
        assert abstract_of_value(0).maybe_zero
        assert not abstract_of_value(2).maybe_zero
        assert abstract_of_value(0.0).maybe_zero
        assert not abstract_of_value(True).maybe_zero

    def test_type_tags(self):
        assert abstract_of_type_tag("int").kinds == frozenset({"int"})
        assert abstract_of_type_tag("int").nullable  # columns may be NULL
        assert abstract_of_type_tag("any") == TOP
        assert abstract_of_type_tag("no-such-tag") == TOP

    def test_ordered_comparable(self):
        assert ordered_comparable(INT, BOOL)  # numeric group
        assert ordered_comparable(STR, STR)
        assert not ordered_comparable(INT, STR)
        assert ordered_comparable(NULL_TYPE, STR)  # NULL short-circuits
        assert ordered_comparable(TOP, INT)  # may be numeric

    def test_is_condition_like(self):
        assert is_condition_like(eq(col("a"), 1))
        assert is_condition_like(Not(TRUE))
        assert is_condition_like(IsNull(col("a")))
        assert is_condition_like(col("a"))  # may be bool at runtime
        assert is_condition_like(If(TRUE, FALSE, TRUE))
        assert not is_condition_like(Arith("+", col("a"), lit(1)))
        assert not is_condition_like(lit(7))


# ---------------------------------------------------------------------------
# expression typing: >= 1 accept + 1 reject per constructor
# ---------------------------------------------------------------------------

class TestExpressionTyping:
    def test_const_accept_reject(self):
        abstract, violations = infer(Const(3))
        assert violations == [] and abstract.kinds == frozenset({"int"})
        _, violations = infer(Const(b"raw"))
        assert rules_of(violations) == {"bad-constant"}

    def test_attr_accept_reject(self):
        abstract, violations = infer(Attr("n"))
        assert violations == [] and abstract.kinds == frozenset({"int"})
        _, violations = infer(Attr("missing"))
        assert rules_of(violations) == {"unresolved-attribute"}

    def test_var_accept_reject(self):
        _, violations = infer(Var("v"), allow_vars=True)
        assert violations == []
        _, violations = infer(Var("v"), allow_vars=False)
        assert rules_of(violations) == {"unbound-variable"}

    def test_arith_accept_reject(self):
        abstract, violations = infer(Arith("+", Attr("n"), Const(1)))
        assert violations == []
        assert abstract.nullable  # n is a nullable column
        _, violations = infer(Arith("+", Attr("s"), Const(1)))
        assert rules_of(violations) == {"bad-arith-operand"}

    def test_arith_null_propagation(self):
        abstract, violations = infer(Arith("*", Const(None), Const(0)))
        assert violations == [] and abstract == NULL_TYPE

    def test_division_nullability(self):
        # x / 0 evaluates to NULL: nullable unless the denominator is a
        # provably non-zero constant.
        maybe_zero, _ = infer(Arith("/", Const(1), Attr("n")))
        assert maybe_zero.nullable
        non_zero, _ = infer(Arith("/", Const(1), Const(2)))
        assert not non_zero.nullable

    def test_cmp_accept_reject(self):
        abstract, violations = infer(Cmp("<", Attr("n"), Const(1)))
        assert violations == []
        assert abstract == AbstractType(frozenset({"bool"}), False)
        _, violations = infer(Cmp("<", Attr("s"), Const(1)))
        assert rules_of(violations) == {"incomparable"}
        # equality never raises at runtime, any kinds
        _, violations = infer(Cmp("=", Attr("s"), Const(1)))
        assert violations == []

    def test_logic_accept_reject(self):
        good = Logic("and", TRUE, eq(Attr("n"), Const(1)))
        _, violations = infer(good)
        assert violations == []
        bad = Logic("or", TRUE, Cmp("<", Attr("missing"), Const(1)))
        _, violations = infer(bad)
        assert rules_of(violations) == {"unresolved-attribute"}

    def test_not_accept_reject(self):
        _, violations = infer(Not(eq(Attr("n"), Const(1))))
        assert violations == []
        _, violations = infer(Not(Attr("missing")))
        assert rules_of(violations) == {"unresolved-attribute"}

    def test_isnull_accept_reject(self):
        abstract, violations = infer(IsNull(Attr("n")))
        assert violations == [] and abstract.kinds == frozenset({"bool"})
        _, violations = infer(IsNull(Attr("missing")))
        assert rules_of(violations) == {"unresolved-attribute"}

    def test_if_accept_reject(self):
        good = If(eq(Attr("n"), 1), Const(1), Attr("n"))
        abstract, violations = infer(good)
        assert violations == []
        assert abstract.kinds == frozenset({"int"}) and abstract.nullable
        bad_cond = If(Arith("+", Attr("n"), Const(1)), Const(1), Const(2))
        _, violations = infer(bad_cond)
        assert rules_of(violations) == {"non-condition"}

    def test_one_bad_leaf_one_violation(self):
        # a bad leaf types as TOP, so it must not cascade into extra
        # violations on enclosing operators
        _, violations = infer(Arith("+", Attr("missing"), Const(1)))
        assert len(violations) == 1


# ---------------------------------------------------------------------------
# plan verification: >= 1 accept + 1 reject per operator
# ---------------------------------------------------------------------------

class TestPlanVerifier:
    def test_relscan_accept_reject(self):
        assert verify_plan(RelScan("R"), SCHEMAS) == []
        violations = verify_plan(RelScan("nope"), SCHEMAS)
        assert rules_of(violations) == {"unknown-relation"}

    def test_singleton_accept_reject(self):
        good = Singleton(Schema.of("a", "b"), (1, None))
        assert verify_plan(good, SCHEMAS) == []
        bad = Singleton(Schema.of("a"), (b"raw",))
        violations = verify_plan(bad, SCHEMAS)
        assert rules_of(violations) == {"bad-constant"}

    def test_project_accept_reject(self):
        good = Project(
            RelScan("R"), ((col("a"), "a"), (col("b") + 1, "b2"))
        )
        assert verify_plan(good, SCHEMAS) == []
        bad = Project(RelScan("R"), ((Attr("missing"), "x"),))
        violations = verify_plan(bad, SCHEMAS)
        assert rules_of(violations) == {"unresolved-attribute"}

    def test_select_accept_reject(self):
        good = Select(RelScan("R"), eq(col("a"), 1))
        assert verify_plan(good, SCHEMAS) == []
        bad = Select(RelScan("R"), Arith("+", col("a"), lit(1)))
        violations = verify_plan(bad, SCHEMAS)
        assert rules_of(violations) == {"non-condition"}

    def test_union_accept_reject(self):
        good = Union(RelScan("R"), RelScan("S"))
        assert verify_plan(good, SCHEMAS) == []
        arity = Union(RelScan("R"), RelScan("T"))
        assert rules_of(verify_plan(arity, SCHEMAS)) == {"arity-mismatch"}
        renamed = Project(
            RelScan("R"),
            tuple((col(n), n + "_2") for n in ("a", "b", "c", "d")),
        )
        names = Union(RelScan("R"), renamed)
        assert rules_of(verify_plan(names, SCHEMAS)) == {"name-mismatch"}

    def test_difference_accept_reject(self):
        good = Difference(RelScan("R"), RelScan("S"))
        assert verify_plan(good, SCHEMAS) == []
        bad = Difference(RelScan("R"), RelScan("T"))
        assert rules_of(verify_plan(bad, SCHEMAS)) == {"arity-mismatch"}

    def test_join_accept_reject(self):
        good = Join(RelScan("R"), RelScan("T"), eq(col("a"), col("e")))
        assert verify_plan(good, SCHEMAS) == []
        clash = Join(RelScan("R"), RelScan("S"))
        assert rules_of(verify_plan(clash, SCHEMAS)) == {"join-name-clash"}

    def test_typed_columns_reach_conditions(self):
        # provable errors through the env built from schema type tags
        bad = Select(RelScan("Typed"), Cmp("<", col("s"), lit(1)))
        assert rules_of(verify_plan(bad, SCHEMAS)) == {"incomparable"}
        ok = Select(RelScan("Typed"), Cmp("<", col("n"), lit(1)))
        assert verify_plan(ok, SCHEMAS) == []

    def test_violation_paths_point_at_the_node(self):
        plan = Union(
            RelScan("R"), Select(RelScan("S"), Cmp("=", Attr("zz"), TRUE))
        )
        (violation,) = verify_plan(plan, SCHEMAS)
        assert "Union.right" in violation.path
        assert "Select.condition" in violation.path
        assert "zz" in str(violation)

    def test_reserved_attribute_only_under_bag(self):
        plan = Project(RelScan("R"), ((col("a"), MULT_COLUMN),))
        assert verify_plan(plan, SCHEMAS, semantics="set") == []
        violations = verify_plan(plan, SCHEMAS, semantics="bag")
        assert rules_of(violations) == {"reserved-attribute"}

    def test_unknown_semantics_rejected(self):
        with pytest.raises(ValueError):
            verify_plan(RelScan("R"), SCHEMAS, semantics="multiset")

    def test_or_raise_carries_context_and_violations(self):
        with pytest.raises(PlanVerificationError) as excinfo:
            verify_plan_or_raise(
                RelScan("nope"), SCHEMAS, context="unit test"
            )
        assert "unit test" in str(excinfo.value)
        assert excinfo.value.violations[0].rule == "unknown-relation"
        verify_plan_or_raise(RelScan("R"), SCHEMAS)  # clean: no raise


# ---------------------------------------------------------------------------
# rewrite certification — the PR-2 regression suite
# ---------------------------------------------------------------------------

X_EQ_X = Cmp("=", Attr("x"), Attr("x"))
X_TIMES_0 = Arith("*", Attr("x"), Const(0))
NOT_LT = Not(Cmp("<", Attr("x"), Attr("y")))
FLIPPED = Cmp(">=", Attr("x"), Attr("y"))


class TestExprRewriteCheck:
    def test_rejects_x_eq_x_to_true(self):
        with pytest.raises(RewriteUnsoundError, match="unsound"):
            check_expr_rewrite(X_EQ_X, TRUE)

    def test_rejects_x_times_zero_to_zero(self):
        # killed by the lattice alone: nullable -> provably non-NULL
        with pytest.raises(RewriteUnsoundError, match="nullable"):
            check_expr_rewrite(X_TIMES_0, Const(0))

    def test_rejects_not_comparison_flip(self):
        with pytest.raises(RewriteUnsoundError):
            check_expr_rewrite(NOT_LT, FLIPPED)

    def test_rejection_is_memoized(self):
        # the second call must hit the cache and still raise
        for _ in range(2):
            with pytest.raises(RewriteUnsoundError):
                check_expr_rewrite(X_EQ_X, TRUE)

    def test_accepts_sound_rewrites(self):
        check_expr_rewrite(Arith("+", Attr("x"), Const(0)), Attr("x"))
        check_expr_rewrite(Cmp("!=", Attr("x"), Attr("x")), FALSE)
        phi = eq(col("x"), 1)
        check_expr_rewrite(Not(Not(phi)), phi)
        check_expr_rewrite(Arith("/", Const(4), Const(2)), Const(2.0))
        check_expr_rewrite(X_EQ_X, X_EQ_X)  # identity is always sound


class TestPlanRewriteCheck:
    def test_rejects_bad_rewrites_in_plans(self):
        scan = RelScan("R")
        bad_pairs = [
            (Select(scan, X_EQ_X), Select(scan, TRUE)),
            (
                Project(scan, ((X_TIMES_0.left * 0, "a"),)),
                Project(scan, ((Const(0), "a"),)),
            ),
            (Select(scan, NOT_LT), Select(scan, FLIPPED)),
        ]
        schemas = {"R": Schema.of("x", "y")}
        for before, after in bad_pairs:
            with pytest.raises(RewriteUnsoundError):
                check_rewrite(before, after, schemas)

    def test_rejects_schema_change(self):
        before = Project(RelScan("R"), ((col("x"), "x"),))
        after = Project(RelScan("R"), ((col("x"), "renamed"),))
        with pytest.raises(RewriteUnsoundError, match="output schema"):
            check_rewrite(before, after, {"R": Schema.of("x", "y")})

    def test_accepts_identity_and_sound_pushes(self):
        schemas = {"R": Schema.of("x", "y")}
        plan = Select(RelScan("R"), eq(col("x"), 1))
        check_rewrite(plan, plan, schemas)
        # selection reordering is sound
        nested = Select(
            Select(RelScan("R"), eq(col("x"), 1)), eq(col("y"), 2)
        )
        swapped = Select(
            Select(RelScan("R"), eq(col("y"), 2)), eq(col("x"), 1)
        )
        check_rewrite(nested, swapped, schemas)

    def test_certify_optimizer_over_fuzz_corpus(self):
        # the shipping rule catalogue must certify on generated plans
        rng = random.Random(20260808)
        certified = 0
        for _ in range(40):
            plan = random_plan(rng)
            try:
                output_schema(
                    plan, {n: s for n, s in SCHEMAS.items() if n != "Typed"}
                )
            except SchemaError:
                continue  # generator produced an invalid tree: skip
            certify_optimizer_rules(
                plan, {n: s for n, s in SCHEMAS.items() if n != "Typed"}
            )
            certified += 1
        assert certified >= 10


# ---------------------------------------------------------------------------
# fuzz acceptance: generated plans verify clean
# ---------------------------------------------------------------------------

class TestFuzzAcceptance:
    def test_random_plans_verify_clean(self):
        """Soundness: any plan the reference evaluator accepts must pass
        the verifier (no false positives on the fuzz corpus)."""
        rng = random.Random(424242)
        schemas = {n: s for n, s in SCHEMAS.items() if n != "Typed"}
        db = random_database(rng)
        checked = 0
        for _ in range(60):
            plan = random_plan(rng)
            try:
                evaluate_query_interpreted(plan, db)
            except (SchemaError, EvaluationError):
                # runtime rejects it (schema clash / unbound attribute
                # behind a union): the verifier must flag it too
                assert verify_plan(plan, schemas) != []
                continue
            assert verify_plan(plan, schemas) == [], str(plan)
            checked += 1
        assert checked >= 20

    @pytest.mark.parametrize(
        "method", [Method.R, Method.R_DS, Method.R_PS, Method.R_PS_DS]
    )
    def test_engine_verifies_differential_hwqs(self, method):
        """verify_plans=True must accept 100% of the differential
        generator's reenactment plans, and change no answers."""
        for seed in range(6):
            query = random_hwq(fresh_rng(9000 + seed))
            verified = Mahif(MahifConfig(verify_plans=True)).answer(
                query, method
            )
            plain = Mahif(MahifConfig(verify_plans=False)).answer(
                query, method
            )
            assert verified.delta == plain.delta


# ---------------------------------------------------------------------------
# engine wiring
# ---------------------------------------------------------------------------

class TestEngineWiring:
    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("MAHIF_VERIFY_PLANS", "1")
        assert MahifConfig().verify_plans is True
        monkeypatch.setenv("MAHIF_VERIFY_PLANS", "0")
        assert MahifConfig().verify_plans is False
        monkeypatch.delenv("MAHIF_VERIFY_PLANS")
        assert MahifConfig().verify_plans is False
        # an explicit setting wins over the environment
        monkeypatch.setenv("MAHIF_VERIFY_PLANS", "0")
        assert MahifConfig(verify_plans=True).verify_plans is True

    def test_engine_rejects_unsound_optimizer(self, monkeypatch):
        """Re-inject an optimizer bug; the engine must refuse the plan."""
        import repro.core.engine as engine_mod

        def broken_optimize(op, config=None):
            return Difference(op, op)  # always-empty: provably unsound

        monkeypatch.setattr(engine_mod, "optimize", broken_optimize)
        query = random_hwq(fresh_rng(31337))
        config = MahifConfig(verify_plans=True)
        with pytest.raises(PlanVerificationError) as excinfo:
            Mahif(config).answer(query, Method.R)
        assert excinfo.value.violations[0].rule == "unsound-rewrite"
        # with verification off the broken plan sails through silently —
        # the rejection above is the layer's whole point
        Mahif(MahifConfig(verify_plans=False)).answer(query, Method.R)

    def test_batch_path_inherits_verification(self, monkeypatch):
        import repro.core.engine as engine_mod

        def broken_optimize(op, config=None):
            return Difference(op, op)

        monkeypatch.setattr(engine_mod, "optimize", broken_optimize)
        query = random_hwq(fresh_rng(777))
        with pytest.raises(PlanVerificationError):
            Mahif(MahifConfig(verify_plans=True)).answer_batch(
                [query], Method.R
            )

    def test_verification_overhead_is_bounded(self):
        """Certification is memoized; repeated answering must not blow
        up.  The bound is deliberately generous (CI machines are noisy);
        the <5% acceptance number is measured by the benchmark smoke."""
        query = random_hwq(fresh_rng(555), rows=20)

        def timed(verify):
            engine = Mahif(MahifConfig(verify_plans=verify))
            start = time.perf_counter()
            for _ in range(5):
                engine.answer(query, Method.R_PS_DS)
            return time.perf_counter() - start

        timed(False)  # warm shared caches (plan compile etc.)
        baseline = timed(False)
        with_verify = timed(True)
        assert with_verify < baseline * 5 + 0.5
