"""Solver substrate tests: MILP model, Figure-13 compiler, branch & bound,
and cross-validation against brute-force enumeration."""

import pytest

from repro.relational.expressions import (
    Attr,
    Const,
    IsNull,
    Var,
    and_,
    col,
    eq,
    ge,
    gt,
    if_,
    le,
    lit,
    lt,
    neq,
    not_,
    or_,
)
from repro.relational.parser import parse_expression
from repro.solver import (
    Feasibility,
    FormulaCompiler,
    MILPModel,
    ModelError,
    SolverConfig,
    UnsupportedExpression,
    check_satisfiable,
    enumerate_satisfying,
    is_satisfiable_bruteforce,
    solve,
)
from repro.solver.branch_bound import solve_branch_bound


class TestMILPModel:
    def test_variable_registration(self):
        model = MILPModel()
        model.add_variable("x")
        model.add_variable("x")  # same signature: fine
        with pytest.raises(ModelError):
            model.add_variable("x", "binary")

    def test_binary_bounds_forced(self):
        model = MILPModel()
        b = model.add_variable("b", "binary", -5, 5)
        assert b.lower == 0.0 and b.upper == 1.0

    def test_bad_kind_and_bounds(self):
        model = MILPModel()
        with pytest.raises(ModelError):
            model.add_variable("x", "integer")
        with pytest.raises(ModelError):
            model.add_variable("y", "continuous", 5, 1)

    def test_constraint_unknown_variable(self):
        model = MILPModel()
        with pytest.raises(ModelError):
            model.add_constraint({"nope": 1.0}, "<=", 0.0)

    def test_bad_sense(self):
        model = MILPModel()
        model.add_variable("x")
        with pytest.raises(ModelError):
            model.add_constraint({"x": 1.0}, "<", 0.0)

    def test_check_assignment(self):
        model = MILPModel()
        model.add_variable("x", "continuous", 0, 10)
        model.add_constraint({"x": 1.0}, ">=", 3.0)
        assert model.check_assignment({"x": 5.0})
        assert not model.check_assignment({"x": 1.0})
        assert not model.check_assignment({})

    def test_stats(self):
        model = MILPModel()
        model.add_binary()
        model.add_continuous()
        model.add_constraint({model.variables[0].name: 1.0}, "=", 1.0)
        assert model.stats() == {
            "variables": 2, "binaries": 1, "constraints": 1,
        }


class TestSolve:
    def test_empty_model_feasible(self):
        assert solve(MILPModel()).status is Feasibility.FEASIBLE

    def test_simple_feasible(self):
        model = MILPModel()
        model.add_variable("x", "continuous", 0, 10)
        model.add_constraint({"x": 1.0}, ">=", 3.0)
        result = solve(model)
        assert result.status is Feasibility.FEASIBLE
        assert result.assignment["x"] >= 3.0 - 1e-6

    def test_simple_infeasible(self):
        model = MILPModel()
        model.add_variable("x", "continuous", 0, 10)
        model.add_constraint({"x": 1.0}, ">=", 20.0)
        assert solve(model).status is Feasibility.INFEASIBLE

    def test_binary_integrality_enforced(self):
        # b1 + b2 = 1 with b1 = b2 is LP-feasible (0.5) but MIP-infeasible
        model = MILPModel()
        b1 = model.add_binary()
        b2 = model.add_binary()
        model.add_constraint({b1.name: 1, b2.name: 1}, "=", 1.0)
        model.add_constraint({b1.name: 1, b2.name: -1}, "=", 0.0)
        assert solve(model).status is Feasibility.INFEASIBLE

    def test_own_branch_and_bound_agrees(self):
        model = MILPModel()
        b1 = model.add_binary()
        b2 = model.add_binary()
        model.add_constraint({b1.name: 1, b2.name: 1}, "=", 1.0)
        model.add_constraint({b1.name: 1, b2.name: -1}, "=", 0.0)
        assert solve_branch_bound(model).status is Feasibility.INFEASIBLE

        feasible = MILPModel()
        b = feasible.add_binary()
        feasible.add_constraint({b.name: 1}, ">=", 1.0)
        result = solve_branch_bound(feasible)
        assert result.status is Feasibility.FEASIBLE
        assert result.assignment[b.name] == 1.0


class TestCompiler:
    def test_nonlinear_product_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_numeric(Attr("a") * Attr("b"))

    def test_constant_product_ok(self):
        compiler = FormulaCompiler()
        form = compiler.compile_numeric(Attr("a") * 3)
        assert form.coefficients == {"attr::a": 3.0}

    def test_division_by_variable_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_numeric(Attr("a") / Attr("b"))

    def test_division_by_zero_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_numeric(Attr("a") / 0)

    def test_isnull_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_boolean(IsNull(Attr("a")))

    def test_null_constant_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_numeric(Const(None))

    def test_bare_reference_as_condition_rejected(self):
        compiler = FormulaCompiler()
        with pytest.raises(UnsupportedExpression):
            compiler.compile_boolean(Attr("a"))

    def test_subexpression_cache(self):
        compiler = FormulaCompiler()
        phi = ge(Attr("a"), 5)
        b1 = compiler.compile_boolean(phi)
        b2 = compiler.compile_boolean(ge(Attr("a"), 5))
        assert b1 == b2

    def test_string_encoder_bijective(self):
        compiler = FormulaCompiler()
        code_uk = compiler.encoder.encode("UK")
        code_us = compiler.encoder.encode("US")
        assert code_uk != code_us
        assert compiler.encoder.encode("UK") == code_uk
        assert compiler.encoder.decode(code_uk) == "UK"
        assert compiler.encoder.decode(999) is None


class TestCheckSatisfiable:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("x >= 1 AND x <= 2", True),
            ("x >= 3 AND x <= 2", False),
            ("x > 2 AND x < 3", True),       # continuous domain
            ("x = 1 OR x = 2", True),
            ("NOT (x = x)", False),
            ("x + y = 10 AND x - y = 4 AND x = 7", True),
            ("x + y = 10 AND x - y = 4 AND x = 8", False),
            ("CASE WHEN x >= 0 THEN 1 ELSE 2 END = 2 AND x >= 0", False),
            ("a < b AND b < a", False),
            ("x / 2 >= 5 AND x <= 9", False),
        ],
    )
    def test_numeric_formulas(self, source, expected):
        result = check_satisfiable(parse_expression(source))
        assert result.is_sat is expected

    def test_witness_satisfies_formula(self):
        from repro.relational.expressions import evaluate

        formula = parse_expression("x >= 3 AND y = x + 2 AND y <= 6")
        result = check_satisfiable(formula)
        assert result.is_sat
        assert evaluate(formula, result.witness)

    def test_trivial_short_circuits(self):
        assert check_satisfiable(parse_expression("true")).is_sat
        assert check_satisfiable(parse_expression("false")).is_unsat
        assert check_satisfiable(parse_expression("1 <= 2")).is_sat

    def test_unsupported_returns_unknown(self):
        formula = parse_expression("a * b = 6 AND a = 2")
        result = check_satisfiable(formula)
        assert result.status is Feasibility.UNKNOWN

    def test_string_categorical(self):
        assert check_satisfiable(
            parse_expression("c = 'UK' AND c = 'US'")
        ).is_unsat
        # disable the presolver to force the MILP path and get a witness
        config = SolverConfig(use_interval_presolve=False)
        result = check_satisfiable(
            parse_expression("c = 'UK' AND p >= 5"), config
        )
        assert result.is_sat
        assert result.witness["c"] == "UK"

    def test_model_stats_reported(self):
        config = SolverConfig(use_interval_presolve=False)
        result = check_satisfiable(
            parse_expression("x >= 1 AND x <= 0"), config
        )
        assert result.model_stats["binaries"] >= 2


class TestBruteForce:
    def test_enumerate(self):
        formula = parse_expression("x >= 2 AND x <= 3")
        found = list(
            enumerate_satisfying(formula, {"x": range(5)})
        )
        assert [f["x"] for f in found] == [2, 3]

    def test_missing_domain_raises(self):
        with pytest.raises(KeyError):
            list(enumerate_satisfying(parse_expression("x = 1"), {}))

    def test_limit(self):
        formula = parse_expression("x >= 0")
        found = list(
            enumerate_satisfying(formula, {"x": range(100)}, limit=3)
        )
        assert len(found) == 3

    @pytest.mark.parametrize(
        "source",
        [
            "x >= 2 AND x <= 3",
            "x = 1 OR y = 2",
            "x + y = 4 AND x >= 3",
            "NOT (x = 0) AND x <= 1 AND x >= 0",
            "x > 1 AND x < 2",   # unsat over integers, sat over reals
            "x >= 5 AND x <= 4",
        ],
    )
    def test_milp_vs_bruteforce_integer_domains(self, source):
        """MILP satisfiability must never be False when brute force over a
        finite integer subdomain finds a witness (MILP domains are a
        superset)."""
        formula = parse_expression(source)
        domains = {name: range(0, 6) for name in ("x", "y")}
        brute = is_satisfiable_bruteforce(formula, domains)
        milp = check_satisfiable(formula)
        if brute:
            assert milp.is_sat
