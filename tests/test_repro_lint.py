"""Tests for tools/repro_lint.py: every rule proven on known-good and
known-bad fixtures, pragma handling, and the whole-tree-clean gate."""

from __future__ import annotations

import importlib.util
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "repro_lint", REPO / "tools" / "repro_lint.py"
)
repro_lint = importlib.util.module_from_spec(_SPEC)
sys.modules.setdefault("repro_lint", repro_lint)
_SPEC.loader.exec_module(repro_lint)

STORE_PATH = "src/repro/store/history_store.py"


def lint(source: str, path: str = "src/repro/some_module.py"):
    return repro_lint.lint_source(textwrap.dedent(source), path)


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# rule: fileops-seam
# ---------------------------------------------------------------------------

class TestFileopsSeam:
    BAD = """
        import os

        def recover(path):
            with open(path, "rb") as fh:
                data = fh.read()
            os.replace(path, path)
            os.fsync(3)
            return data
    """

    def test_known_bad_in_store(self):
        findings = lint(self.BAD, STORE_PATH)
        assert rules_of(findings) == ["fileops-seam"] * 3

    def test_known_good_routed_through_seam(self):
        good = """
            def recover(path, ops):
                with ops.open(path, "rb") as fh:
                    data = fh.read()
                ops.replace(path, path)
                return data
        """
        assert lint(good, STORE_PATH) == []

    def test_scope_is_store_only(self):
        # the same raw calls are fine outside store/
        assert lint(self.BAD, "src/repro/core/engine.py") == []

    def test_faults_py_and_tests_are_exempt(self):
        assert lint(self.BAD, "src/repro/store/faults.py") == []
        assert lint(self.BAD, "tests/store/test_x.py") == []


# ---------------------------------------------------------------------------
# rules: swallow-baseexception / broad-swallow
# ---------------------------------------------------------------------------

class TestSwallows:
    def test_bare_except_is_flagged(self):
        bad = """
            def f():
                try:
                    work()
                except:
                    pass
        """
        assert rules_of(lint(bad)) == ["swallow-baseexception"]

    def test_baseexception_without_reraise_is_flagged(self):
        bad = """
            def f():
                try:
                    work()
                except BaseException as exc:
                    log(exc)
        """
        assert rules_of(lint(bad)) == ["swallow-baseexception"]

    def test_baseexception_with_reraise_is_clean(self):
        good = """
            def f():
                try:
                    work()
                except BaseException:
                    cleanup()
                    raise
        """
        assert lint(good) == []

    def test_broad_swallow_is_flagged(self):
        bad = """
            def f():
                try:
                    work()
                except Exception:
                    fallback()
        """
        assert rules_of(lint(bad)) == ["broad-swallow"]

    def test_binding_the_exception_is_clean(self):
        good = """
            def f():
                try:
                    work()
                except Exception as exc:
                    record(exc)
        """
        assert lint(good) == []

    def test_narrow_types_are_clean(self):
        good = """
            def f():
                try:
                    work()
                except (OSError, ValueError):
                    fallback()
        """
        assert lint(good) == []


# ---------------------------------------------------------------------------
# rule: no-print
# ---------------------------------------------------------------------------

class TestNoPrint:
    BAD = """
        def answer(query):
            print("answering", query)
            return 42
    """

    def test_bare_print_in_library_is_flagged(self):
        findings = lint(self.BAD)
        assert rules_of(findings) == ["no-print"]

    def test_scope_is_src_repro_only(self):
        assert lint(self.BAD, "tools/some_tool.py") == []
        assert lint(self.BAD, "tests/test_x.py") == []
        assert lint(self.BAD, "src/repro/tests/test_x.py") == []

    def test_method_and_attribute_prints_are_not_flagged(self):
        good = """
            def report(console, value):
                console.print(value)          # rich-style object method
                return plan_fingerprint(value)  # name merely contains it
        """
        assert lint(good) == []

    def test_pragma_exempts_user_facing_output(self):
        good = """
            def emit(line):
                # repro-lint: allow[no-print] -- CLI user-facing output
                print(line)
        """
        assert lint(good) == []


# ---------------------------------------------------------------------------
# rule: unlocked-module-state
# ---------------------------------------------------------------------------

class TestUnlockedModuleState:
    def test_unlocked_mutation_is_flagged(self):
        bad = """
            _CACHE = {}

            def put(key, value):
                _CACHE[key] = value
        """
        assert rules_of(lint(bad)) == ["unlocked-module-state"]

    def test_mutation_under_module_lock_is_clean(self):
        good = """
            import threading

            _CACHE = {}
            _LOCK = threading.Lock()

            def put(key, value):
                with _LOCK:
                    _CACHE[key] = value
        """
        assert lint(good) == []

    def test_method_mutations_and_factories_are_seen(self):
        bad = """
            from collections import OrderedDict

            _ENTRIES = OrderedDict()

            def remember(x):
                _ENTRIES.setdefault(x, 0)
        """
        assert rules_of(lint(bad)) == ["unlocked-module-state"]

    def test_module_level_init_is_clean(self):
        # populating at import time (not inside a function) is fine
        good = """
            _TABLE = {}
            _TABLE["x"] = 1
        """
        assert lint(good) == []

    def test_local_shadow_is_clean(self):
        good = """
            def f():
                cache = {}
                cache["x"] = 1
                return cache
        """
        assert lint(good) == []


# ---------------------------------------------------------------------------
# pragmas
# ---------------------------------------------------------------------------

class TestPragmas:
    def test_same_line_pragma_suppresses(self):
        src = """
            def f():
                try:
                    work()
                except Exception:  # repro-lint: allow[broad-swallow] -- degrades safely
                    fallback()
        """
        assert lint(src) == []

    def test_preceding_line_pragma_suppresses(self):
        src = """
            def f():
                try:
                    work()
                # repro-lint: allow[broad-swallow] -- degrades safely
                except Exception:
                    fallback()
        """
        assert lint(src) == []

    def test_pragma_requires_a_reason(self):
        src = """
            def f():
                try:
                    work()
                except Exception:  # repro-lint: allow[broad-swallow]
                    fallback()
        """
        assert rules_of(lint(src)) == ["broad-swallow"]

    def test_pragma_rule_id_must_match(self):
        src = """
            def f():
                try:
                    work()
                except Exception:  # repro-lint: allow[fileops-seam] -- wrong rule
                    fallback()
        """
        assert rules_of(lint(src)) == ["broad-swallow"]

    def test_pragma_two_lines_above_does_not_apply(self):
        src = """
            def f():
                try:
                    work()
                # repro-lint: allow[broad-swallow] -- too far away
                # an interposed comment line breaks adjacency
                except Exception:
                    fallback()
        """
        assert rules_of(lint(src)) == ["broad-swallow"]

    def test_multiple_rules_in_one_pragma(self):
        src = """
            def f():
                try:
                    work()
                except Exception:  # repro-lint: allow[broad-swallow, fileops-seam] -- both
                    fallback()
        """
        assert lint(src) == []


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

class TestDriver:
    def test_syntax_error_is_reported_not_raised(self):
        findings = repro_lint.lint_source("def broken(:", "x.py")
        assert rules_of(findings) == ["syntax-error"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert repro_lint.main([str(clean)]) == 0
        assert "clean" in capsys.readouterr().out
        dirty = tmp_path / "store" / "dirty.py"
        dirty.parent.mkdir()
        dirty.write_text("def f(p):\n    return open(p)\n")
        assert repro_lint.main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "fileops-seam" in out and "1 finding(s)" in out

    def test_list_rules(self, capsys):
        assert repro_lint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in repro_lint.RULES:
            assert rule in out

    def test_whole_tree_is_clean(self):
        """The acceptance gate: zero findings across the shipped tree."""
        findings = repro_lint.lint_paths(
            [REPO / "src", REPO / "tools", REPO / "benchmarks"]
        )
        assert findings == [], "\n".join(str(f) for f in findings)
