"""Unit tests for the relational algebra and its evaluator."""

import pytest

from repro import Database, Relation, Schema
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    base_relations,
    evaluate_query,
    inject_selection,
    operator_count,
    output_schema,
    substitute_scans,
)
from repro.relational.expressions import (
    Attr,
    Const,
    TRUE,
    col,
    eq,
    gt,
    if_,
    ge,
)
from repro.relational.schema import SchemaError


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation.from_rows(Schema.of("a", "b"), [(1, 10), (2, 20), (3, 30)]),
            "S": Relation.from_rows(Schema.of("c"), [(2,), (3,), (4,)]),
        }
    )


class TestEvaluation:
    def test_scan(self, db):
        assert set(evaluate_query(RelScan("R"), db)) == set(db["R"])

    def test_singleton(self, db):
        result = evaluate_query(Singleton(Schema.of("a", "b"), (9, 90)), db)
        assert set(result) == {(9, 90)}

    def test_singleton_arity_check(self):
        with pytest.raises(SchemaError):
            Singleton(Schema.of("a"), (1, 2))

    def test_select(self, db):
        result = evaluate_query(Select(RelScan("R"), gt(col("a"), 1)), db)
        assert set(result) == {(2, 20), (3, 30)}

    def test_project_expressions(self, db):
        query = Project(
            RelScan("R"), ((col("a") + 100, "a"), (col("b"), "b"))
        )
        result = evaluate_query(query, db)
        assert (101, 10) in result

    def test_project_conditional_expression(self, db):
        # the reenactment pattern: if cond then e else A
        query = Project(
            RelScan("R"),
            ((col("a"), "a"), (if_(ge(col("a"), 2), Const(0), col("b")), "b")),
        )
        result = evaluate_query(query, db)
        assert set(result) == {(1, 10), (2, 0), (3, 0)}

    def test_project_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Project(RelScan("R"), ((col("a"), "x"), (col("b"), "x")))

    def test_union_deduplicates(self, db):
        query = Union(RelScan("R"), RelScan("R"))
        assert len(evaluate_query(query, db)) == 3

    def test_union_arity_mismatch(self, db):
        with pytest.raises(SchemaError):
            evaluate_query(Union(RelScan("R"), RelScan("S")), db)

    def test_difference(self, db):
        query = Difference(
            RelScan("R"), Select(RelScan("R"), gt(col("a"), 1))
        )
        assert set(evaluate_query(query, db)) == {(1, 10)}

    def test_join(self, db):
        query = Join(RelScan("R"), RelScan("S"), eq(col("a"), col("c")))
        result = evaluate_query(query, db)
        assert set(result) == {(2, 20, 2), (3, 30, 3)}

    def test_cross_join(self, db):
        query = Join(RelScan("R"), RelScan("S"), TRUE)
        assert len(evaluate_query(query, db)) == 9


class TestSchemaInference:
    def test_scan_schema(self, db):
        schemas = {n: db.schema_of(n) for n in db}
        assert output_schema(RelScan("R"), schemas).attributes == ("a", "b")

    def test_project_schema(self, db):
        schemas = {n: db.schema_of(n) for n in db}
        query = Project(RelScan("R"), ((col("a"), "x"),))
        assert output_schema(query, schemas).attributes == ("x",)

    def test_join_schema(self, db):
        schemas = {n: db.schema_of(n) for n in db}
        query = Join(RelScan("R"), RelScan("S"), TRUE)
        assert output_schema(query, schemas).attributes == ("a", "b", "c")

    def test_unknown_relation(self, db):
        with pytest.raises(SchemaError):
            output_schema(RelScan("Z"), {})


class TestRewrites:
    def test_base_relations(self):
        query = Union(RelScan("R"), Select(RelScan("S"), TRUE))
        assert base_relations(query) == {"R", "S"}

    def test_operator_count(self):
        query = Select(Project(RelScan("R"), ((col("a"), "a"),)), TRUE)
        assert operator_count(query) == 3

    def test_substitute_scans_composes_queries(self, db):
        inner = Select(RelScan("R"), gt(col("a"), 1))
        outer = Project(RelScan("R"), ((col("a"), "a"), (col("b"), "b")))
        composed = substitute_scans(outer, {"R": inner})
        assert operator_count(composed) == 3
        assert len(evaluate_query(composed, db)) == 2

    def test_inject_selection_wraps_scans(self, db):
        query = Project(RelScan("R"), ((col("a"), "a"), (col("b"), "b")))
        injected = inject_selection(query, {"R": gt(col("a"), 2)})
        assert len(evaluate_query(injected, db)) == 1

    def test_inject_selection_skips_true(self, db):
        query = RelScan("R")
        assert inject_selection(query, {"R": TRUE}) == query

    def test_inject_selection_other_relations_untouched(self, db):
        query = RelScan("R")
        assert inject_selection(query, {"S": gt(col("c"), 0)}) == query
