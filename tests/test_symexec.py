"""Symbolic execution tests: Definition 6 and Theorem 3.

Theorem 3 says updates over VC-tables have possible-world semantics:
``Mod(u(D)) = u(Mod(D))``.  We verify it pointwise: for sampled
assignments, instantiating after symbolic execution equals executing the
statement over the instantiated world.
"""

import itertools

import pytest

from repro import Database, History, Relation, Schema
from repro.relational.expressions import (
    Const,
    TRUE,
    Var,
    col,
    eq,
    evaluate,
    ge,
    le,
    lit,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
    no_op,
)
from repro.relational.algebra import RelScan
from repro.symbolic.symexec import (
    SymbolicExecutionError,
    VariableNamer,
    apply_statement,
    execute_history,
    prune_defining_conjuncts,
    run_history_single_tuple,
)
from repro.symbolic.vctable import SymbolicTuple, VCDatabase, VCTable

SCHEMA = Schema.of("P", "F")


def fresh_db():
    return VCDatabase.single_tuple_database({"R": SCHEMA}, prefix="x")


def assignments():
    for p in (10, 50, 60):
        for f in (0, 5, 12):
            yield {"x_R_P": p, "x_R_F": f}


def check_theorem3(statement):
    """Mod(u(D0)) == u(Mod(D0)) over sampled assignments."""
    symbolic = apply_statement(fresh_db(), statement, VariableNamer("t"))
    for assignment in assignments():
        # left side: extend the assignment to the fresh variables by
        # solving the (deterministic) defining equalities
        extended = dict(assignment)
        for conjunct in symbolic.global_conjuncts:
            # conjuncts are Var == expr; the unique extension of Theorem 3
            var = conjunct.left
            extended[var.name] = evaluate(conjunct.right, extended)
        left = symbolic.instantiate(extended)
        # right side: run the statement over the concrete world
        world = fresh_db().instantiate(assignment)
        right = statement.apply(world)
        assert left.same_contents(right), (
            f"worlds differ for {assignment}: "
            f"{set(left['R'])} vs {set(right['R'])}"
        )


class TestDefinition6:
    def test_update_semantics(self):
        check_theorem3(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        )

    def test_update_with_arithmetic(self):
        check_theorem3(
            UpdateStatement("R", {"F": col("F") + 5}, le(col("P"), 50))
        )

    def test_update_multiple_attributes(self):
        check_theorem3(
            UpdateStatement(
                "R", {"F": col("F") + 1, "P": col("P") * 2}, ge(col("F"), 5)
            )
        )

    def test_delete_semantics(self):
        check_theorem3(DeleteStatement("R", ge(col("P"), 50)))

    def test_insert_semantics(self):
        check_theorem3(InsertTuple("R", (99, 9)))

    def test_insert_query_rejected(self):
        with pytest.raises(SymbolicExecutionError):
            apply_statement(
                fresh_db(), InsertQuery("R", RelScan("S")), VariableNamer()
            )

    def test_update_reuses_untouched_attribute_variables(self):
        """The optimization below Definition 6: attributes not updated
        keep their variable."""
        stmt = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        result = apply_statement(fresh_db(), stmt, VariableNamer("t"))
        out = result["R"].tuple_at(0)
        assert out["P"] == Var("x_R_P")  # untouched
        assert out["F"] != Var("x_R_F")  # fresh

    def test_global_condition_size_is_linear(self):
        """n statements over m attributes add at most n*m conjuncts —
        the exponential blow-up avoidance Definition 6 is for."""
        db = fresh_db()
        namer = VariableNamer("t")
        for i in range(10):
            db = apply_statement(
                db,
                UpdateStatement("R", {"F": col("F") + 1}, ge(col("P"), i)),
                namer,
            )
        assert len(db.global_conjuncts) == 10
        assert len(db["R"]) == 1

    def test_delete_conjoins_local_condition(self):
        stmt = DeleteStatement("R", ge(col("P"), 50))
        result = apply_statement(fresh_db(), stmt, VariableNamer("t"))
        local = result["R"].local_condition(0)
        assert evaluate(local, {"x_R_P": 10, "x_R_F": 0}) is True
        assert evaluate(local, {"x_R_P": 60, "x_R_F": 0}) is False


class TestExecuteHistory:
    def test_example6_two_updates(self):
        """Example 6/Figure 10: u1, u2 over the single-tuple instance."""
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
            UpdateStatement("R", {"F": col("F") + 5}, le(col("P"), 100)),
        )
        db = execute_history(fresh_db(), history, prefix="t")
        assert len(db.global_conjuncts) == 2
        # instantiate with P=60, F=3: u1 sets F=0, u2 sets F=5
        assignment = {"x_R_P": 60, "x_R_F": 3}
        for conjunct in db.global_conjuncts:
            assignment[conjunct.left.name] = evaluate(
                conjunct.right, assignment
            )
        world = db.instantiate(assignment)
        assert set(world["R"]) == {(60, 5)}


class TestSingleTupleRun:
    def test_steps_record_every_version(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50)),
            DeleteStatement("R", ge(col("F"), 3)),
        )
        run = run_history_single_tuple(
            history, "R", SCHEMA, SymbolicTuple.fresh(SCHEMA, "in"), "t"
        )
        assert len(run.steps) == 3  # input + one per statement
        assert run.steps[0][0] == run.input_tuple

    def test_statements_on_other_relations_skipped(self):
        history = History.of(
            UpdateStatement("S", {"F": lit(0)}, TRUE),
            UpdateStatement("R", {"F": lit(1)}, TRUE),
        )
        run = run_history_single_tuple(
            history, "R", SCHEMA, SymbolicTuple.fresh(SCHEMA, "in"), "t"
        )
        assert run.steps[1] == run.steps[0]  # S-statement is a no-op for R
        assert len(run.global_conjuncts) == 1

    def test_inserts_rejected(self):
        history = History.of(InsertTuple("R", (1, 2)))
        with pytest.raises(SymbolicExecutionError):
            run_history_single_tuple(
                history, "R", SCHEMA, SymbolicTuple.fresh(SCHEMA, "in"), "t"
            )


class TestConjunctPruning:
    def test_keeps_transitively_needed(self):
        c1 = eq(Var("a"), Var("b") + 1)
        c2 = eq(Var("b"), Var("c") + 1)
        c3 = eq(Var("z"), Const(0))
        kept = prune_defining_conjuncts([c1, c2, c3], {"a"})
        assert c1 in kept and c2 in kept and c3 not in kept

    def test_empty_needed_drops_all(self):
        c1 = eq(Var("a"), Const(1))
        assert prune_defining_conjuncts([c1], set()) == []

    def test_non_defining_conjuncts_dropped(self):
        odd = ge(Var("a"), 0)  # not Var == expr
        assert prune_defining_conjuncts([odd], {"a"}) == []
