"""Unit tests for schemas, relations and databases."""

import pytest

from repro import Database, Relation, Schema
from repro.relational.expressions import eq, col, gt
from repro.relational.schema import SchemaError


class TestSchema:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_types_default_to_any(self):
        schema = Schema.of("a", "b")
        assert schema.types == ("any", "any")

    def test_types_length_must_match(self):
        with pytest.raises(SchemaError):
            Schema(("a", "b"), ("int",))

    def test_index_and_type_lookup(self):
        schema = Schema.of("a", "b", types=["int", "str"])
        assert schema.index_of("b") == 1
        assert schema.type_of("b") == "str"
        with pytest.raises(SchemaError):
            schema.index_of("zzz")

    def test_dict_roundtrip(self):
        schema = Schema.of("a", "b")
        assert schema.as_dict((1, 2)) == {"a": 1, "b": 2}
        assert schema.from_dict({"b": 2, "a": 1}) == (1, 2)

    def test_as_dict_arity_check(self):
        with pytest.raises(SchemaError):
            Schema.of("a").as_dict((1, 2))

    def test_rename_and_concat(self):
        schema = Schema.of("a", "b")
        assert Schema.of("x", "b").attributes == schema.rename(
            {"a": "x"}
        ).attributes
        combined = schema.concat(Schema.of("c"))
        assert combined.attributes == ("a", "b", "c")

    def test_concat_name_clash_raises(self):
        with pytest.raises(SchemaError):
            Schema.of("a").concat(Schema.of("a"))

    def test_iteration_and_contains(self):
        schema = Schema.of("a", "b")
        assert list(schema) == ["a", "b"]
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2


class TestRelation:
    def make(self):
        return Relation.from_rows(Schema.of("k", "v"), [(1, 10), (2, 20)])

    def test_set_semantics_deduplicates(self):
        relation = Relation.from_rows(Schema.of("a"), [(1,), (1,), (2,)])
        assert len(relation) == 2

    def test_arity_check(self):
        with pytest.raises(SchemaError):
            Relation.from_rows(Schema.of("a"), [(1, 2)])

    def test_union_difference_intersection(self):
        r = self.make()
        s = Relation.from_rows(Schema.of("k", "v"), [(2, 20), (3, 30)])
        assert len(r.union(s)) == 3
        assert set(r.difference(s)) == {(1, 10)}
        assert set(r.intersection(s)) == {(2, 20)}
        assert set(r.symmetric_difference(s)) == {(1, 10), (3, 30)}

    def test_incompatible_arity_raises(self):
        with pytest.raises(SchemaError):
            self.make().union(Relation.from_rows(Schema.of("a"), [(1,)]))

    def test_filter(self):
        filtered = self.make().filter(gt(col("v"), 15))
        assert set(filtered) == {(2, 20)}

    def test_insert(self):
        grown = self.make().insert((3, 30))
        assert len(grown) == 3
        with pytest.raises(SchemaError):
            self.make().insert((1,))

    def test_immutability(self):
        r = self.make()
        r.insert((3, 30))
        assert len(r) == 2

    def test_from_dicts(self):
        relation = Relation.from_dicts(
            Schema.of("a", "b"), [{"a": 1, "b": 2}]
        )
        assert set(relation) == {(1, 2)}

    def test_rows_as_dicts(self):
        rows = sorted(self.make().rows_as_dicts(), key=lambda r: r["k"])
        assert rows[0] == {"k": 1, "v": 10}

    def test_sorted_rows_handles_mixed_types(self):
        # NB: True == 1 in Python, so use 2 to keep four distinct rows
        relation = Relation.from_rows(
            Schema.of("x"), [(None,), (2,), ("a",), (True,)]
        )
        assert len(relation.sorted_rows()) == 4

    def test_sorted_rows_nan_has_a_fixed_slot(self):
        # NaN compares False both ways, which used to make the "total"
        # order input-order-dependent: pin that it now sorts above every
        # other number, below strings, regardless of insertion order.
        import math

        nan = float("nan")
        values = [3.0, nan, 1, "z", None, 2]
        expected_reprs = [
            repr((v,)) for v in (None, 1, 2, 3.0, nan, "z")
        ]
        for ordering in (values, list(reversed(values))):
            relation = Relation.from_rows(
                Schema.of("x"), [(v,) for v in ordering]
            )
            got = [repr(row) for row in relation.sorted_rows()]
            assert got == expected_reprs, ordering
        # Two NaN objects (distinct rows via a tie-break column) stay
        # adjacent and ordered by the second column deterministically.
        relation = Relation.from_rows(
            Schema.of("x", "t"),
            [(float("nan"), 2), (9.0, 0), (float("nan"), 1)],
        )
        rows = relation.sorted_rows()
        assert [r[1] for r in rows] == [0, 1, 2]
        assert math.isnan(rows[1][0]) and math.isnan(rows[2][0])

    def test_pretty_contains_header_and_rows(self):
        rendered = self.make().pretty()
        assert "k" in rendered and "10" in rendered

    def test_pretty_truncates(self):
        relation = Relation.from_rows(Schema.of("x"), [(i,) for i in range(30)])
        assert "more rows" in relation.pretty(limit=5)


class TestDatabase:
    def make(self):
        return Database(
            {"R": Relation.from_rows(Schema.of("a"), [(1,), (2,)])}
        )

    def test_access(self):
        db = self.make()
        assert len(db["R"]) == 2
        assert "R" in db and "S" not in db
        with pytest.raises(SchemaError):
            db["S"]

    def test_with_relation_is_functional(self):
        db = self.make()
        grown = db.with_relation("R", db["R"].insert((3,)))
        assert len(db["R"]) == 2
        assert len(grown["R"]) == 3

    def test_without_relation(self):
        assert "R" not in self.make().without_relation("R")

    def test_same_contents(self):
        db = self.make()
        assert db.same_contents(self.make())
        other = db.with_relation("R", db["R"].insert((9,)))
        assert not db.same_contents(other)

    def test_same_contents_treats_missing_as_empty(self):
        db = self.make()
        with_empty = db.with_relation(
            "S", Relation.from_rows(Schema.of("z"), [])
        )
        assert db.same_contents(with_empty)

    def test_total_tuples(self):
        assert self.make().total_tuples() == 2

    def test_pretty(self):
        assert "== R ==" in self.make().pretty()
