"""Engine edge cases: dataflow closure, insert-only modifications,
trimming interactions, optimizer interplay."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core import (
    DatabaseDelta,
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from repro.core.engine import _affected_relations
from repro.core.hwq import align
from repro.relational.algebra import Project, RelScan, Select
from repro.relational.expressions import and_, col, ge, le, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")
ROWS = [(i, i * 10, 5) for i in range(1, 11)]


def window(low, high):
    return and_(ge(col("P"), low), le(col("P"), high))


def db_with_two():
    return Database(
        {
            "R": Relation.from_rows(SCHEMA, ROWS),
            "S": Relation.from_rows(SCHEMA, [(100, 55, 1)]),
        }
    )


def assert_methods_agree(query):
    engine = Mahif()
    direct = DatabaseDelta.between(
        query.history.execute(query.database),
        query.aligned().modified.execute(query.database),
    )
    for method in Method:
        assert engine.answer(query, method).delta == direct, method.value
    return direct


class TestAffectedRelationClosure:
    def test_insert_query_propagates_affectedness(self):
        """A modification on R must mark S affected when an
        INSERT INTO S SELECT ... FROM R exists."""
        copy_into_s = InsertQuery(
            "S",
            Project(
                Select(RelScan("R"), ge(col("P"), 50)),
                ((col("k") + 100, "k"), (col("P"), "P"), (col("F"), "F")),
            ),
        )
        history = History.of(
            UpdateStatement("R", {"P": col("P") + 1}, window(40, 60)),
            copy_into_s,
        )
        aligned = align(
            history,
            [Replace(1, UpdateStatement("R", {"P": col("P") + 2},
                                        window(40, 60)))],
        )
        assert _affected_relations(aligned) == {"R", "S"}

    def test_closure_is_transitive(self):
        hop1 = InsertQuery("S", RelScan("R"))
        hop2 = InsertQuery("T", RelScan("S"))
        history = History.of(
            UpdateStatement("R", {"P": col("P") + 1}, window(40, 60)),
            hop1,
            hop2,
        )
        aligned = align(
            history,
            [Replace(1, UpdateStatement("R", {"P": col("P") + 2},
                                        window(40, 60)))],
        )
        assert _affected_relations(aligned) == {"R", "S", "T"}

    def test_cross_relation_delta_computed(self):
        """End-to-end: the delta on the downstream relation appears."""
        copy_into_s = InsertQuery(
            "S",
            Project(
                Select(RelScan("R"), ge(col("P"), 100)),
                ((col("k") + 100, "k"), (col("P"), "P"), (col("F"), "F")),
            ),
        )
        history = History.of(
            UpdateStatement("R", {"P": lit(150)}, window(90, 100)),
            copy_into_s,
        )
        query = HistoricalWhatIfQuery(
            history,
            db_with_two(),
            (Replace(1, UpdateStatement("R", {"P": lit(80)},
                                        window(90, 100))),),
        )
        direct = assert_methods_agree(query)
        assert "S" in direct.relations  # downstream relation differs


class TestInsertOnlyModifications:
    def test_insert_pair_modification_with_suffix(self):
        history = History.of(
            InsertTuple("R", (99, 55, 5)),
            UpdateStatement("R", {"F": col("F") + 1}, window(50, 60)),
            DeleteStatement("R", window(200, 300)),
        )
        query = HistoricalWhatIfQuery(
            History(history.statements),
            Database({"R": Relation.from_rows(SCHEMA, ROWS)}),
            (Replace(1, InsertTuple("R", (99, 25, 5))),),
        )
        assert_methods_agree(query)

    def test_colliding_insert_modification(self):
        """The hypothetical insert collides with an existing row."""
        history = History.of(InsertTuple("R", (999, 999, 999)))
        query = HistoricalWhatIfQuery(
            history,
            Database({"R": Relation.from_rows(SCHEMA, ROWS)}),
            (Replace(1, InsertTuple("R", (1, 10, 5))),),  # row exists!
        )
        assert_methods_agree(query)


class TestTrimInteraction:
    def test_late_modification_after_inserts_and_deletes(self):
        history = History.of(
            InsertTuple("R", (50, 45, 5)),
            DeleteStatement("R", window(95, 100)),
            UpdateStatement("R", {"F": lit(0)}, window(30, 60)),
            UpdateStatement("R", {"F": col("F") + 1}, window(20, 70)),
        )
        query = HistoricalWhatIfQuery(
            history,
            Database({"R": Relation.from_rows(SCHEMA, ROWS)}),
            (Replace(3, UpdateStatement("R", {"F": lit(9)},
                                        window(30, 60))),),
        )
        assert_methods_agree(query)

    def test_modification_at_last_position(self):
        history = History.of(
            UpdateStatement("R", {"F": col("F") + 1}, window(10, 100)),
            UpdateStatement("R", {"F": lit(0)}, window(40, 60)),
        )
        query = HistoricalWhatIfQuery(
            history,
            Database({"R": Relation.from_rows(SCHEMA, ROWS)}),
            (Replace(2, UpdateStatement("R", {"F": lit(1)},
                                        window(40, 80))),),
        )
        assert_methods_agree(query)


class TestOptimizerInterplay:
    @pytest.mark.parametrize("optimize_queries", [True, False])
    @pytest.mark.parametrize(
        "method", [Method.R, Method.R_DS, Method.R_PS_DS],
        ids=lambda m: m.value,
    )
    def test_same_delta_with_and_without_optimizer(
        self, optimize_queries, method
    ):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(30, 60)),
            UpdateStatement("R", {"F": col("F") + 1}, window(40, 90)),
            DeleteStatement("R", window(95, 100)),
        )
        query = HistoricalWhatIfQuery(
            history,
            Database({"R": Relation.from_rows(SCHEMA, ROWS)}),
            (Replace(1, UpdateStatement("R", {"F": lit(2)},
                                        window(30, 70))),),
        )
        config = MahifConfig(optimize_queries=optimize_queries)
        result = Mahif(config).answer(query, method)
        direct = DatabaseDelta.between(
            history.execute(query.database),
            query.aligned().modified.execute(query.database),
        )
        assert result.delta == direct
