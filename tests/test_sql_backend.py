"""Unit tests for the sqlite middleware backend.

Targeted coverage of the semantics reconciliation the differential
fuzzer exercises statistically: two-valued NULL logic, true division,
bool/int coercion, bag multiplicity encoding, statement translation,
adversarial strings, the read-only connection cache, and error parity.
"""

import pytest

from repro.relational import (
    BagDatabase,
    BagRelation,
    Database,
    History,
    Relation,
    Schema,
    evaluate_query,
    evaluate_query_bag,
    evaluate_query_bag_interpreted,
    evaluate_query_interpreted,
    use_backend,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.exec.sql_backend import (
    SqlBackendError,
    apply_statement_sqlite,
    clear_sqlite_cache,
    execute_query_sqlite,
    sqlite_cache_info,
)
from repro.relational.exec.sqlite_sql import (
    MULT_COLUMN,
    bind_value,
    condition_to_sqlite,
    query_to_sqlite,
)
from repro.relational.expressions import (
    EvaluationError,
    IsNull,
    Not,
    TRUE,
    and_,
    col,
    eq,
    gt,
    if_,
    lit,
    neq,
    or_,
)
from repro.relational.schema import SchemaError
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)


def make_db():
    return Database(
        {
            "R": Relation.from_rows(
                Schema.of("a", "b"),
                [(1, 10), (2, None), (None, 30), (-2, 0)],
            ),
            "S": Relation.from_rows(
                Schema.of("a", "b"), [(1, 10), (3, None)]
            ),
        }
    )


class TestNullLogic:
    """The interpreter's 2VL must survive SQLite's 3VL."""

    def test_not_over_null_comparison_keeps_row(self):
        # NOT (a = 2): a NULL row satisfies it under 2VL; naive SQLite
        # rendering (WHERE NOT (a = 2) -> NOT NULL -> NULL) would drop it.
        db = make_db()
        plan = Select(RelScan("R"), Not(eq(col("a"), 2)))
        expected = evaluate_query_interpreted(plan, db)
        assert (None, 30) in expected.tuples
        assert evaluate_query(plan, db, backend="sqlite").tuples == expected.tuples

    def test_or_with_null_operand(self):
        db = make_db()
        plan = Select(
            RelScan("R"), or_(eq(col("a"), 99), Not(gt(col("b"), 5)))
        )
        assert (
            evaluate_query(plan, db, backend="sqlite").tuples
            == evaluate_query_interpreted(plan, db).tuples
        )

    def test_neq_null_is_false(self):
        db = make_db()
        plan = Select(RelScan("R"), neq(col("a"), col("a")))
        assert evaluate_query(plan, db, backend="sqlite").tuples == frozenset()

    def test_is_null_and_case(self):
        db = make_db()
        plan = Project(
            RelScan("R"),
            (
                (col("a"), "a"),
                (if_(IsNull(col("b")), lit(-1), col("b")), "b"),
            ),
        )
        assert (
            evaluate_query(plan, db, backend="sqlite").tuples
            == evaluate_query_interpreted(plan, db).tuples
        )


class TestArithmetic:
    def test_true_division(self):
        # Python / is true division; raw SQLite would integer-divide.
        db = Database({"R": Relation.from_rows(Schema.of("a"), [(3,)])})
        plan = Project(RelScan("R"), ((col("a") / lit(2), "q"),))
        result = evaluate_query(plan, db, backend="sqlite")
        assert result.tuples == frozenset({(1.5,)})

    def test_division_by_zero_is_null(self):
        db = Database({"R": Relation.from_rows(Schema.of("a"), [(3,)])})
        plan = Project(RelScan("R"), ((col("a") / lit(0), "q"),))
        assert evaluate_query(plan, db, backend="sqlite").tuples == frozenset(
            {(None,)}
        )

    def test_bool_int_coercion(self):
        # True joins 1, compares as 1, and survives the round trip under
        # Python's True == 1 equality.
        db = Database(
            {
                "L": Relation.from_rows(Schema.of("a"), [(True,), (False,)]),
                "R2": Relation.from_rows(Schema.of("c"), [(1,), (0.0,)]),
            }
        )
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        assert (
            evaluate_query(plan, db, backend="sqlite").tuples
            == evaluate_query_interpreted(plan, db).tuples
        )


class TestAdversarialValues:
    def test_quote_laden_strings_are_parameterized(self):
        strings = ["O'Brien", 'say "hi"', "x');--", "ünïcode", ""]
        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("s"), [(value,) for value in strings]
                )
            }
        )
        for value in strings:
            plan = Select(RelScan("R"), eq(col("s"), lit(value)))
            assert evaluate_query(plan, db, backend="sqlite").tuples == frozenset(
                {(value,)}
            ), value

    def test_nan_rejected_loudly(self):
        db = Database(
            {"R": Relation.from_rows(Schema.of("a"), [(float("nan"),)])}
        )
        with pytest.raises(SqlBackendError, match="NaN"):
            evaluate_query(RelScan("R"), db, backend="sqlite")

    def test_oversized_integer_rejected(self):
        with pytest.raises(SqlBackendError, match="64-bit"):
            bind_value(2**70)

    def test_reserved_multiplicity_column_rejected(self):
        db = Database(
            {"R": Relation.from_rows(Schema.of(MULT_COLUMN), [(1,)])}
        )
        with pytest.raises(SqlBackendError, match="reserved"):
            query_to_sqlite(RelScan("R"), {"R": db.schema_of("R")})

    def test_reserved_column_rejected_on_statement_path_too(self):
        # The statement-application path must raise the same polished
        # error as query translation, not leak sqlite3.OperationalError
        # from CREATE TABLE (review regression).
        from repro.relational import apply_statement_bag

        schema = Schema.of("a", MULT_COLUMN)
        db = Database({"R": Relation.from_rows(schema, [(1, 2)])})
        bag_db = BagDatabase.from_set_database(db)
        with use_backend("sqlite"):
            with pytest.raises(SqlBackendError, match="reserved"):
                DeleteStatement("R", TRUE).apply(db)
            with pytest.raises(SqlBackendError, match="reserved"):
                apply_statement_bag(DeleteStatement("R", TRUE), bag_db)

    def test_case_colliding_identifiers_rejected(self):
        db = Database(
            {"R": Relation.from_rows(Schema.of("a", "A"), [(1, 2)])}
        )
        with pytest.raises(SqlBackendError, match="case-insensitive"):
            execute_query_sqlite(RelScan("R"), db)


class TestBagEncoding:
    def make_bag(self):
        return BagDatabase(
            {
                "R": BagRelation(
                    Schema.of("a", "b"),
                    {(1, 10): 3, (2, None): 2, (None, None): 1},
                ),
                "S": BagRelation(
                    Schema.of("a", "b"), {(1, 10): 1, (2, None): 5}
                ),
            }
        )

    def test_scan_preserves_multiplicity(self):
        bag = self.make_bag()
        result = evaluate_query_bag(RelScan("R"), bag, backend="sqlite")
        assert dict(result.multiplicities) == {
            (1, 10): 3, (2, None): 2, (None, None): 1
        }

    def test_projection_sums_multiplicities(self):
        bag = self.make_bag()
        plan = Project(RelScan("R"), ((col("b"), "b"),))
        result = evaluate_query_bag(plan, bag, backend="sqlite")
        assert dict(result.multiplicities) == {(10,): 3, (None,): 3}

    def test_union_all_is_additive(self):
        bag = self.make_bag()
        plan = Union(RelScan("R"), RelScan("S"))
        result = evaluate_query_bag(plan, bag, backend="sqlite")
        assert result.count_of((1, 10)) == 4
        assert result.count_of((2, None)) == 7

    def test_monus_floors_at_zero_and_matches_null_rows(self):
        bag = self.make_bag()
        plan = Difference(RelScan("R"), RelScan("S"))
        result = evaluate_query_bag(plan, bag, backend="sqlite")
        # (1,10): 3-1=2; (2,None): 2-5 floored away; (None,None) survives
        # because the NULL-safe join must match NULL keys.
        assert dict(result.multiplicities) == {(1, 10): 2, (None, None): 1}
        assert dict(result.multiplicities) == dict(
            evaluate_query_bag_interpreted(plan, bag).multiplicities
        )

    def test_join_multiplies_multiplicities(self):
        bag = BagDatabase(
            {
                "L": BagRelation(Schema.of("a"), {(1,): 2}),
                "R2": BagRelation(Schema.of("c"), {(1,): 3}),
            }
        )
        plan = Join(RelScan("L"), RelScan("R2"), eq(col("a"), col("c")))
        result = evaluate_query_bag(plan, bag, backend="sqlite")
        assert dict(result.multiplicities) == {(1, 1): 6}

    def test_singleton_has_multiplicity_one(self):
        bag = self.make_bag()
        plan = Union(
            RelScan("R"), Singleton(Schema.of("a", "b"), (1, 10))
        )
        result = evaluate_query_bag(plan, bag, backend="sqlite")
        assert result.count_of((1, 10)) == 4


class TestStatements:
    def test_update_sees_pre_update_row(self):
        # SET a = b, b = a must swap (both RHS read the original row).
        db = Database(
            {"R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)])}
        )
        stmt = UpdateStatement("R", {"a": col("b"), "b": col("a")}, TRUE)
        with use_backend("sqlite"):
            result = stmt.apply(db)
        assert result["R"].tuples == frozenset({(2, 1)})

    def test_update_merging_rows(self):
        db = Database(
            {
                "R": Relation.from_rows(
                    Schema.of("a", "b"), [(1, 1), (2, 1), (3, 2)]
                )
            }
        )
        stmt = UpdateStatement("R", {"a": lit(0)}, eq(col("b"), 1))
        with use_backend("sqlite"):
            result = stmt.apply(db)
        assert result["R"].tuples == frozenset({(0, 1), (3, 2)})

    def test_update_unknown_attribute_raises_schema_error(self):
        db = make_db()
        stmt = UpdateStatement("R", {"zz": lit(1)}, TRUE)
        with use_backend("sqlite"):
            with pytest.raises(SchemaError, match="unknown attribute"):
                stmt.apply(db)

    def test_insert_arity_mismatch_raises_schema_error(self):
        db = make_db()
        with use_backend("sqlite"):
            with pytest.raises(SchemaError, match="arity"):
                InsertTuple("R", (1, 2, 3)).apply(db)

    def test_insert_select_positional_relabel(self):
        db = Database(
            {
                "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                "S": Relation.from_rows(Schema.of("x", "y"), [(7, 8)]),
            }
        )
        with use_backend("sqlite"):
            result = InsertQuery("R", RelScan("S")).apply(db)
        assert (7, 8) in result["R"].tuples

    def test_insert_select_arity_mismatch(self):
        db = Database(
            {
                "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                "W": Relation.from_rows(Schema.of("x", "y", "z"), [(1, 2, 3)]),
            }
        )
        with use_backend("sqlite"):
            with pytest.raises(SchemaError, match="arity 3 does not match"):
                InsertQuery("R", RelScan("W")).apply(db)

    def test_delete_with_null_condition(self):
        db = make_db()
        stmt = DeleteStatement("R", gt(col("b"), 5))
        with use_backend("sqlite"):
            via_sqlite = stmt.apply(db)
        with use_backend("interpreted"):
            via_interp = stmt.apply(db)
        assert via_sqlite.same_contents(via_interp)
        assert (2, None) in via_sqlite["R"].tuples  # NULL not matched

    def test_history_replay(self):
        db = make_db()
        history = History.of(
            UpdateStatement("R", {"b": col("b") + 1}, gt(col("a"), 0)),
            DeleteStatement("R", IsNull(col("a"))),
            InsertTuple("R", (9, None)),
        )
        with use_backend("sqlite"):
            via_sqlite = history.execute(db)
        with use_backend("interpreted"):
            via_interp = history.execute(db)
        assert via_sqlite.same_contents(via_interp)

    def test_untouched_relations_are_shared(self):
        db = make_db()
        with use_backend("sqlite"):
            result = DeleteStatement("R", TRUE).apply(db)
        assert result["S"] is db["S"]


class TestConnectionCache:
    def test_repeated_queries_reuse_connection(self):
        clear_sqlite_cache()
        db = make_db()
        plan = Select(RelScan("R"), gt(col("a"), 0))
        evaluate_query(plan, db, backend="sqlite")
        misses = sqlite_cache_info()["misses"]
        evaluate_query(plan, db, backend="sqlite")
        evaluate_query(RelScan("S"), db, backend="sqlite")
        info = sqlite_cache_info()
        assert info["misses"] == misses
        assert info["hits"] >= 2

    def test_statement_apply_does_not_poison_cache(self):
        clear_sqlite_cache()
        db = make_db()
        before = evaluate_query(RelScan("R"), db, backend="sqlite")
        with use_backend("sqlite"):
            DeleteStatement("R", TRUE).apply(db)
        after = evaluate_query(RelScan("R"), db, backend="sqlite")
        assert after.tuples == before.tuples  # db itself is immutable

    def test_cache_entry_dropped_when_database_collected(self):
        import gc

        clear_sqlite_cache()
        db = make_db()
        evaluate_query(RelScan("R"), db, backend="sqlite")
        assert sqlite_cache_info()["connections"] == 1
        del db
        gc.collect()
        assert sqlite_cache_info()["connections"] == 0

    def test_stale_drop_callback_does_not_evict_replacement(self):
        """Regression: a ``_drop`` registered for a *replaced* entry must
        not close the live replacement on the same key.

        Entries can be replaced while their weakref callback is still
        deliverable — ``id()`` reuse after a gc-deferred collection, or a
        set/bag reload of one database.  Pre-fix, the stale callback
        popped whatever the key currently held and closed its connection
        mid-use; the generation check makes it a no-op.  The deferred
        delivery window is simulated by holding the first entry's weakref
        and firing its callback after the replacement, exactly as the gc
        would.
        """
        import gc

        from repro.relational.exec import sql_backend as sb

        clear_sqlite_cache()
        db = make_db()
        plan = Select(RelScan("R"), gt(col("a"), 0))
        expected = evaluate_query(plan, db, backend="sqlite").tuples
        ((key, first_entry),) = sb._connections.items()
        stale_ref = first_entry.ref  # keep the callback deliverable
        # Force the replacement path for the same key: pretend the entry
        # was loaded for the other semantics, as a set/bag alternation
        # on one database would.
        first_entry.bag = not first_entry.bag
        evaluate_query(plan, db, backend="sqlite")  # mismatch -> reload
        replacement = sb._connections[key]
        assert replacement is not first_entry
        # Deliver the stale callback, as a deferred gc pass would.
        stale_ref.__callback__(stale_ref)
        gc.collect()
        # The live replacement survives: still cached, connection open.
        assert sqlite_cache_info()["connections"] == 1
        assert sb._connections[key] is replacement
        before = sqlite_cache_info()["misses"]
        assert evaluate_query(plan, db, backend="sqlite").tuples == expected
        assert sqlite_cache_info()["misses"] == before  # served from cache

    def test_set_bag_alternation_with_gc_keeps_queries_working(self):
        """The ISSUE's reproduction shape: alternate set/bag queries over
        one database's images, force collection, query again."""
        import gc

        from repro.relational import evaluate_query_bag

        clear_sqlite_cache()
        db = make_db()
        bag_db = BagDatabase.from_set_database(db)
        plan = Select(RelScan("R"), gt(col("a"), 0))
        expected_set = evaluate_query(plan, db, backend="sqlite").tuples
        expected_bag = dict(
            evaluate_query_bag(plan, bag_db, backend="sqlite").multiplicities
        )
        for _ in range(3):
            assert (
                evaluate_query(plan, db, backend="sqlite").tuples
                == expected_set
            )
            assert (
                dict(
                    evaluate_query_bag(
                        plan, bag_db, backend="sqlite"
                    ).multiplicities
                )
                == expected_bag
            )
            gc.collect()
        del bag_db
        gc.collect()
        assert evaluate_query(plan, db, backend="sqlite").tuples == expected_set

    def test_lru_bound_evicts_oldest_connection(self):
        from repro.relational.exec.sql_backend import set_sqlite_cache_limit

        clear_sqlite_cache()
        previous = set_sqlite_cache_limit(2)
        try:
            databases = [make_db() for _ in range(4)]
            for db in databases:
                evaluate_query(RelScan("R"), db, backend="sqlite")
            info = sqlite_cache_info()
            assert info["max_connections"] == 2
            assert info["connections"] == 2
            # The two most recent stay cached; the first was evicted.
            before = sqlite_cache_info()["hits"]
            evaluate_query(RelScan("R"), databases[-1], backend="sqlite")
            assert sqlite_cache_info()["hits"] == before + 1
            misses = sqlite_cache_info()["misses"]
            evaluate_query(RelScan("R"), databases[0], backend="sqlite")
            assert sqlite_cache_info()["misses"] == misses + 1
        finally:
            set_sqlite_cache_limit(previous)
            clear_sqlite_cache()

    def test_cache_limit_validates(self):
        from repro.relational.exec.sql_backend import set_sqlite_cache_limit

        with pytest.raises(ValueError):
            set_sqlite_cache_limit(0)

    def test_clear_concurrent_with_inflight_queries(self):
        """clear_sqlite_cache() may race in-flight queries: the entries
        are retired, not yanked — queries finish on the old connection."""
        import threading

        clear_sqlite_cache()
        db = make_db()
        plan = Select(RelScan("R"), gt(col("a"), 0))
        expected = evaluate_query(plan, db, backend="sqlite").tuples
        errors = []
        stop = threading.Event()

        def hammer():
            try:
                while not stop.is_set():
                    assert (
                        evaluate_query(plan, db, backend="sqlite").tuples
                        == expected
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        worker = threading.Thread(target=hammer)
        worker.start()
        try:
            for _ in range(50):
                clear_sqlite_cache()
        finally:
            stop.set()
            worker.join()
        assert not errors

    def test_thread_pool_gets_one_connection_per_thread(self):
        from concurrent.futures import ThreadPoolExecutor

        clear_sqlite_cache()
        db = make_db()
        plan = Select(RelScan("R"), gt(col("a"), 0))
        expected = evaluate_query(plan, db, backend="sqlite").tuples

        def query(_):
            return evaluate_query(plan, db, backend="sqlite").tuples

        with ThreadPoolExecutor(max_workers=3) as pool:
            results = list(pool.map(query, range(30)))
        assert all(result == expected for result in results)
        info = sqlite_cache_info()
        # One entry per participating thread (including this one), each
        # loaded exactly once.
        assert 1 <= info["connections"] <= 4
        assert info["misses"] == info["connections"]


class TestErrorParity:
    def test_unknown_relation(self):
        db = make_db()
        with pytest.raises(SchemaError, match="no relation named"):
            evaluate_query(RelScan("missing"), db, backend="sqlite")

    def test_union_name_mismatch(self):
        db = Database(
            {
                "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                "S": Relation.from_rows(Schema.of("x", "y"), [(3, 4)]),
            }
        )
        for op_cls in (Union, Difference):
            with pytest.raises(SchemaError, match="attribute-name mismatch"):
                evaluate_query(op_cls(RelScan("R"), RelScan("S")), db,
                               backend="sqlite")

    def test_unbound_reference_message_matches_interpreter(self):
        db = make_db()
        plan = Select(RelScan("R"), eq(col("zz"), 1))
        with pytest.raises(EvaluationError, match="unbound reference 'zz'"):
            evaluate_query(plan, db, backend="sqlite")

    def test_cross_join_and_residual(self):
        db = make_db()
        plan = Join(
            RelScan("R"),
            Project(RelScan("S"), ((col("a"), "c"), (col("b"), "d"))),
            and_(eq(col("a"), col("c")), gt(col("b"), 5)),
        )
        assert (
            evaluate_query(plan, db, backend="sqlite").tuples
            == evaluate_query_interpreted(plan, db).tuples
        )


class TestSqlShape:
    def test_one_query_per_tree(self):
        """The middleware contract: one SQL string, parameterized."""
        db = make_db()
        schemas = {name: db.schema_of(name) for name in db.relations}
        plan = Union(
            Select(RelScan("R"), gt(col("a"), lit(0))),
            Project(RelScan("S"), ((col("a"), "a"), (lit(5), "b"))),
        )
        sql, params, schema = query_to_sqlite(plan, schemas)
        assert sql.count("?") == len(params) == 2
        assert params == [0, 5]
        assert schema.attributes == ("a", "b")
        assert "'" not in sql  # literals never interpolated

    def test_condition_rendering_is_two_valued(self):
        params = []
        sql = condition_to_sqlite(Not(eq(col("a"), lit(2))), params)
        assert sql == "(NOT COALESCE((\"a\" = ?), 0))"
        assert params == [2]
