"""SQL rendering tests, including parser round-trips."""

import pytest

from repro import Database, Relation, Schema
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
)
from repro.relational.expressions import TRUE, col, eq, ge
from repro.relational.parser import parse_statement
from repro.relational.sqlgen import (
    history_to_sql,
    query_to_sql,
    statement_to_sql,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)


class TestStatementRendering:
    @pytest.mark.parametrize(
        "sql",
        [
            "UPDATE t SET a = (a + 1) WHERE (a >= 5);",
            "DELETE FROM t WHERE (a = 1);",
            "INSERT INTO t VALUES (1, 'x', NULL);",
        ],
    )
    def test_roundtrip(self, sql):
        stmt = parse_statement(sql)
        rendered = statement_to_sql(stmt)
        assert parse_statement(rendered) == stmt

    def test_update_renders_sorted_set_clauses(self):
        stmt = UpdateStatement("t", {"b": col("b"), "a": col("a")}, TRUE)
        rendered = statement_to_sql(stmt)
        assert rendered.index("a =") < rendered.index("b =")

    def test_insert_query_rendering(self):
        stmt = InsertQuery("t", Select(RelScan("s"), ge(col("x"), 1)))
        rendered = statement_to_sql(stmt)
        assert rendered.startswith("INSERT INTO t SELECT")

    def test_float_and_bool_literals(self):
        # Booleans render as 1/0 (SQLite has no boolean storage class;
        # Python's True == 1 keeps statement equality intact).
        rendered = statement_to_sql(InsertTuple("t", (1.5, True)))
        assert rendered == "INSERT INTO t VALUES (1.5, 1);"
        assert parse_statement(rendered) == InsertTuple("t", (1.5, True))

    def test_nonfinite_and_tiny_float_literals(self):
        rendered = statement_to_sql(
            InsertTuple("t", (float("inf"), float("-inf"), 1e-07))
        )
        assert rendered == "INSERT INTO t VALUES (9e999, -9e999, 1e-07);"
        parsed = parse_statement(rendered)
        assert parsed == InsertTuple("t", (float("inf"), float("-inf"), 1e-07))

    def test_nan_renders_as_null(self):
        # SQLite has no NaN literal and stores computed NaNs as NULL.
        rendered = statement_to_sql(InsertTuple("t", (float("nan"),)))
        assert rendered == "INSERT INTO t VALUES (NULL);"

    def test_string_escaping(self):
        rendered = statement_to_sql(InsertTuple("t", ("O'Hare",)))
        assert "'O''Hare'" in rendered

    def test_history_script(self):
        script = history_to_sql(
            [DeleteStatement("t", TRUE), InsertTuple("t", (1,))]
        )
        assert script.count(";") == 2


class TestQueryRendering:
    def test_scan(self):
        assert query_to_sql(RelScan("R")) == "SELECT * FROM R"

    def test_parser_expressible_tree_renders_flat(self):
        # [Project] [Select] RelScan with conventional output names is the
        # fragment the parser can produce, so it renders flat (and thereby
        # round-trips, see test_sqlgen_roundtrip.py).
        query = Project(
            Select(RelScan("R"), ge(col("a"), 1)), ((col("a"), "a"),)
        )
        sql = query_to_sql(query)
        assert sql == "SELECT a FROM R WHERE (a >= 1)"

    def test_unconventional_names_nest(self):
        query = Project(
            Select(RelScan("R"), ge(col("a"), 1)), ((col("a"), "renamed"),)
        )
        sql = query_to_sql(query)
        assert "WHERE" in sql and "AS sub" in sql

    def test_union_difference(self):
        assert "UNION" in query_to_sql(Union(RelScan("R"), RelScan("S")))
        assert "EXCEPT" in query_to_sql(Difference(RelScan("R"), RelScan("S")))

    def test_join(self):
        sql = query_to_sql(Join(RelScan("R"), RelScan("S"), eq(col("a"), col("c"))))
        assert "WHERE" in sql

    def test_singleton(self):
        sql = query_to_sql(Singleton(Schema.of("a", "b"), (1, "x")))
        assert "1 AS a" in sql and "'x' AS b" in sql

    def test_reenactment_query_renders(self, orders_db, paper_history):
        """The full reenactment SQL of the running example renders."""
        from repro.core import reenactment_query

        schemas = {n: orders_db.schema_of(n) for n in orders_db}
        query = reenactment_query(paper_history, "Orders", schemas)
        sql = query_to_sql(query)
        assert sql.count("CASE WHEN") == 3  # one per update
