"""Why-provenance tests."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core import HistoricalWhatIfQuery, Mahif, Method, Replace
from repro.core.provenance import (
    SourceTuple,
    evaluate_with_provenance,
    explain_delta,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.expressions import col, eq, ge, lit

SCHEMA = Schema.of("k", "v")


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation.from_rows(SCHEMA, [(1, 10), (2, 20), (3, 30)]),
            "S": Relation.from_rows(Schema.of("x"), [(2,), (3,)]),
        }
    )


class TestEvaluateWithProvenance:
    def test_scan_self_witness(self, db):
        annotated = evaluate_with_provenance(RelScan("R"), db)
        assert annotated.witnesses_of((1, 10)) == {SourceTuple("R", (1, 10))}

    def test_selection_passes_witnesses(self, db):
        annotated = evaluate_with_provenance(
            Select(RelScan("R"), ge(col("v"), 20)), db
        )
        assert (1, 10) not in annotated.rows()
        assert annotated.witnesses_of((2, 20)) == {SourceTuple("R", (2, 20))}

    def test_projection_merges_witnesses(self, db):
        # map every tuple to the same output: witnesses union
        query = Project(RelScan("R"), ((lit(0), "z"),))
        annotated = evaluate_with_provenance(query, db)
        assert annotated.witnesses_of((0,)) == {
            SourceTuple("R", (1, 10)),
            SourceTuple("R", (2, 20)),
            SourceTuple("R", (3, 30)),
        }

    def test_union_merges_sources(self, db):
        query = Union(RelScan("R"), RelScan("R"))
        annotated = evaluate_with_provenance(query, db)
        assert annotated.witnesses_of((1, 10)) == {SourceTuple("R", (1, 10))}

    def test_singleton_has_empty_witness(self, db):
        query = Union(RelScan("R"), Singleton(SCHEMA, (9, 90)))
        annotated = evaluate_with_provenance(query, db)
        assert annotated.witnesses_of((9, 90)) == frozenset()

    def test_difference_keeps_left_witnesses(self, db):
        query = Difference(
            RelScan("R"), Select(RelScan("R"), ge(col("v"), 20))
        )
        annotated = evaluate_with_provenance(query, db)
        assert annotated.rows() == {(1, 10)}

    def test_join_unions_witnesses(self, db):
        query = Join(RelScan("R"), RelScan("S"), eq(col("k"), col("x")))
        annotated = evaluate_with_provenance(query, db)
        assert annotated.witnesses_of((2, 20, 2)) == {
            SourceTuple("R", (2, 20)),
            SourceTuple("S", (2,)),
        }

    def test_matches_plain_evaluation(self, db):
        from repro.relational.algebra import evaluate_query

        query = Project(
            Select(RelScan("R"), ge(col("v"), 15)),
            ((col("k"), "k"), (col("v") + 1, "v")),
        )
        annotated = evaluate_with_provenance(query, db)
        assert annotated.rows() == set(evaluate_query(query, db))


class TestExplainDelta:
    def test_paper_example_explanation(self, orders_db, paper_history, u1_prime):
        """The delta tuples of the running example trace back to Alex's
        original order row."""
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, Method.R)
        explanation = explain_delta(result, "Orders")
        alex_source = SourceTuple("Orders", (12, "Alex", "UK", 50, 5))
        assert explanation[(12, "Alex", "UK", 50, 5)] == {alex_source}
        assert explanation[(12, "Alex", "UK", 50, 10)] == {alex_source}

    def test_naive_result_rejected(self, orders_db, paper_history, u1_prime):
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, Method.NAIVE)
        with pytest.raises(ValueError):
            explain_delta(result, "Orders")

    def test_unchanged_relation_yields_empty_explanation(
        self, orders_db, paper_history, u1_prime
    ):
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, Method.R)
        assert explain_delta(result, "NoSuchRelation") == {}

    def test_works_with_sliced_methods(self, orders_db, paper_history, u1_prime):
        query = HistoricalWhatIfQuery(
            paper_history, orders_db, (Replace(1, u1_prime),)
        )
        result = Mahif().answer(query, Method.R_PS_DS)
        explanation = explain_delta(result, "Orders")
        assert len(explanation) == 2
