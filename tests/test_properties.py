"""Property-based tests (hypothesis): the paper's theorems on random
histories and databases.

Strategy: small keyed relations (immutable key ``k``; see the
key-preservation note in DESIGN.md) and random histories of range-window
updates/deletes/inserts over two value attributes.  Properties:

* reenactment equivalence ``R_H(D) = H(D)`` (Definition 3),
* tuple independence (Lemma 1),
* every method agrees with direct execution (Theorems 2/4/5 combined),
* VC-table updates have possible-world semantics (Theorem 3),
* MILP satisfiability is complete w.r.t. finite-domain enumeration,
* simplification preserves semantics.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, History, Relation, Schema
from repro.core import (
    DatabaseDelta,
    HistoricalWhatIfQuery,
    Mahif,
    Method,
    Replace,
)
from repro.core.reenactment import reenactment_query
from repro.relational.algebra import evaluate_query
from repro.relational.expressions import (
    and_,
    col,
    evaluate,
    ge,
    le,
    lit,
    simplify,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- strategies -------------------------------------------------------------

values = st.integers(min_value=0, max_value=100)

rows = st.lists(
    st.tuples(st.integers(1, 30), values, values),
    min_size=0,
    max_size=12,
    unique_by=lambda t: t[0],  # unique keys
)


@st.composite
def windows(draw):
    low = draw(st.integers(0, 90))
    width = draw(st.integers(0, 40))
    attribute = draw(st.sampled_from(["P", "F"]))
    return and_(ge(col(attribute), low), le(col(attribute), low + width))


@st.composite
def update_statements(draw):
    target = draw(st.sampled_from(["P", "F"]))
    kind = draw(st.sampled_from(["const", "add", "scale"]))
    if kind == "const":
        expr = lit(draw(values))
    elif kind == "add":
        expr = col(target) + draw(st.integers(-10, 10))
    else:
        expr = col(target) * draw(st.integers(0, 3))
    return UpdateStatement("R", {target: expr}, draw(windows()))


@st.composite
def statements(draw):
    kind = draw(
        st.sampled_from(["update", "update", "update", "delete", "insert"])
    )
    if kind == "delete":
        return DeleteStatement("R", draw(windows()))
    if kind == "insert":
        key = draw(st.integers(100, 130))
        return InsertTuple("R", (key, draw(values), draw(values)))
    return draw(update_statements())


histories = st.lists(statements(), min_size=1, max_size=5).map(
    lambda ss: History(tuple(ss))
)


def make_db(raw_rows):
    return Database({"R": Relation.from_rows(SCHEMA, raw_rows)})


# -- properties -------------------------------------------------------------

class TestReenactmentEquivalence:
    @SETTINGS
    @given(rows, histories)
    def test_reenactment_equals_execution(self, raw_rows, history):
        db = make_db(raw_rows)
        query = reenactment_query(history, "R", {"R": SCHEMA})
        assert set(evaluate_query(query, db)) == set(
            history.execute(db)["R"]
        )


class TestTupleIndependence:
    @SETTINGS
    @given(rows, statements())
    def test_lemma1(self, raw_rows, stmt):
        db = make_db(raw_rows)
        whole = set(stmt.apply(db)["R"])
        pieces = set()
        for t in db["R"]:
            world = db.with_relation(
                "R", Relation(SCHEMA, frozenset({t}))
            )
            pieces |= set(stmt.apply(world)["R"])
        if not raw_rows and isinstance(stmt, InsertTuple):
            pieces |= {stmt.values}  # union over empty D is empty
        assert whole == pieces


class TestEngineSoundness:
    @SETTINGS
    @given(rows, histories, update_statements(), st.integers(0, 4))
    def test_all_methods_match_direct_execution(
        self, raw_rows, history, replacement, position_seed
    ):
        db = make_db(raw_rows)
        position = position_seed % len(history) + 1
        query = HistoricalWhatIfQuery(
            history, db, (Replace(position, replacement),)
        )
        direct = DatabaseDelta.between(
            history.execute(db),
            query.aligned().modified.execute(db),
        )
        engine = Mahif()
        for method in Method:
            result = engine.answer(query, method)
            assert result.delta == direct, method.value


class TestSimplifySoundness:
    @SETTINGS
    @given(windows(), st.integers(0, 100), st.integers(0, 100))
    def test_simplify_preserves_evaluation(self, condition, p, f):
        binding = {"k": 1, "P": p, "F": f}
        assert evaluate(simplify(condition), binding) == evaluate(
            condition, binding
        )


class TestSymbolicSemantics:
    @SETTINGS
    @given(
        update_statements(),
        st.integers(0, 100),
        st.integers(0, 100),
        st.integers(1, 30),
    )
    def test_theorem3_single_update(self, stmt, p, f, k):
        """Mod(u(D0)) == u(Mod(D0)) for the sampled world."""
        from repro.symbolic.symexec import VariableNamer, apply_statement
        from repro.symbolic.vctable import VCDatabase

        symbolic = apply_statement(
            VCDatabase.single_tuple_database({"R": SCHEMA}, prefix="x"),
            stmt,
            VariableNamer("t"),
        )
        assignment = {"x_R_k": k, "x_R_P": p, "x_R_F": f}
        for conjunct in symbolic.global_conjuncts:
            assignment[conjunct.left.name] = evaluate(
                conjunct.right, assignment
            )
        left = symbolic.instantiate(assignment)
        world = Database(
            {"R": Relation.from_rows(SCHEMA, [(k, p, f)])}
        )
        right = stmt.apply(world)
        assert left.same_contents(right)


class TestSolverCompleteness:
    @SETTINGS
    @given(windows(), windows())
    def test_milp_never_misses_finite_witness(self, w1, w2):
        """If brute force over a small integer grid finds a satisfying
        assignment, the MILP (over a superset domain) must agree."""
        from repro.solver import check_satisfiable, is_satisfiable_bruteforce

        formula = and_(w1, w2)
        domains = {"P": range(0, 131, 10), "F": range(0, 131, 10)}
        if is_satisfiable_bruteforce(formula, domains):
            assert check_satisfiable(formula).is_sat

    @SETTINGS
    @given(windows(), windows())
    def test_milp_unsat_implies_no_finite_witness(self, w1, w2):
        """INFEASIBLE answers must really have no witness (soundness of
        the direction program slicing relies on)."""
        from repro.solver import check_satisfiable, enumerate_satisfying

        formula = and_(w1, w2)
        result = check_satisfiable(formula)
        if result.is_unsat:
            domains = {"P": range(0, 131, 5), "F": range(0, 131, 5)}
            assert not any(enumerate_satisfying(formula, domains, limit=1))
