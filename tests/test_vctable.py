"""Tests for VC-tables and possible-world semantics (Section 8.1)."""

import pytest

from repro import Schema
from repro.relational.expressions import (
    TRUE,
    Var,
    and_,
    eq,
    ge,
    lit,
)
from repro.symbolic.vctable import SymbolicTuple, VCDatabase, VCTable


class TestSymbolicTuple:
    def test_fresh_creates_one_var_per_attribute(self):
        t = SymbolicTuple.fresh(Schema.of("a", "b"), prefix="x")
        assert t["a"] == Var("x_a")
        assert t["b"] == Var("x_b")
        assert t.variables() == {"x_a", "x_b"}

    def test_instantiate(self):
        t = SymbolicTuple({"a": Var("x"), "b": Var("x") + 1})
        assert t.instantiate({"x": 5}) == {"a": 5, "b": 6}

    def test_substitute(self):
        t = SymbolicTuple({"a": Var("x")})
        replaced = t.substitute({"x": lit(3)})
        assert replaced["a"] == lit(3)


class TestVCTable:
    def test_single_tuple_instance(self):
        table = VCTable.single_tuple(Schema.of("a", "b"))
        assert len(table) == 1
        assert table.local_condition(0) == TRUE

    def test_instantiate_keeps_only_satisfying_rows(self):
        schema = Schema.of("a")
        table = VCTable(
            schema,
            (
                (SymbolicTuple({"a": Var("x")}), ge(Var("x"), 10)),
                (SymbolicTuple({"a": Var("x") + 1}), TRUE),
            ),
        )
        world = table.instantiate({"x": 3})
        assert set(world) == {(4,)}
        world = table.instantiate({"x": 10})
        assert set(world) == {(10,), (11,)}

    def test_variables(self):
        table = VCTable(
            Schema.of("a"),
            ((SymbolicTuple({"a": Var("x")}), ge(Var("y"), 0)),),
        )
        assert table.variables() == {"x", "y"}


class TestVCDatabase:
    def make(self):
        return VCDatabase.single_tuple_database(
            {"R": Schema.of("a", "b")}
        )

    def test_single_tuple_database(self):
        db = self.make()
        assert "R" in db
        assert db.global_condition == TRUE

    def test_with_conjunct_builds_global_condition(self):
        db = self.make().with_conjunct(ge(Var("x_R_a"), 5))
        assert db.global_condition == ge(Var("x_R_a"), 5)
        two = db.with_conjunct(ge(Var("x_R_b"), 0))
        assert len(two.global_conjuncts) == 2

    def test_admits(self):
        db = self.make().with_conjunct(ge(Var("x_R_a"), 5))
        assert db.admits({"x_R_a": 7, "x_R_b": 0})
        assert not db.admits({"x_R_a": 3, "x_R_b": 0})

    def test_instantiate_respects_global_condition(self):
        """Definition 5: only assignments satisfying Φ yield worlds."""
        db = self.make().with_conjunct(ge(Var("x_R_a"), 5))
        world = db.instantiate({"x_R_a": 7, "x_R_b": 1})
        assert world is not None
        assert set(world["R"]) == {(7, 1)}
        assert db.instantiate({"x_R_a": 0, "x_R_b": 1}) is None

    def test_paper_example5(self):
        """Example 5: assignment (UK, 10, 0) yields world {(UK, 10, 0)}."""
        schema = Schema.of("Country", "Price", "ShippingFee")
        db = VCDatabase({"Order": VCTable.single_tuple(schema, prefix="x")})
        world = db.instantiate(
            {"x_Country": "UK", "x_Price": 10, "x_ShippingFee": 0}
        )
        assert set(world["Order"]) == {("UK", 10, 0)}

    def test_variables(self):
        db = self.make().with_conjunct(ge(Var("extra"), 1))
        assert "extra" in db.variables()
        assert "x_R_a" in db.variables()
