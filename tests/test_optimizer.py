"""Query optimizer tests: every rewrite must preserve results."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.reenactment import reenactment_query
from repro.relational.algebra import (
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
    operator_count,
)
from repro.relational.expressions import (
    FALSE,
    TRUE,
    and_,
    col,
    ge,
    if_,
    le,
    lit,
)
from repro.relational.optimizer import OptimizerConfig, optimize
from repro.relational.statements import UpdateStatement

SCHEMA = Schema.of("k", "v")


@pytest.fixture
def db():
    return Database(
        {"R": Relation.from_rows(SCHEMA, [(i, i * 10) for i in range(1, 9)])}
    )


def assert_equivalent(query, db, config=None):
    optimized = optimize(query, config)
    assert set(evaluate_query(optimized, db)) == set(
        evaluate_query(query, db)
    )
    return optimized


class TestRules:
    def test_merge_projections(self, db):
        inner = Project(RelScan("R"), ((col("k"), "k"), (col("v") + 1, "v")))
        outer = Project(inner, ((col("k"), "k"), (col("v") * 2, "v")))
        optimized = assert_equivalent(outer, db)
        assert operator_count(optimized) == 2  # one projection + scan

    def test_merge_respects_size_budget(self, db):
        inner = Project(RelScan("R"), ((col("k"), "k"), (col("v") + 1, "v")))
        outer = Project(inner, ((col("k"), "k"), (col("v") * 2, "v")))
        tiny = OptimizerConfig(max_expression_size=2)
        optimized = assert_equivalent(outer, db, tiny)
        assert operator_count(optimized) == 3  # left stacked

    def test_fuse_selections(self, db):
        query = Select(Select(RelScan("R"), ge(col("v"), 20)), le(col("v"), 50))
        optimized = assert_equivalent(query, db)
        assert operator_count(optimized) == 2

    def test_push_selection_through_projection(self, db):
        query = Select(
            Project(RelScan("R"), ((col("k"), "k"), (col("v") + 5, "v"))),
            ge(col("v"), 30),
        )
        optimized = assert_equivalent(query, db)
        # the selection must now sit below the projection
        assert isinstance(optimized, Project)
        assert isinstance(optimized.input, Select)

    def test_push_selection_through_union(self, db):
        query = Select(
            Union(RelScan("R"), RelScan("R")), ge(col("v"), 40)
        )
        optimized = assert_equivalent(query, db)
        assert isinstance(optimized, Union)

    def test_sigma_true_removed(self, db):
        query = Select(RelScan("R"), TRUE)
        assert optimize(query) == RelScan("R")

    def test_empty_union_side_pruned(self, db):
        query = Union(
            Select(RelScan("R"), FALSE),
            RelScan("R"),
        )
        optimized = assert_equivalent(query, db)
        assert optimized == RelScan("R")

    def test_singleton_union_kept(self, db):
        query = Union(RelScan("R"), Singleton(SCHEMA, (99, 990)))
        optimized = assert_equivalent(query, db)
        assert isinstance(optimized, Union)

    def test_identity_projection_collapsed(self, db):
        inner = Project(RelScan("R"), ((col("k"), "k"), (col("v") + 1, "v")))
        outer = Project(inner, ((col("k"), "k"), (col("v"), "v")))
        optimized = assert_equivalent(outer, db)
        assert operator_count(optimized) == 2

    def test_condition_simplified(self, db):
        query = Select(RelScan("R"), and_(ge(col("v"), 20), TRUE))
        optimized = optimize(query)
        assert optimized == Select(RelScan("R"), ge(col("v"), 20))


class TestReenactmentStacks:
    def make_history(self, n):
        statements = [
            UpdateStatement(
                "R", {"v": col("v") + 1}, ge(col("v"), i * 10)
            )
            for i in range(n)
        ]
        return History(tuple(statements))

    def test_projection_stack_partially_collapses(self, db):
        """Self-referencing CASE chains merge only while the growth
        budget allows (see the optimizer docstring); the stack must
        shrink but full collapse would blow the expression up 2^U-fold."""
        history = self.make_history(6)
        query = reenactment_query(history, "R", {"R": SCHEMA})
        assert operator_count(query) == 7
        optimized = assert_equivalent(query, db)
        assert operator_count(optimized) < 7

    def test_non_self_referencing_stack_fully_collapses(self, db):
        """Projections whose outputs reference each attribute once merge
        all the way down."""
        statements = [
            UpdateStatement("R", {"v": col("k") + i}, ge(col("k"), 0))
            for i in range(5)
        ]
        query = reenactment_query(
            History(tuple(statements)), "R", {"R": SCHEMA}
        )
        optimized = assert_equivalent(query, db)
        assert operator_count(optimized) == 2

    def test_deep_stack_equivalence(self, db):
        history = self.make_history(12)
        query = reenactment_query(history, "R", {"R": SCHEMA})
        assert_equivalent(query, db)

    def test_engine_optimization_flag(self, db):
        """The engine produces identical deltas with and without the
        optimizer."""
        from repro.core import (
            HistoricalWhatIfQuery,
            Mahif,
            MahifConfig,
            Method,
            Replace,
        )

        history = self.make_history(5)
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"v": col("v") + 2},
                                        ge(col("v"), 0))),),
        )
        plain = Mahif(MahifConfig(optimize_queries=False)).answer(
            query, Method.R
        )
        optimized = Mahif(MahifConfig(optimize_queries=True)).answer(
            query, Method.R
        )
        assert plain.delta == optimized.delta
