"""Shard-invariance differential fuzz: sharded == unsharded, everywhere.

The sharded execution subsystem (DESIGN.md, "Sharded execution") claims
bit-identical deltas for any shard count, partition scheme, backend and
method.  This suite fuzzes that claim along every axis:

* shard counts ``SHARD_COUNTS = (1, 2, 8)`` — including more shards than
  most generated relations have rows (empty shards + skip routing),
* all 4 execution backends x all 5 engine methods, hash and range
  partitioning, serial and pooled shard evaluation,
* histories with ``INSERT ... SELECT`` (the unshardable fallback path)
  and insert-heavy modifications (singleton protection + the
  insert-collision routing relaxation),
* the batched answering path with ``shards > 1``,
* bag semantics: partitioned history replay (inserts routed to exactly
  one shard) and :func:`merge_bag_deltas` against the unsharded oracle.

Case budget (unscaled defaults, checked by ``test_case_budget``): at
least 200 generated (query, method, backend, shard-count) cases.
Seeded via ``MAHIF_FUZZ_SEED``; ``MAHIF_FUZZ_SCALE`` shrinks CI smoke
runs (see ``fuzz_differential``).
"""

import pytest

from fuzz_differential import (
    SHARD_COUNTS,
    fresh_rng,
    random_history,
    random_hwq,
    random_hwq_batch,
    random_typed_database,
    scaled,
)

from repro.core import Mahif, MahifConfig, Method
from repro.relational import (
    BagDatabase,
    bag_delta,
    execute_history_bag,
    merge_bag_deltas,
    merge_shard_bags,
    partition_bag,
    stable_shard_of,
)
from repro.relational.statements import InsertQuery, InsertTuple

BACKENDS = ("interpreted", "compiled", "sqlite", "vector")

N_HWQS = 5
N_FALLBACK_HWQS = 3
N_BAG_REPLAYS = 20


def test_case_budget():
    """The acceptance floor: ≥ 200 shard-differential cases by default."""
    assert (
        (N_HWQS + N_FALLBACK_HWQS)
        * len(Method)
        * len(BACKENDS)
        * len(SHARD_COUNTS)
        >= 200
    )


def _deltas_by_config(query, method, backend, shards, scheme, workers=0):
    config = MahifConfig(
        backend=backend,
        shards=shards,
        shard_scheme=scheme,
        shard_workers=workers,
    )
    return Mahif(config).answer(query, method).delta


class TestShardInvariance:
    def test_all_methods_backends_shard_counts(self):
        """Bit-identical deltas for shards in {1, 2, 8}, 4 backends,
        5 methods; the partition scheme alternates per trial."""
        rng = fresh_rng(offset=91)
        for trial in range(scaled(N_HWQS)):
            query = random_hwq(rng)
            scheme = "hash" if trial % 2 == 0 else "range"
            for method in Method:
                oracle = _deltas_by_config(
                    query, method, "interpreted", 1, scheme
                )
                for backend in BACKENDS:
                    for shards in SHARD_COUNTS:
                        delta = _deltas_by_config(
                            query, method, backend, shards, scheme
                        )
                        assert delta == oracle, (
                            f"trial {trial}: {backend}/{method.value}/"
                            f"shards={shards}/{scheme} diverged"
                        )

    def test_insert_select_histories_use_fallback_correctly(self):
        """Histories with INSERT ... SELECT make reenactment queries
        read a second relation — unshardable, so the engine must fall
        back to one exact unsharded evaluation for them."""
        rng = fresh_rng(offset=92)
        for trial in range(scaled(N_FALLBACK_HWQS)):
            query = random_hwq(rng, allow_insert_query=True)
            for method in Method:
                oracle = _deltas_by_config(
                    query, method, "interpreted", 1, "hash"
                )
                for backend in BACKENDS:
                    for shards in SHARD_COUNTS:
                        delta = _deltas_by_config(
                            query, method, backend, shards, "hash"
                        )
                        assert delta == oracle, (
                            f"trial {trial}: fallback {backend}/"
                            f"{method.value}/shards={shards} diverged"
                        )

    def test_pooled_shard_evaluation_matches_serial(self):
        """shard_workers > 1 (process pool for compiled, thread pool
        for sqlite) changes scheduling, never answers."""
        rng = fresh_rng(offset=93)
        query = random_hwq(rng)
        for backend in ("compiled", "sqlite"):
            oracle = _deltas_by_config(
                query, Method.R_PS_DS, backend, 1, "range"
            )
            delta = _deltas_by_config(
                query, Method.R_PS_DS, backend, 2, "range", workers=2
            )
            assert delta == oracle

    def test_batched_answering_with_shards(self):
        """answer_batch with shards > 1 equals the unsharded sequential
        loop, including the shared-plan cache-hit path."""
        rng = fresh_rng(offset=94)
        queries = random_hwq_batch(rng, size=4)
        for backend in BACKENDS:
            expected = [
                Mahif(MahifConfig(backend=backend)).answer(
                    q, Method.R_PS_DS
                ).delta
                for q in queries
            ]
            for shards in (2, 8):
                config = MahifConfig(backend=backend, shards=shards)
                results = Mahif(config).answer_batch(
                    queries, Method.R_PS_DS
                )
                assert [r.delta for r in results] == expected, (
                    f"{backend}/shards={shards} batch diverged"
                )


class TestBagShardInvariance:
    """Bag semantics: partitioned replay + merged signed deltas equal
    the unsharded oracle.  Inserts are routed to exactly one shard
    (multiplicities are additive, so evaluating a constant insert per
    shard would multiply it by the shard count — the bag analogue of
    the set path's singleton protection)."""

    @staticmethod
    def _replay_sharded(history, bag_db, shards, scheme):
        names = bag_db.relation_names()
        shard_dbs = [
            BagDatabase(
                {
                    name: partition_bag(bag_db[name], shards, scheme)[s]
                    for name in names
                }
            )
            for s in range(shards)
        ]
        for stmt in history:
            if isinstance(stmt, InsertQuery):
                raise AssertionError(
                    "bag shard replay generator must not emit I_Q"
                )
            if isinstance(stmt, InsertTuple):
                target = stable_shard_of(tuple(stmt.values), shards)
                shard_dbs[target] = stmt_apply_bag(stmt, shard_dbs[target])
            else:
                shard_dbs = [
                    stmt_apply_bag(stmt, shard_db)
                    for shard_db in shard_dbs
                ]
        return shard_dbs

    def test_partitioned_replay_and_delta_merge(self):
        rng = fresh_rng(offset=95)
        for trial in range(scaled(N_BAG_REPLAYS)):
            db, types_by_name = random_typed_database(rng, rows=8)
            history = random_history(rng, db, types_by_name)
            modified = random_history(rng, db, types_by_name)
            scheme = "hash" if trial % 2 == 0 else "range"
            shards = 2 if trial % 3 else 5
            bag_db = BagDatabase.from_set_database(db)

            full_h = execute_history_bag(history, bag_db)
            full_m = execute_history_bag(modified, bag_db)
            shard_h = self._replay_sharded(history, bag_db, shards, scheme)
            shard_m = self._replay_sharded(modified, bag_db, shards, scheme)

            for name in bag_db.relation_names():
                merged = merge_shard_bags(
                    [shard_db[name] for shard_db in shard_h]
                )
                assert dict(merged.multiplicities) == dict(
                    full_h[name].multiplicities
                ), f"trial {trial}: sharded bag replay diverged on {name}"
                per_shard = [
                    bag_delta(h[name], m[name])
                    for h, m in zip(shard_h, shard_m)
                ]
                assert merge_bag_deltas(per_shard) == bag_delta(
                    full_h[name], full_m[name]
                ), f"trial {trial}: merged bag delta diverged on {name}"


def stmt_apply_bag(stmt, bag_db):
    from repro.relational import apply_statement_bag

    return apply_statement_bag(stmt, bag_db)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
