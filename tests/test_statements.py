"""Unit tests for update statements (Equations 1-4) and tuple independence
(Definition 1 / Lemma 1)."""

import itertools

import pytest

from repro import Database, Relation, Schema
from repro.relational.algebra import Project, RelScan, Select
from repro.relational.expressions import FALSE, TRUE, col, eq, ge, gt, lit
from repro.relational.schema import SchemaError
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
    is_no_op,
    is_tuple_independent,
    no_op,
)


@pytest.fixture
def db():
    return Database(
        {
            "R": Relation.from_rows(
                Schema.of("k", "v"), [(1, 10), (2, 20), (3, 30)]
            ),
            "S": Relation.from_rows(Schema.of("x", "y"), [(2, 200)]),
        }
    )


class TestUpdate:
    def test_updates_matching_tuples_only(self, db):
        stmt = UpdateStatement("R", {"v": col("v") + 1}, ge(col("v"), 20))
        result = stmt.apply(db)
        assert set(result["R"]) == {(1, 10), (2, 21), (3, 31)}

    def test_set_evaluated_over_original_tuple(self, db):
        # Eq (1): Set(t) uses the pre-update values, even with multiple
        # clauses referencing each other.
        stmt = UpdateStatement(
            "R", {"k": col("v"), "v": col("k")}, TRUE
        )
        result = stmt.apply(db)
        assert (10, 1) in result["R"]

    def test_requires_set_clause(self):
        with pytest.raises(ValueError):
            UpdateStatement("R", {})

    def test_unknown_attribute_rejected(self, db):
        stmt = UpdateStatement("R", {"zzz": lit(0)}, TRUE)
        with pytest.raises(SchemaError):
            stmt.apply(db)

    def test_set_expression_for_defaults_to_identity(self):
        stmt = UpdateStatement("R", {"v": lit(0)}, TRUE)
        assert stmt.set_expression_for("k") == col("k")
        assert stmt.set_expression_for("v") == lit(0)

    def test_merging_updates_shrink_set_semantics(self, db):
        # two tuples mapped onto the same output merge under set semantics
        stmt = UpdateStatement("R", {"k": lit(0), "v": lit(0)}, TRUE)
        assert len(stmt.apply(db)["R"]) == 1

    def test_other_relations_untouched(self, db):
        stmt = UpdateStatement("R", {"v": lit(0)}, TRUE)
        assert stmt.apply(db)["S"] is db["S"]


class TestDelete:
    def test_deletes_matching(self, db):
        stmt = DeleteStatement("R", ge(col("v"), 20))
        assert set(stmt.apply(db)["R"]) == {(1, 10)}

    def test_delete_all(self, db):
        assert len(DeleteStatement("R", TRUE).apply(db)["R"]) == 0

    def test_no_op_delete(self, db):
        assert set(no_op("R").apply(db)["R"]) == set(db["R"])


class TestInserts:
    def test_insert_tuple(self, db):
        stmt = InsertTuple("R", (4, 40))
        assert (4, 40) in stmt.apply(db)["R"]

    def test_insert_existing_tuple_is_noop_under_sets(self, db):
        stmt = InsertTuple("R", (1, 10))
        assert len(stmt.apply(db)["R"]) == 3

    def test_insert_query(self, db):
        query = Project(
            Select(RelScan("S"), gt(col("y"), 0)),
            ((col("x"), "k"), (col("y"), "v")),
        )
        stmt = InsertQuery("R", query)
        result = stmt.apply(db)
        assert (2, 200) in result["R"]
        assert len(result["R"]) == 4

    def test_insert_query_arity_mismatch(self, db):
        stmt = InsertQuery("R", Project(RelScan("S"), ((col("x"), "x"),)))
        with pytest.raises(SchemaError):
            stmt.apply(db)

    def test_accessed_relations(self, db):
        stmt = InsertQuery("R", RelScan("S"))
        assert stmt.accessed_relations() == {"R", "S"}
        assert InsertTuple("R", (1, 1)).accessed_relations() == {"R"}


class TestClassification:
    def test_no_op_detection(self):
        assert is_no_op(no_op("R"))
        assert is_no_op(DeleteStatement("R", FALSE))
        assert is_no_op(UpdateStatement("R", {"v": lit(0)}, FALSE))
        assert not is_no_op(DeleteStatement("R", TRUE))
        assert not is_no_op(InsertTuple("R", (1, 2)))

    def test_tuple_independence_classification(self):
        assert is_tuple_independent(UpdateStatement("R", {"v": lit(0)}, TRUE))
        assert is_tuple_independent(DeleteStatement("R", TRUE))
        assert is_tuple_independent(InsertTuple("R", (1,)))
        assert not is_tuple_independent(InsertQuery("R", RelScan("S")))


class TestTupleIndependenceSemantics:
    """Executable version of Lemma 1: u(D) == ∪_{t∈D} u({t})."""

    @pytest.mark.parametrize(
        "stmt",
        [
            UpdateStatement("R", {"v": col("v") + 5}, ge(col("v"), 20)),
            UpdateStatement("R", {"k": col("k") * 2}, eq(col("k"), 2)),
            DeleteStatement("R", ge(col("v"), 20)),
            InsertTuple("R", (9, 90)),
        ],
        ids=["update", "key-update", "delete", "insert"],
    )
    def test_lemma1_union_decomposition(self, db, stmt):
        whole = stmt.apply(db)["R"]
        pieces = set()
        for t in db["R"]:
            single = db.with_relation(
                "R", Relation(db["R"].schema, frozenset({t}))
            )
            pieces |= set(stmt.apply(single)["R"])
        # inserts add their tuple in every singleton world; dedupe matches
        assert set(whole) == pieces

    def test_insert_query_counterexample(self):
        """The paper's counterexample: I_Q is NOT tuple independent."""
        db = Database(
            {
                "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                "S": Relation.from_rows(Schema.of("c"), [(2,)]),
            }
        )
        from repro.relational.algebra import Join

        query = Project(
            Join(RelScan("R"), RelScan("S"), eq(col("b"), col("c"))),
            ((col("b"), "a"), (col("b"), "b")),
        )
        stmt = InsertQuery("R", query)
        whole = set(stmt.apply(db)["R"])
        assert whole == {(1, 2), (2, 2)}

        pieces = set()
        worlds = [
            Database(
                {
                    "R": Relation.from_rows(Schema.of("a", "b"), [(1, 2)]),
                    "S": Relation.from_rows(Schema.of("c"), []),
                }
            ),
            Database(
                {
                    "R": Relation.from_rows(Schema.of("a", "b"), []),
                    "S": Relation.from_rows(Schema.of("c"), [(2,)]),
                }
            ),
        ]
        for world in worlds:
            pieces |= set(stmt.apply(world)["R"])
        assert whole != pieces  # {(1,2),(2,2)} vs {(1,2)}
