"""Round-trip tests: ``parser -> sqlgen -> parser`` for every form.

Every statement and expression form ``sqlgen``/``to_string`` can render
in parser-compatible syntax must parse back to a structurally equal AST.
Exclusions, each deliberate:

* ``Var`` nodes render as ``$name`` — debugging surface only, not SQL;
* NaN constants can never round-trip structurally because ``Const(nan)
  != Const(nan)`` (NaN breaks reflexivity); ``to_string`` renders them
  as the semantic ``(9e999 - 9e999)`` and ``_literal`` as ``NULL``
  (SQLite stores computed NaNs as NULL);
* ``INSERT ... SELECT`` round-trips exactly for the fragment the parser
  itself can produce (``[Project] [Select] RelScan`` with conventional
  output names); other trees render as nested derived tables that are
  documentation-only.
"""

import random

import pytest

from repro.relational.algebra import Project, RelScan, Select
from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    If,
    IsNull,
    Logic,
    Not,
    col,
    evaluate,
    to_string,
)
from repro.relational.parser import parse_expression, parse_history, parse_statement
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)
from repro.relational.sqlgen import history_to_sql, statement_to_sql

# ---------------------------------------------------------------------------
# generators: every renderable, parseable form
# ---------------------------------------------------------------------------

TRICKY_STRINGS = (
    "", "x", "O'Brien", "''", 'say "hi"', "a;--b", "ünïcode", "new\nline",
)
TRICKY_FLOATS = (
    0.0, -2.5, 1e-07, 2.5e300, 1 / 3, 0.30000000000000004,
    float("inf"), float("-inf"),
)


def random_const(rng):
    roll = rng.random()
    if roll < 0.2:
        return Const(None)
    if roll < 0.35:
        return Const(rng.choice([True, False]))
    if roll < 0.55:
        return Const(rng.randint(-10**6, 10**6))
    if roll < 0.75:
        return Const(rng.choice(TRICKY_FLOATS))
    return Const(rng.choice(TRICKY_STRINGS))


def random_expr(rng, depth=3):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice([random_const(rng), Attr(rng.choice("abcd"))])
    kind = rng.randrange(6)
    if kind == 0:
        return Arith(
            rng.choice(["+", "-", "*", "/"]),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )
    if kind == 1:
        return Cmp(
            rng.choice(["=", "!=", "<", "<=", ">", ">="]),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )
    if kind == 2:
        return Logic(
            rng.choice(["and", "or"]),
            random_expr(rng, depth - 1),
            random_expr(rng, depth - 1),
        )
    if kind == 3:
        return Not(random_expr(rng, depth - 1))
    if kind == 4:
        return IsNull(random_expr(rng, depth - 1))
    return If(
        random_expr(rng, depth - 1),
        random_expr(rng, depth - 1),
        random_expr(rng, depth - 1),
    )


def random_parseable_query(rng):
    """The query fragment our parser can produce (and sqlgen re-render)."""
    tree = RelScan(rng.choice(["src", "other"]))
    if rng.random() < 0.6:
        tree = Select(tree, random_expr(rng, 2))
    if rng.random() < 0.5:
        outputs = []
        taken = set()
        for _ in range(rng.randint(1, 3)):
            expr = random_expr(rng, 2)
            # The parser's auto-naming is positional, so the implied
            # name must use the output's final position.
            name = (
                expr.name if isinstance(expr, Attr)
                else f"col_{len(outputs)}"
            )
            if name in taken:  # projections reject duplicate names
                continue
            taken.add(name)
            outputs.append((expr, name))
        if outputs:
            tree = Project(tree, tuple(outputs))
    return tree


def random_statement(rng):
    kind = rng.randrange(4)
    if kind == 0:
        clauses = {
            attribute: random_expr(rng, 2)
            for attribute in rng.sample("abcd", rng.randint(1, 3))
        }
        return UpdateStatement("rel", clauses, random_expr(rng, 2))
    if kind == 1:
        return DeleteStatement("rel", random_expr(rng, 2))
    if kind == 2:
        values = tuple(
            random_const(rng).value for _ in range(rng.randint(1, 4))
        )
        return InsertTuple("rel", values)
    return InsertQuery("rel", random_parseable_query(rng))


# ---------------------------------------------------------------------------
# expression round-trips
# ---------------------------------------------------------------------------

class TestExpressionRoundTrip:
    def test_random_expressions_round_trip(self):
        rng = random.Random(424242)
        for trial in range(400):
            expr = random_expr(rng)
            rendered = to_string(expr)
            assert parse_expression(rendered) == expr, (trial, rendered)

    @pytest.mark.parametrize("value", TRICKY_STRINGS)
    def test_string_constants(self, value):
        expr = Cmp("=", col("a"), Const(value))
        assert parse_expression(to_string(expr)) == expr

    @pytest.mark.parametrize("value", TRICKY_FLOATS)
    def test_float_constants_full_precision(self, value):
        # %g-style rendering would lose digits; repr must round-trip the
        # exact IEEE value, and inf needs the 9e999 overflow literal.
        assert parse_expression(to_string(Const(value))) == Const(value)

    def test_exponent_tokenizing(self):
        assert parse_expression("1e-07") == Const(1e-07)
        assert parse_expression("2.5E3") == Const(2500.0)
        assert parse_expression("9e999") == Const(float("inf"))

    def test_nan_renders_semantically(self):
        # Const(nan) != Const(nan), so structural round-trip is
        # impossible by construction; the rendering stays evaluable.
        rendered = to_string(Const(float("nan")))
        value = evaluate(parse_expression(rendered))
        assert value != value

    def test_nested_case_round_trips(self):
        expr = If(
            Cmp(">", col("a"), Const(0)),
            Const(1),
            If(IsNull(col("b")), Const(2), col("c")),
        )
        assert parse_expression(to_string(expr)) == expr

    def test_bool_condition_round_trips(self):
        expr = Logic("and", Const(True), Cmp("=", col("a"), Const(False)))
        assert parse_expression(to_string(expr)) == expr


# ---------------------------------------------------------------------------
# statement and history round-trips
# ---------------------------------------------------------------------------

class TestStatementRoundTrip:
    def test_random_statements_round_trip(self):
        rng = random.Random(37)
        for trial in range(300):
            stmt = random_statement(rng)
            rendered = statement_to_sql(stmt)
            assert parse_statement(rendered) == stmt, (trial, rendered)

    def test_insert_query_forms(self):
        for query in (
            RelScan("s"),
            Select(RelScan("s"), Cmp(">=", col("x"), Const(1))),
            Project(RelScan("s"), ((col("x"), "x"), (col("y"), "y"))),
            Project(
                Select(RelScan("s"), IsNull(col("x"))),
                ((Arith("+", col("x"), Const(1)), "col_0"),),
            ),
        ):
            stmt = InsertQuery("rel", query)
            assert parse_statement(statement_to_sql(stmt)) == stmt

    def test_insert_values_every_literal_kind(self):
        stmt = InsertTuple(
            "rel", (None, True, False, -3, 2.5, 1e-07, float("inf"), "O'x")
        )
        parsed = parse_statement(statement_to_sql(stmt))
        # bools render as 1/0; Python's True == 1 keeps equality exact.
        assert parsed == stmt

    def test_history_round_trip(self):
        rng = random.Random(99)
        statements = [random_statement(rng) for _ in range(20)]
        script = history_to_sql(statements)
        assert parse_history(script) == statements
