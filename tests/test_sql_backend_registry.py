"""Backend-registry edge cases: unknown names, scoping, precedence.

Covers ``repro.relational.exec.backend``: rejection of unknown backend
names at every entry point, ``use_backend`` nesting and restore-on-
exception, and the resolution precedence *call argument > engine config
> process default*.
"""

import pytest

from repro.core import Mahif, MahifConfig
from repro.relational import (
    BACKENDS,
    BACKEND_COMPILED,
    BACKEND_INTERPRETED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    Database,
    Relation,
    Schema,
    evaluate_query,
    get_default_backend,
    set_default_backend,
    use_backend,
)
from repro.relational.algebra import RelScan, Select
from repro.relational.exec import resolve_backend, sqlite_cache_info
from repro.relational.exec.sql_backend import clear_sqlite_cache
from repro.relational.expressions import col, gt


@pytest.fixture(autouse=True)
def _restore_default():
    before = get_default_backend()
    yield
    set_default_backend(before)


def make_db():
    return Database(
        {"R": Relation.from_rows(Schema.of("a"), [(1,), (-1,)])}
    )


class TestRegistry:
    def test_backends_tuple(self):
        assert BACKENDS == (
            BACKEND_COMPILED, BACKEND_INTERPRETED, BACKEND_SQLITE,
            BACKEND_VECTOR,
        )

    @pytest.mark.parametrize(
        "name", ["postgres", "", "SQLITE", "compiled ", "vectorized"]
    )
    def test_unknown_backend_rejected_everywhere(self, name):
        with pytest.raises(ValueError, match="unknown execution backend"):
            set_default_backend(name)
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend(name)
        with pytest.raises(ValueError, match="unknown execution backend"):
            with use_backend(name):
                pass  # pragma: no cover - never entered
        with pytest.raises(ValueError, match="unknown execution backend"):
            MahifConfig(backend=name)

    def test_error_message_lists_backends(self):
        with pytest.raises(ValueError) as err:
            resolve_backend("postgres")
        for known in BACKENDS:
            assert known in str(err.value)

    def test_set_default_returns_previous(self):
        first = set_default_backend("interpreted")
        assert first == get_default_backend() or first in BACKENDS
        second = set_default_backend("sqlite")
        assert second == "interpreted"


class TestUseBackendScoping:
    def test_nesting_restores_each_level(self):
        base = get_default_backend()
        with use_backend("interpreted"):
            assert get_default_backend() == "interpreted"
            with use_backend("sqlite"):
                assert get_default_backend() == "sqlite"
                with use_backend(None):  # None keeps the current scope
                    assert get_default_backend() == "sqlite"
            assert get_default_backend() == "interpreted"
        assert get_default_backend() == base

    def test_restores_on_exception(self):
        base = get_default_backend()
        with pytest.raises(RuntimeError):
            with use_backend("sqlite"):
                assert get_default_backend() == "sqlite"
                raise RuntimeError("boom")
        assert get_default_backend() == base

    def test_yields_resolved_backend(self):
        with use_backend("sqlite") as resolved:
            assert resolved == "sqlite"
        with use_backend(None) as resolved:
            assert resolved == get_default_backend()


class TestResolutionPrecedence:
    def test_call_argument_beats_scoped_default(self):
        clear_sqlite_cache()
        db = make_db()
        plan = Select(RelScan("R"), gt(col("a"), 0))
        with use_backend("interpreted"):
            assert resolve_backend(None) == "interpreted"
            # the explicit call argument wins over the scoped default —
            # observable through the sqlite connection cache filling up
            before = sqlite_cache_info()["misses"]
            result = evaluate_query(plan, db, backend="sqlite")
            assert sqlite_cache_info()["misses"] == before + 1
            assert result.tuples == frozenset({(1,)})

    def test_config_beats_process_default(self):
        # MahifConfig scopes its backend around the whole answer call
        # via use_backend; the process default is untouched afterwards.
        from repro.core import HistoricalWhatIfQuery, Replace
        from repro.relational import History
        from repro.relational.statements import UpdateStatement

        clear_sqlite_cache()
        db = Database(
            {"R": Relation.from_rows(Schema.of("a", "k"), [(1, 0), (5, 1)])}
        )
        history = History.of(
            UpdateStatement("R", {"a": col("a") + 1}, gt(col("a"), 0))
        )
        query = HistoricalWhatIfQuery(
            history,
            db,
            (Replace(1, UpdateStatement("R", {"a": col("a") + 2}, gt(col("a"), 0))),),
        )
        assert get_default_backend() == BACKEND_COMPILED
        before = sqlite_cache_info()["misses"]
        Mahif(MahifConfig(backend="sqlite")).answer(query)
        assert sqlite_cache_info()["misses"] > before
        assert get_default_backend() == BACKEND_COMPILED

    def test_none_resolves_to_process_default(self):
        set_default_backend("sqlite")
        assert resolve_backend(None) == "sqlite"
        assert resolve_backend("compiled") == "compiled"
