"""Fault-injected crash-recovery proofs for the history store.

The store claims (``src/repro/store/history_store.py``) that a crash at
*any* point of its durable write stream leaves it recoverable to a
consistent prefix of the log.  These tests prove it by simulation
instead of asserting it: the kill-at-every-byte-offset fuzz replays one
append scenario once per possible crash point — every byte of every log
record and checkpoint write, and every atomic rename — and checks that
``HistoryStore.open`` always recovers an exact prefix, never a torn or
reordered history, and that the reopened store still appends.

Scale/seed knobs match the other fuzz suites: ``MAHIF_FUZZ_SCALE``
multiplies the scenario size, ``MAHIF_FUZZ_SEED`` randomizes the
statement mix.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.relational import Database, Relation, Schema
from repro.relational.expressions import TRUE, col, ge, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)
from repro.store import (
    CountingOps,
    CrashingOps,
    FlakyOps,
    HistoryStore,
    SimulatedCrash,
    StoreError,
    encode_database,
    encode_statement,
)

_SCALE = float(os.environ.get("MAHIF_FUZZ_SCALE", "1.0"))
_SEED = int(os.environ.get("MAHIF_FUZZ_SEED", "20220614"))

CHECKPOINT_INTERVAL = 2


def make_db() -> Database:
    return Database(
        {"R": Relation.from_rows(Schema.of("k", "v"), [(1, 10), (2, 20)])}
    )


def make_statements(count: int) -> list:
    """A small mixed workload: updates, an insert, a delete."""
    rng = random.Random(_SEED)
    statements = []
    for i in range(count):
        kind = rng.choice(("update", "update", "insert", "delete"))
        if kind == "update":
            statements.append(
                UpdateStatement(
                    "R", {"v": col("v") + rng.randrange(1, 5)}, TRUE
                )
            )
        elif kind == "insert":
            statements.append(
                InsertTuple("R", (100 + i, rng.randrange(50)))
            )
        else:
            statements.append(
                DeleteStatement("R", ge(col("v"), lit(1000)))
            )
    return statements


def run_scenario(path, ops, statements) -> None:
    """Create a store (crash-free) then append ``statements`` under
    ``ops``; the injected crash (if any) happens inside an append."""
    store = HistoryStore.create(
        path,
        make_db(),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        sync=True,
        ops=ops,
    )
    ops.arm()
    try:
        for stmt in statements:
            store.append(stmt)
    finally:
        # A simulated crash abandons the handle like a real one would —
        # nothing unflushed is pending by construction, so closing the
        # raw fh (not via ops: a dead ops raises) only releases the fd.
        try:
            store._log_fh.close()
        except OSError:
            pass


def expected_prefix_states(statements):
    """Every databases state along the scenario, index = prefix length."""
    states = [make_db()]
    for stmt in statements:
        states.append(stmt.apply(states[-1]))
    return states


def test_kill_at_every_byte_offset_recovers_consistent_prefix(tmp_path):
    """THE crash-recovery contract: for every byte offset of the durable
    write stream, dying there leaves a store that reopens to an exact
    prefix of the appended history — correct statements, correct state,
    still appendable."""
    statements = make_statements(max(2, int(4 * _SCALE)))
    encoded = [encode_statement(s) for s in statements]
    states = expected_prefix_states(statements)

    counting = CountingOps()
    run_scenario(tmp_path / "probe", counting, statements)
    total_bytes = counting.byte_count
    assert total_bytes > 0

    for offset in range(total_bytes):
        target = tmp_path / f"crash-{offset}"
        ops = CrashingOps(byte_budget=offset)
        with pytest.raises(SimulatedCrash):
            run_scenario(target, ops, statements)
        assert ops.dead

        with HistoryStore.open(target) as reopened:
            recovered = list(reopened.history())
            n = len(recovered)
            assert n <= len(statements)
            assert [encode_statement(s) for s in recovered] == encoded[:n]
            assert reopened.current == states[n]
            # Checkpoint invariant: every grid version within the
            # recovered log is present (rebuilt if the crash tore it).
            grid = set(range(0, n + 1, CHECKPOINT_INTERVAL))
            assert grid <= set(reopened.checkpoint_versions())
            # The recovered store is fully live: appending extends the
            # prefix without disturbing it.
            more = UpdateStatement("R", {"v": col("v") + 1}, TRUE)
            reopened.append(more)
            assert len(reopened) == n + 1
            assert reopened.current == more.apply(states[n])


def test_crash_on_checkpoint_rename_leaves_store_consistent(tmp_path):
    """A torn checkpoint — temp file fully written, rename never lands —
    costs nothing: the log is ahead of the checkpoint, and open()
    rebuilds the missing snapshot from it."""
    statements = make_statements(6)
    encoded = [encode_statement(s) for s in statements]
    states = expected_prefix_states(statements)

    counting = CountingOps()
    run_scenario(tmp_path / "probe", counting, statements)
    assert counting.replace_count >= 2  # interval-2 over 6 appends

    for nth in range(1, counting.replace_count + 1):
        target = tmp_path / f"torn-{nth}"
        with pytest.raises(SimulatedCrash):
            run_scenario(
                target, CrashingOps(crash_on_replace=nth), statements
            )
        with HistoryStore.open(target) as reopened:
            recovered = list(reopened.history())
            n = len(recovered)
            assert [encode_statement(s) for s in recovered] == encoded[:n]
            assert reopened.current == states[n]
            grid = set(range(0, n + 1, CHECKPOINT_INTERVAL))
            assert grid <= set(reopened.checkpoint_versions())


def test_crash_during_create_yields_unopenable_or_empty_store(tmp_path):
    """Dying inside create() may leave anything from an empty directory
    to a complete store; open() must either recover a whole empty store
    or refuse with StoreError — never crash, never invent statements."""
    counting = CountingOps()
    counting.arm()  # count create itself this time
    HistoryStore.create(
        tmp_path / "probe",
        make_db(),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        sync=True,
        ops=counting,
    ).close()
    assert counting.byte_count > 0

    for offset in range(counting.byte_count):
        target = tmp_path / f"create-{offset}"
        ops = CrashingOps(byte_budget=offset)
        ops.arm()
        with pytest.raises(SimulatedCrash):
            HistoryStore.create(
                target,
                make_db(),
                checkpoint_interval=CHECKPOINT_INTERVAL,
                sync=True,
                ops=ops,
            )
        try:
            store = HistoryStore.open(target)
        except StoreError:
            continue  # refused cleanly: the caller skips the bad store
        with store:
            assert len(store) == 0
            assert store.current == make_db()


def test_transient_append_failure_rolls_back_and_retries(tmp_path):
    """A flaky disk fails an append; the store rolls the log back,
    raises a *retryable* StoreError, and the very same append succeeds
    on retry — with the on-disk log byte-identical to a never-failed
    run."""
    statements = make_statements(4)
    flaky = FlakyOps(failures=1, armed=False)
    store = HistoryStore.create(
        tmp_path / "flaky",
        make_db(),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        ops=flaky,
    )
    store.append(statements[0])
    flaky.arm()
    with pytest.raises(StoreError) as excinfo:
        store.append(statements[1])
    assert excinfo.value.retryable
    assert flaky.raised == 1
    assert len(store) == 1  # the failed append left no trace

    store.append(statements[1])  # the retry
    for stmt in statements[2:]:
        store.append(stmt)
    assert len(store) == len(statements)
    store.close()

    clean = HistoryStore.create(
        tmp_path / "clean",
        make_db(),
        checkpoint_interval=CHECKPOINT_INTERVAL,
    )
    for stmt in statements:
        clean.append(stmt)
    clean.close()
    assert (
        (tmp_path / "flaky" / "log.jsonl").read_bytes()
        == (tmp_path / "clean" / "log.jsonl").read_bytes()
    )

    with HistoryStore.open(tmp_path / "flaky") as reopened:
        assert [encode_statement(s) for s in reopened.history()] == [
            encode_statement(s) for s in statements
        ]


def test_flaky_every_op_eventually_succeeds(tmp_path):
    """Each write-side op kind (write/flush/fsync/replace) can be the
    transient failure; appends stay retryable until the disk heals."""
    statements = make_statements(3)
    for failures in (1, 2, 3, 5):
        flaky = FlakyOps(failures=failures, armed=False)
        store = HistoryStore.create(
            tmp_path / f"f{failures}",
            make_db(),
            checkpoint_interval=CHECKPOINT_INTERVAL,
            sync=True,  # exercise the fsync path too
            ops=flaky,
        )
        flaky.arm()
        flaky_left = failures
        for stmt in statements:
            while True:
                try:
                    store.append(stmt)
                    break
                except StoreError as exc:
                    assert exc.retryable
                    flaky_left -= 1
                    assert flaky_left >= 0, "more failures than injected"
        assert len(store) == len(statements)
        assert store.current == expected_prefix_states(statements)[-1]
        store.close()


def test_sync_mode_fsyncs_log_and_directory(tmp_path):
    """Durability accounting: with sync=True every append fsyncs the
    log, and every checkpoint rename fsyncs the store directory; with
    sync=False neither ever happens."""
    statements = make_statements(4)

    synced = CountingOps()
    run_scenario(tmp_path / "synced", synced, statements)
    # >= one log fsync per append, plus the checkpoint temp-file fsyncs.
    assert synced.fsync_count >= len(statements)
    # 2 interval checkpoints over 4 appends, each fsyncing the dir.
    assert synced.dir_fsync_count >= 2

    relaxed = CountingOps()
    store = HistoryStore.create(
        tmp_path / "relaxed",
        make_db(),
        checkpoint_interval=CHECKPOINT_INTERVAL,
        sync=False,
        ops=relaxed,
    )
    relaxed.arm()
    for stmt in statements:
        store.append(stmt)
    store.close()
    assert relaxed.fsync_count == 0
    assert relaxed.dir_fsync_count == 0
    assert not store.sync


def test_failed_rollback_marks_store_failed(tmp_path, monkeypatch):
    """If the roll-back after a failed append write itself fails, the
    store refuses every further operation instead of serving a state
    that disagrees with its disk."""
    store = HistoryStore.create(
        tmp_path / "s", make_db(), checkpoint_interval=8
    )
    store.append(UpdateStatement("R", {"v": col("v") + 1}, TRUE))

    class DoomedOps(FlakyOps):
        def open(self, path, mode):
            raise OSError(5, "injected reopen failure")

    store._ops = DoomedOps(failures=1)
    with pytest.raises(StoreError):
        store.append(UpdateStatement("R", {"v": col("v") + 2}, TRUE))
    with pytest.raises(StoreError, match="store failed"):
        store.append(UpdateStatement("R", {"v": col("v") + 3}, TRUE))
    with pytest.raises(StoreError, match="store failed"):
        store._check_open()
    # The disk still holds the durable prefix; a reopen recovers it.
    with HistoryStore.open(tmp_path / "s") as reopened:
        assert len(reopened) == 1


def test_recovered_log_is_clean_prefix_on_disk(tmp_path):
    """After recovery the log *file* ends exactly at the last good
    record — no torn bytes left for the next append to corrupt."""
    statements = make_statements(3)
    counting = CountingOps()
    run_scenario(tmp_path / "probe", counting, statements)

    # Crash mid-way through the stream (somewhere inside a record).
    offset = counting.byte_count // 2
    target = tmp_path / "torn"
    with pytest.raises(SimulatedCrash):
        run_scenario(target, CrashingOps(byte_budget=offset), statements)
    with HistoryStore.open(target) as store:
        n = len(store)
    raw = (target / "log.jsonl").read_bytes()
    lines = raw.decode("utf-8").splitlines()
    assert len(lines) == n
    assert raw == b"" or raw.endswith(b"\n")
    for line in lines:
        json.loads(line)  # every remaining record parses
