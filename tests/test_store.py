"""Persistent history store: codec round-trips, checkpoint policy,
crash-safe truncated-tail recovery."""

import json
import math

import pytest

from repro.relational import (
    BagDatabase,
    BagRelation,
    Database,
    History,
    Relation,
    Schema,
)
from repro.relational.algebra import (
    Difference,
    Join,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from repro.relational.bag import execute_history_bag
from repro.relational.expressions import (
    FALSE,
    TRUE,
    Attr,
    Const,
    If,
    IsNull,
    Not,
    Var,
    and_,
    col,
    eq,
    ge,
    lit,
    or_,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)
from repro.store import (
    CodecError,
    HistoryStore,
    StoreError,
    decode_database,
    decode_expr,
    decode_statement,
    encode_database,
    encode_expr,
    encode_statement,
)


def make_db():
    return Database(
        {"R": Relation.from_rows(Schema.of("k", "v"), [(1, 10), (2, 20)])}
    )


def update_v(delta):
    return UpdateStatement("R", {"v": col("v") + delta}, TRUE)


#: One of each statement type, covering every expression node kind.
STATEMENT_ZOO = [
    UpdateStatement(
        "R",
        {
            "v": If(
                IsNull(col("v")), lit(0), col("v") * 2 - (col("k") / 3)
            ),
        },
        and_(ge(col("v"), 10), Not(eq(col("k"), lit("x")))),
    ),
    DeleteStatement("R", ge(col("v"), lit(2.5))),
    DeleteStatement("R", FALSE),  # the padding no-op
    InsertTuple("R", (3, 30)),
    InsertTuple("R", (None, True)),  # NULL + boolean survive
    InsertQuery(
        "R",
        Project(
            Select(
                Union(
                    RelScan("R"),
                    Difference(RelScan("R"), RelScan("R")),
                ),
                ge(col("v"), 15),
            ),
            ((col("k"), "k"), (col("v") + 100, "v")),
        ),
    ),
    InsertQuery(
        "R",
        Project(
            Join(
                RelScan("R"),
                Singleton(Schema.of("k2"), (1,)),
                eq(col("k"), col("k2")),
            ),
            ((col("k") + 50, "k"), (col("v"), "v")),
        ),
    ),
]

#: Statements that only exist symbolically (solver variables) — they
#: round-trip through the codec but cannot be applied to a database.
SYMBOLIC_ZOO = [
    UpdateStatement("R", {"v": Var("y") + 1}, or_(TRUE, FALSE)),
]


class TestCodecRoundTrip:
    @pytest.mark.parametrize(
        "stmt", STATEMENT_ZOO + SYMBOLIC_ZOO, ids=lambda s: repr(s)[:60]
    )
    def test_every_statement_type_round_trips(self, stmt):
        payload = json.loads(json.dumps(encode_statement(stmt)))
        assert decode_statement(payload) == stmt

    def test_round_trip_preserves_constant_types(self):
        """bool vs int vs float distinctions a SQL round trip loses."""
        for value in (True, False, 1, 0, 1.0, -2.5, "x", None):
            back = decode_expr(
                json.loads(json.dumps(encode_expr(Const(value))))
            )
            assert back == Const(value)
            assert type(back.value) is type(value)

    def test_round_trip_non_finite_floats(self):
        inf = decode_expr(encode_expr(Const(float("inf"))))
        assert inf.value == float("inf")
        nan = decode_expr(
            json.loads(json.dumps(encode_expr(Const(float("nan")))))
        )
        assert math.isnan(nan.value)

    def test_set_snapshot_round_trips(self):
        db = make_db()
        back = decode_database(json.loads(json.dumps(encode_database(db))))
        assert isinstance(back, Database)
        assert back.same_contents(db)
        assert back.schema_of("R") == db.schema_of("R")

    def test_bag_snapshot_round_trips(self):
        bag = BagDatabase(
            {
                "R": BagRelation(
                    Schema.of("k", "v"), {(1, 10): 3, (2, 20): 1}
                )
            }
        )
        back = decode_database(json.loads(json.dumps(encode_database(bag))))
        assert isinstance(back, BagDatabase)
        assert back.same_contents(bag)

    @pytest.mark.parametrize("stmt", STATEMENT_ZOO, ids=lambda s: repr(s)[:60])
    def test_decoded_statement_applies_identically_set_and_bag(self, stmt):
        """The decoded statement acts exactly like the original under
        both set and bag semantics."""
        back = decode_statement(
            json.loads(json.dumps(encode_statement(stmt)))
        )
        db = make_db()
        assert back.apply(db).same_contents(stmt.apply(db))
        bag = BagDatabase(
            {"R": BagRelation(Schema.of("k", "v"), {(1, 10): 2, (2, 20): 1})}
        )
        assert execute_history_bag(
            History.of(back), bag
        ).same_contents(execute_history_bag(History.of(stmt), bag))

    def test_unknown_payloads_raise(self):
        with pytest.raises(CodecError):
            decode_expr({"e": "nope"})
        with pytest.raises(CodecError):
            decode_statement({"s": "nope"})
        with pytest.raises(CodecError):
            decode_statement([1, 2])
        with pytest.raises(CodecError):
            decode_database({"kind": "nope", "relations": {}})


class TestHistoryStore:
    def test_create_append_reopen(self, tmp_path):
        path = tmp_path / "store"
        with HistoryStore.create(path, make_db(), checkpoint_interval=3) as s:
            for i in range(7):
                s.append(update_v(i + 1))
            history = s.history()
            final = s.current
        with HistoryStore.open(path) as reopened:
            assert reopened.checkpoint_interval == 3
            assert reopened.history() == history
            assert reopened.current.same_contents(final)
            assert reopened.version_count == 8

    def test_as_of_matches_eager_replay_with_bounded_cost(self, tmp_path):
        db = make_db()
        history = History.of(*[update_v(i + 1) for i in range(10)])
        with HistoryStore.create(
            tmp_path / "s", db, checkpoint_interval=4
        ) as store:
            store.append_history(history)
            eager = list(history.execute_with_snapshots(db))
            for version in range(11):
                assert store.replay_cost(version) < 4
                assert store.as_of(version).same_contents(eager[version])
            assert store.checkpoint_versions() == (0, 4, 8)
            with pytest.raises(StoreError):
                store.as_of(11)
            with pytest.raises(StoreError):
                store.as_of(-1)

    def test_as_of_after_reopen(self, tmp_path):
        db = make_db()
        history = History.of(*[update_v(i + 1) for i in range(9)])
        path = tmp_path / "s"
        with HistoryStore.create(path, db, checkpoint_interval=4) as store:
            store.append_history(history)
        eager = list(history.execute_with_snapshots(db))
        with HistoryStore.open(path) as store:
            for version in (0, 3, 4, 5, 8, 9):
                assert store.replay_cost(version) < 4
                assert store.as_of(version).same_contents(eager[version])

    def test_every_statement_type_survives_the_log(self, tmp_path):
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db) as store:
            for stmt in STATEMENT_ZOO:
                store.append(stmt)
        with HistoryStore.open(path) as store:
            assert list(store.history()) == STATEMENT_ZOO
            assert store.current.same_contents(
                History(tuple(STATEMENT_ZOO)).execute(db)
            )

    def test_truncated_tail_is_recovered(self, tmp_path):
        path = tmp_path / "s"
        with HistoryStore.create(path, make_db(), checkpoint_interval=2) as s:
            for i in range(5):
                s.append(update_v(i + 1))
        log = path / "log.jsonl"
        raw = log.read_bytes()
        # Simulate a crash mid-append: drop half of the last record.
        log.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2])
        with HistoryStore.open(path) as store:
            assert len(store) == 4  # last record lost, prefix intact
            expected = History.of(
                *[update_v(i + 1) for i in range(4)]
            ).execute(make_db())
            assert store.current.same_contents(expected)
            # the store keeps accepting appends after recovery
            store.append(update_v(99))
            assert len(store) == 5
        with HistoryStore.open(path) as store:
            assert len(store) == 5

    def test_corrupt_middle_record_truncates_from_there(self, tmp_path):
        path = tmp_path / "s"
        with HistoryStore.create(path, make_db(), checkpoint_interval=2) as s:
            for i in range(6):
                s.append(update_v(i + 1))
        log = path / "log.jsonl"
        lines = log.read_bytes().splitlines(True)
        lines[3] = b'{"i": 4, "stmt": {"s": "garbage"}}\n'
        log.write_bytes(b"".join(lines))
        with HistoryStore.open(path) as store:
            # records 4..6 dropped; checkpoints beyond the log pruned
            assert len(store) == 3
            assert all(v <= 3 for v in store.checkpoint_versions())

    def test_stale_checkpoints_are_discarded_on_recovery(self, tmp_path):
        path = tmp_path / "s"
        with HistoryStore.create(path, make_db(), checkpoint_interval=2) as s:
            for i in range(4):
                s.append(update_v(i + 1))
        log = path / "log.jsonl"
        lines = log.read_bytes().splitlines(True)
        log.write_bytes(b"".join(lines[:1]))  # history shrinks to 1 stmt
        with HistoryStore.open(path) as store:
            assert len(store) == 1
            assert store.checkpoint_versions() == (0,)
            assert store.current.same_contents(
                update_v(1).apply(make_db())
            )

    def test_create_refuses_existing_store(self, tmp_path):
        path = tmp_path / "s"
        HistoryStore.create(path, make_db()).close()
        with pytest.raises(StoreError):
            HistoryStore.create(path, make_db())

    def test_open_missing_or_foreign_directory(self, tmp_path):
        with pytest.raises(StoreError):
            HistoryStore.open(tmp_path / "nope")
        (tmp_path / "foreign").mkdir()
        (tmp_path / "foreign" / "META.json").write_text('{"format": "other"}')
        with pytest.raises(StoreError):
            HistoryStore.open(tmp_path / "foreign")

    def test_closed_store_rejects_appends(self, tmp_path):
        store = HistoryStore.create(tmp_path / "s", make_db())
        store.close()
        with pytest.raises(StoreError):
            store.append(update_v(1))

    def test_versions_iterates_lazily(self, tmp_path):
        import types

        with HistoryStore.create(tmp_path / "s", make_db()) as store:
            store.append(update_v(1))
            chain = store.versions()
            assert isinstance(chain, types.GeneratorType)
            assert [v for v, _ in chain] == [0, 1]

    def test_checkpoint_interval_validation(self, tmp_path):
        with pytest.raises(StoreError):
            HistoryStore.create(tmp_path / "s", make_db(), checkpoint_interval=0)


class TestCheckpointBackfill:
    def test_lost_checkpoint_is_backfilled_on_open(self, tmp_path):
        """A checkpoint lost to a crash (log record durable, rename not
        reached) is rebuilt on open, restoring the <K replay bound."""
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db, checkpoint_interval=4) as store:
            store.append_history(
                History.of(*[update_v(i + 1) for i in range(9)])
            )
            assert store.checkpoint_versions() == (0, 4, 8)
        (path / "checkpoints" / "ckpt-00000004.json").unlink()
        with HistoryStore.open(path) as store:
            assert store.checkpoint_versions() == (0, 4, 8)
            eager = list(
                History.of(
                    *[update_v(i + 1) for i in range(9)]
                ).execute_with_snapshots(db)
            )
            for version in range(10):
                assert store.replay_cost(version) < 4
                assert store.as_of(version).same_contents(eager[version])

    def test_all_interior_checkpoints_lost(self, tmp_path):
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db, checkpoint_interval=2) as store:
            store.append_history(
                History.of(*[update_v(i + 1) for i in range(6)])
            )
        for ckpt in (path / "checkpoints").glob("ckpt-*.json"):
            if not ckpt.name.endswith("00000000.json"):
                ckpt.unlink()
        with HistoryStore.open(path) as store:
            assert store.checkpoint_versions() == (0, 2, 4, 6)
            assert all(store.replay_cost(v) < 2 for v in range(7))

    def test_corrupt_interior_checkpoint_is_rebuilt(self, tmp_path):
        """Bit rot in one non-base checkpoint must not make a store with
        an intact log unopenable — it is deleted and backfilled."""
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db, checkpoint_interval=2) as store:
            store.append_history(
                History.of(*[update_v(i + 1) for i in range(5)])
            )
        (path / "checkpoints" / "ckpt-00000002.json").write_text("{corrupt")
        with HistoryStore.open(path) as store:
            assert store.checkpoint_versions() == (0, 2, 4)
            eager = list(
                History.of(
                    *[update_v(i + 1) for i in range(5)]
                ).execute_with_snapshots(db)
            )
            for version in range(6):
                assert store.as_of(version).same_contents(eager[version])

    def test_corrupt_base_checkpoint_is_fatal(self, tmp_path):
        path = tmp_path / "s"
        with HistoryStore.create(path, make_db(), checkpoint_interval=2) as s:
            s.append(update_v(1))
        (path / "checkpoints" / "ckpt-00000000.json").write_text("{corrupt")
        with pytest.raises(StoreError, match="base checkpoint"):
            HistoryStore.open(path)

    def test_corrupt_checkpoint_self_heals_on_read(self, tmp_path):
        """as_of falls back past a rotted checkpoint and re-writes it,
        restoring the bounded-replay invariant for later reads."""
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db, checkpoint_interval=2) as store:
            store.append_history(
                History.of(*[update_v(i + 1) for i in range(5)])
            )
            (path / "checkpoints" / "ckpt-00000002.json").write_text("{rot")
            eager = list(
                History.of(
                    *[update_v(i + 1) for i in range(5)]
                ).execute_with_snapshots(db)
            )
            assert store.as_of(2).same_contents(eager[2])  # heals
            assert store.as_of(3).same_contents(eager[3])
            assert 2 in store.checkpoint_versions()
            # the re-written file is valid again
            import json as _json

            _json.loads(
                (path / "checkpoints" / "ckpt-00000002.json").read_text()
            )

    def test_valid_json_invalid_payload_checkpoint_heals(self, tmp_path):
        """Valid JSON that is not a database payload is still 'corrupt'
        — it must enter the same fallback path, not crash open()."""
        path = tmp_path / "s"
        db = make_db()
        with HistoryStore.create(path, db, checkpoint_interval=2) as store:
            store.append_history(
                History.of(*[update_v(i + 1) for i in range(4)])
            )
        (path / "checkpoints" / "ckpt-00000002.json").write_text(
            '{"kinf": "set"}'
        )
        with HistoryStore.open(path) as store:
            eager = list(
                History.of(
                    *[update_v(i + 1) for i in range(4)]
                ).execute_with_snapshots(db)
            )
            for version in range(5):
                assert store.as_of(version).same_contents(eager[version])

    def test_corrupt_meta_is_store_error(self, tmp_path):
        path = tmp_path / "s"
        HistoryStore.create(path, make_db()).close()
        for bad in (
            '{"format": "mahif-history-store", "version": 1}',
            '{"format": "mahif-history-store", "version": 1, '
            '"checkpoint_interval": "x"}',
            '{"format": "mahif-history-store", "version": 1, '
            '"checkpoint_interval": 0}',
            '[1, 2]',
        ):
            (path / "META.json").write_text(bad)
            with pytest.raises(StoreError):
                HistoryStore.open(path)
