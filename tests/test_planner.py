"""The adaptive cost-based execution planner (DESIGN.md, "Adaptive
planning").

Four claims under test:

* **Differential**: ``shards="auto"`` answers are bit-identical to
  ``shards=1`` for fuzzed histories/queries across all 3 backends × all
  5 methods, on the single and the batched answering path — the planner
  may only ever trade time, never answers.
* **Cost model**: sub-threshold inputs (every fuzz-sized query, and
  partition-dominated R+PS+DS even at scale — the PR-5 regression this
  planner exists to fix) plan ``shards=1`` via the selectivity-0 quick
  reject, while a large plain-R workload with clustered routing matches
  plans ``shards>1`` — and still answers identically.
* **Witness soundness**: the keep mask computed from sampled witnesses
  equals the exhaustive-scan mask — witnesses only short-circuit proofs
  of *keep*, never introduce a skip.
* **Visibility**: service payloads carry the planner's decision
  (``"planner"``) and report the *chosen* count in ``"shards"``, and
  auto answers share cache entries with explicit requests at the chosen
  count.
"""

import pytest

from fuzz_differential import (
    fresh_rng,
    random_hwq,
    random_hwq_batch,
    scaled,
)

from repro import (
    Database,
    HistoricalWhatIfQuery,
    Relation,
    Schema,
    parse_history,
    parse_statement,
)
from repro.core import (
    AUTO_SHARDS,
    CostModel,
    Mahif,
    MahifConfig,
    Method,
    Replace,
    calibrate_cost_model,
    estimate_relation,
    plan_execution,
)
from repro.core.planner import DEFAULT_COST_MODEL
from repro.core.shard import routing_condition, shard_keep_mask
from repro.relational import History, partition_relation
from repro.relational.expressions import TRUE
from repro.service import ServiceClient, WhatIfServer, WhatIfService
from repro.service.wire import SpecError, normalize_shards

BACKENDS = ("interpreted", "compiled", "sqlite")

N_HWQS = 3
N_BATCHES = 2


def _deltas(query, method, backend, shards):
    config = MahifConfig(backend=backend, shards=shards)
    result = Mahif(config).answer(query, method)
    return result


# -- a mid-size workload the planner actually shards -------------------------
#
# 15k rows, a history whose statements all touch k < 60 — routing
# selectivity ~0.4%, range-clustered at the low end of the key space.
# Plain R at this size clears both planner margins; R+PS+DS does not
# (partitioning alone costs more than the sliced evaluation — the exact
# shape of the PR-5 bench regression).

BIG_ROWS = 15_000


@pytest.fixture(scope="module")
def big_query():
    schema = Schema.of("k", "v")
    rows = [(key, key % 7) for key in range(BIG_ROWS)]
    db = Database({"R": Relation.from_rows(schema, rows)})
    history = History(
        tuple(
            parse_history(
                """
                UPDATE R SET v = v + 1 WHERE k < 60;
                UPDATE R SET v = v * 2 WHERE k < 40;
                UPDATE R SET v = v - 1 WHERE k < 20;
                UPDATE R SET v = v + 3 WHERE k < 50;
                UPDATE R SET v = v - 2 WHERE k < 35;
                UPDATE R SET v = v + 5 WHERE k < 45;
                UPDATE R SET v = v * 3 WHERE k < 25;
                UPDATE R SET v = v - 4 WHERE k < 55;
                """
            )
        )
    )
    modification = Replace(
        1, parse_statement("UPDATE R SET v = v + 2 WHERE k < 30")
    )
    return HistoricalWhatIfQuery(history, db, (modification,))


def _plan_of(query, method, *, backend="compiled"):
    config = MahifConfig(backend=backend, shards="auto")
    engine = Mahif(config)
    return engine._plan_reenactment(query, method), config


class TestAutoDifferential:
    def test_auto_matches_unsharded_all_methods_backends(self):
        """Bit-identical deltas, and a planner choice on every auto
        answer (absent on explicit counts)."""
        rng = fresh_rng(offset=170)
        for trial in range(scaled(N_HWQS)):
            query = random_hwq(rng, rows=10)
            for method in Method:
                for backend in BACKENDS:
                    auto = _deltas(query, method, backend, "auto")
                    plain = _deltas(query, method, backend, 1)
                    assert auto.delta == plain.delta, (
                        trial, method, backend
                    )
                    if method is Method.NAIVE:
                        continue  # naive never consults the planner
                    assert auto.planner_choice is not None
                    assert plain.planner_choice is None

    def test_auto_batch_matches_unsharded(self):
        rng = fresh_rng(offset=171)
        for trial in range(scaled(N_BATCHES)):
            queries = random_hwq_batch(rng, size=4, rows=10)
            for backend in BACKENDS:
                for method in (Method.R, Method.R_PS_DS):
                    auto = Mahif(
                        MahifConfig(backend=backend, shards="auto")
                    ).answer_batch(queries, method)
                    plain = Mahif(
                        MahifConfig(backend=backend, shards=1)
                    ).answer_batch(queries, method)
                    assert [r.delta for r in auto] == [
                        r.delta for r in plain
                    ], (trial, method, backend)
                    assert all(
                        r.planner_choice is not None for r in auto
                    )

    def test_auto_sharded_choice_matches_unsharded(self, big_query):
        """The case the fuzz sizes never reach: the planner commits to
        ``shards>1`` and the answer is still bit-identical."""
        auto = _deltas(big_query, Method.R, "compiled", "auto")
        plain = _deltas(big_query, Method.R, "compiled", 1)
        assert auto.planner_choice.shards > 1
        assert auto.delta == plain.delta


class TestCostModel:
    def test_sub_threshold_plans_sequential_without_sampling(self):
        """Tiny inputs must be quick-rejected from free statistics
        alone — the cheap estimates carry no sampled witnesses."""
        rng = fresh_rng(offset=172)
        query = random_hwq(rng, rows=10)
        plan, config = _plan_of(query, Method.R_PS_DS)
        choice = plan_execution(plan, config)
        assert choice.shards == 1
        assert choice.shard_workers == 0
        assert "selectivity 0" in choice.reason
        assert all(
            not estimate.witnesses
            for estimate in choice.estimates.values()
        )

    def test_large_plain_r_plans_sharded(self, big_query):
        plan, config = _plan_of(big_query, Method.R)
        choice = plan_execution(plan, config)
        assert choice.shards > 1
        assert choice.estimated_seconds < choice.baseline_seconds
        assert choice.reason.startswith("sharded")

    def test_partition_dominated_ds_plans_sequential(self, big_query):
        """The PR-5 regression shape: R+PS+DS at 15k rows — the sliced
        evaluation is cheaper than partitioning it, so the planner must
        refuse to shard."""
        plan, config = _plan_of(big_query, Method.R_PS_DS)
        choice = plan_execution(plan, config)
        assert choice.shards == 1

    def test_margins_veto_sharding(self, big_query):
        """Inflated safety margins force the sequential choice even
        where sharding would model as profitable."""
        plan, config = _plan_of(big_query, Method.R)
        strict = CostModel(min_benefit_seconds=1e9)
        assert plan_execution(
            plan, config, cost_model=strict
        ).shards == 1
        strict = CostModel(min_speedup=1e9)
        assert plan_execution(
            plan, config, cost_model=strict
        ).shards == 1

    def test_max_shards_bounds_choice(self, big_query):
        plan, config = _plan_of(big_query, Method.R)
        choice = plan_execution(plan, config, max_shards=8)
        assert 1 < choice.shards <= 8

    def test_calibration_scales_backend_ratios(self):
        report = {
            "hot_path": [
                {
                    "rows": 400,
                    "interpreted_exe": 0.01,
                    "compiled_exe": 0.001,
                    "sqlite_exe": 0.002,
                },
                {
                    "rows": 4800,
                    "interpreted_exe": 0.3,
                    "compiled_exe": 0.01,
                    "sqlite_exe": 0.02,
                },
            ]
        }
        model = calibrate_cost_model(report)
        # Ratios come from the largest row: 30x and 2x compiled.
        assert model.row_op("interpreted") == pytest.approx(
            30 * model.row_op("compiled")
        )
        assert model.ds_row("sqlite") == pytest.approx(
            2 * model.ds_row("compiled")
        )

    @pytest.mark.parametrize(
        "report",
        [
            {},
            {"hot_path": []},
            {"hot_path": [{"rows": 10, "compiled_exe": 0.0}]},
            {"hot_path": [{"rows": 10, "compiled_exe": "fast"}]},
            {"hot_path": [{"rows": 10, "compiled_exe": 0.1}]},
        ],
    )
    def test_calibration_falls_back_on_bad_reports(self, report):
        assert calibrate_cost_model(report) is DEFAULT_COST_MODEL


class TestEstimatesAndWitnesses:
    def test_sampling_is_bounded(self, big_query):
        plan, _ = _plan_of(big_query, Method.R)
        estimate = estimate_relation(plan, "R", sample_limit=16)
        assert estimate.sampled <= 16
        assert estimate.cardinality == BIG_ROWS

    def test_witness_mask_equals_exhaustive_scan(self, big_query):
        """A shard holds a witness iff the scan would keep it for that
        same row, so the short-circuited mask is identical — witnesses
        can never turn a keep into a skip."""
        plan, _ = _plan_of(big_query, Method.R)
        condition = routing_condition(plan.routing, "R")
        assert condition != TRUE
        estimate = estimate_relation(plan, "R")
        assert estimate.witnesses
        parts = partition_relation(plan.start_db["R"], 8, "range")
        scanned = shard_keep_mask(parts, condition)
        witnessed = shard_keep_mask(
            parts, condition, witnesses=estimate.witnesses
        )
        assert witnessed == scanned

    def test_witness_mask_equals_scan_fuzzed(self):
        rng = fresh_rng(offset=173)
        checked = 0
        for _ in range(scaled(6)):
            query = random_hwq(rng, rows=12)
            plan, _ = _plan_of(query, Method.R)
            for relation in sorted(plan.affected):
                condition = routing_condition(plan.routing, relation)
                if condition == TRUE:
                    continue
                estimate = estimate_relation(plan, relation)
                for scheme in ("hash", "range"):
                    parts = partition_relation(
                        plan.start_db[relation], 3, scheme
                    )
                    assert shard_keep_mask(
                        parts, condition, witnesses=estimate.witnesses
                    ) == shard_keep_mask(parts, condition)
                    checked += 1
        assert checked  # the fuzz must exercise non-trivial routing


class TestNormalizeShards:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, None),
            ("auto", AUTO_SHARDS),
            (" AUTO ", AUTO_SHARDS),
            (0, AUTO_SHARDS),
            (4, 4),
            ("4", 4),
            (8.0, 8),
        ],
    )
    def test_accepted(self, value, expected):
        assert normalize_shards(value) == expected

    @pytest.mark.parametrize("value", [True, -1, 1.5, "many", [], "-2"])
    def test_rejected(self, value):
        with pytest.raises(SpecError):
            normalize_shards(value)


@pytest.fixture
def auto_server(tmp_path, orders_db, paper_history):
    service = WhatIfService(tmp_path / "stores", default_shards="auto")
    service.register("orders", orders_db, paper_history)
    server = WhatIfServer(service, port=0).start_background()
    yield server
    server.shutdown()


class TestServiceVisibility:
    SPEC = {
        "replace": [
            [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 55"]
        ]
    }

    def test_payload_carries_planner_choice(self, auto_server):
        client = ServiceClient(auto_server.url)
        answer = client.whatif("orders", self.SPEC)
        planner = answer["planner"]
        assert answer["shards"] == planner["shards"] >= 1
        assert planner["reason"]
        assert {"estimated_seconds", "baseline_seconds"} <= set(planner)

    def test_explicit_shards_have_no_planner_payload(self, auto_server):
        client = ServiceClient(auto_server.url)
        answer = client.whatif("orders", self.SPEC, shards=2)
        assert answer["shards"] == 2
        assert "planner" not in answer

    def test_auto_shares_cache_with_chosen_count(self, auto_server):
        client = ServiceClient(auto_server.url)
        first = client.whatif("orders", self.SPEC)
        assert first["cached"] is False
        second = client.whatif("orders", self.SPEC)
        assert second["cached"] is True
        explicit = client.whatif(
            "orders", self.SPEC, shards=first["shards"]
        )
        assert explicit["cached"] is True
        assert explicit["delta"] == first["delta"]

    def test_auto_string_per_request(self, auto_server):
        client = ServiceClient(auto_server.url)
        explicit = client.whatif("orders", self.SPEC, shards=1)
        auto = client.whatif("orders", self.SPEC, shards="auto")
        assert auto["delta"] == explicit["delta"]
        assert "planner" in auto
