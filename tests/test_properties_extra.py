"""Additional property-based tests: parser round-trips, optimizer
equivalence, presolver agreement with the MILP."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, History, Relation, Schema
from repro.core.reenactment import reenactment_query
from repro.relational.algebra import evaluate_query
from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    If,
    Logic,
    Not,
    and_,
    col,
    evaluate,
    ge,
    le,
    lit,
    to_string,
)
from repro.relational.optimizer import OptimizerConfig, optimize
from repro.relational.parser import parse_expression
from repro.relational.statements import DeleteStatement, UpdateStatement
from repro.solver import (
    SolverConfig,
    check_satisfiable,
    interval_presolve,
    IntervalOutcome,
)

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

SCHEMA = Schema.of("k", "P", "F")

# -- expression strategies ---------------------------------------------------

numbers = st.integers(min_value=-50, max_value=50)
attr_names = st.sampled_from(["P", "F", "k"])


@st.composite
def numeric_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return Attr(draw(attr_names))
        return Const(draw(numbers))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return Arith(
        op,
        draw(numeric_exprs(depth=depth - 1)),
        draw(numeric_exprs(depth=depth - 1)),
    )


@st.composite
def conditions(draw, depth=2):
    if depth == 0 or draw(st.integers(0, 2)) == 0:
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
        return Cmp(op, draw(numeric_exprs(depth=1)), draw(numeric_exprs(depth=1)))
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(conditions(depth=depth - 1)))
    return Logic(
        kind,
        draw(conditions(depth=depth - 1)),
        draw(conditions(depth=depth - 1)),
    )


class TestParserRoundTrip:
    @SETTINGS
    @given(conditions())
    def test_condition_roundtrip_preserves_semantics(self, condition):
        """parse(render(e)) evaluates identically to e."""
        rendered = to_string(condition)
        reparsed = parse_expression(rendered)
        for p in (-10, 0, 25):
            for f in (0, 7):
                binding = {"P": p, "F": f, "k": 1}
                assert evaluate(reparsed, binding) == evaluate(
                    condition, binding
                )

    @SETTINGS
    @given(numeric_exprs())
    def test_numeric_roundtrip(self, expr):
        reparsed = parse_expression(to_string(expr))
        for p in (-3, 0, 9):
            binding = {"P": p, "F": 2, "k": 5}
            assert evaluate(reparsed, binding) == evaluate(expr, binding)


class TestOptimizerEquivalence:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["P", "F"]),
                st.integers(-5, 5),
                st.integers(0, 80),
                st.integers(0, 40),
            ),
            min_size=1,
            max_size=5,
        ),
        st.lists(
            st.tuples(st.integers(1, 20), st.integers(0, 99), st.integers(0, 99)),
            min_size=0,
            max_size=8,
            unique_by=lambda t: t[0],
        ),
    )
    def test_optimized_reenactment_equivalent(self, updates, raw_rows):
        statements = [
            UpdateStatement(
                "R",
                {target: col(target) + delta},
                and_(ge(col("P"), low), le(col("P"), low + width)),
            )
            for target, delta, low, width in updates
        ]
        history = History(tuple(statements))
        query = reenactment_query(history, "R", {"R": SCHEMA})
        db = Database({"R": Relation.from_rows(SCHEMA, raw_rows)})
        plain = evaluate_query(query, db)
        optimized = evaluate_query(optimize(query), db)
        assert set(plain) == set(optimized)

    @SETTINGS
    @given(conditions())
    def test_optimizer_handles_arbitrary_selections(self, condition):
        from repro.relational.algebra import RelScan, Select

        db = Database(
            {"R": Relation.from_rows(SCHEMA, [(1, 10, 0), (2, 50, 9)])}
        )
        query = Select(RelScan("R"), condition)
        assert set(evaluate_query(optimize(query), db)) == set(
            evaluate_query(query, db)
        )


class TestPresolverAgreement:
    @SETTINGS
    @given(conditions(depth=2))
    def test_presolver_never_contradicts_milp(self, condition):
        """When both engines give verdicts, they must agree (the MILP is
        the reference; UNKNOWN from either side is fine)."""
        outcome = interval_presolve(condition)
        if outcome is IntervalOutcome.UNKNOWN:
            return
        milp = check_satisfiable(
            condition, SolverConfig(use_interval_presolve=False)
        )
        if milp.status.value == "unknown":
            return
        assert (outcome is IntervalOutcome.SAT) == milp.is_sat
