"""Workload substrate tests: datasets and the parameterized generator."""

import pytest

from repro.core import Method
from repro.relational.expressions import evaluate
from repro.relational.statements import (
    DeleteStatement,
    InsertTuple,
    UpdateStatement,
)
from repro.workloads import (
    WorkloadSpec,
    build_workload,
    dataset_by_name,
    taxi_trips,
    tpcc_stock,
    ycsb_usertable,
)


class TestDatasets:
    def test_taxi_schema_and_size(self):
        relation = taxi_trips(500, seed=1)
        assert len(relation) == 500
        assert "trip_total" in relation.schema
        assert "fare" in relation.schema

    def test_taxi_total_is_sum_of_components(self):
        relation = taxi_trips(200, seed=2)
        for row in relation.rows_as_dicts():
            expected = round(
                row["fare"] + row["tips"] + row["tolls"] + row["extras"], 2
            )
            assert abs(row["trip_total"] - expected) < 0.011

    def test_taxi_deterministic_by_seed(self):
        assert set(taxi_trips(100, seed=5)) == set(taxi_trips(100, seed=5))
        assert set(taxi_trips(100, seed=5)) != set(taxi_trips(100, seed=6))

    def test_taxi_keys_unique(self):
        relation = taxi_trips(300, seed=1)
        ids = [t[0] for t in relation]
        assert len(set(ids)) == 300

    def test_tpcc_quantity_range(self):
        relation = tpcc_stock(300, seed=1)
        quantities = [row["s_quantity"] for row in relation.rows_as_dicts()]
        assert min(quantities) >= 10 and max(quantities) <= 100

    def test_ycsb_keys_dense_and_ordered(self):
        relation = ycsb_usertable(100, seed=1)
        keys = sorted(row["ycsb_key"] for row in relation.rows_as_dicts())
        assert keys == list(range(1, 101))

    def test_dataset_by_name(self):
        assert len(dataset_by_name("taxi", 50)) == 50
        with pytest.raises(KeyError):
            dataset_by_name("nope", 50)


class TestWorkloadSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(dataset="nope")
        with pytest.raises(ValueError):
            WorkloadSpec(updates=0)
        with pytest.raises(ValueError):
            WorkloadSpec(insert_pct=50, delete_pct=50)
        with pytest.raises(ValueError):
            WorkloadSpec(modifications=0)


class TestBuildWorkload:
    def test_statement_counts(self):
        spec = WorkloadSpec(
            dataset="taxi", rows=500, updates=20, insert_pct=10,
            delete_pct=10, seed=3,
        )
        workload = build_workload(spec)
        statements = list(workload.history)
        assert len(statements) == 20
        inserts = sum(isinstance(s, InsertTuple) for s in statements)
        deletes = sum(isinstance(s, DeleteStatement) for s in statements)
        assert inserts == 2 and deletes == 2

    def test_first_statement_is_modified(self):
        workload = build_workload(WorkloadSpec(rows=300, updates=5, seed=1))
        assert workload.modifications[0].position == 1
        original = workload.history[1]
        replacement = workload.modifications[0].statement
        assert isinstance(original, UpdateStatement)
        assert original.condition != replacement.condition
        assert original.set_clauses == dict(replacement.set_clauses)

    def test_affected_fraction_tracks_t(self):
        for t_pct, tolerance in ((5.0, 3.0), (25.0, 6.0)):
            spec = WorkloadSpec(
                rows=2000, updates=5, affected_pct=t_pct, seed=5
            )
            workload = build_workload(spec)
            relation = workload.database[spec.relation_name]
            condition = workload.history[1].condition
            affected = sum(
                1
                for row in relation.rows_as_dicts()
                if evaluate(condition, row)
            )
            actual_pct = 100.0 * affected / len(relation)
            assert abs(actual_pct - t_pct) <= tolerance

    def test_modification_count(self):
        spec = WorkloadSpec(
            rows=500, updates=20, dependent_pct=50, modifications=4, seed=9
        )
        workload = build_workload(spec)
        assert len(workload.modifications) == 4
        positions = [m.position for m in workload.modifications]
        assert len(set(positions)) == 4

    def test_query_round_trips_through_engine(self):
        from repro.bench import run_methods

        spec = WorkloadSpec(rows=400, updates=8, seed=11)
        workload = build_workload(spec)
        timings = run_methods(
            workload.query, [Method.NAIVE, Method.R_PS_DS]
        )
        assert (
            timings[Method.NAIVE].result.delta
            == timings[Method.R_PS_DS].result.delta
        )

    def test_independent_updates_provably_independent(self):
        """The generator's disjoint-window construction must be visible
        to the slicer: with D=10 most updates get sliced away."""
        spec = WorkloadSpec(
            rows=800, updates=20, dependent_pct=10, seed=13
        )
        workload = build_workload(spec)
        from repro.core import Mahif, Method

        result = Mahif().answer(workload.query, Method.R_PS_DS)
        kept = len(result.slice_result.kept_positions)
        assert kept <= 6  # 2 dependent-ish + slack

    def test_deterministic(self):
        spec = WorkloadSpec(rows=300, updates=10, seed=21)
        w1, w2 = build_workload(spec), build_workload(spec)
        assert w1.history == w2.history
        assert w1.modifications == w2.modifications
