"""Database compression tests (Section 8.3.1).

The key invariant (used by Theorem 4): every tuple of the input relation
satisfies Φ_D, i.e. the compressed worlds over-approximate the database.
"""

import pytest

from repro import Relation, Schema
from repro.relational.expressions import TRUE, disjuncts_of, evaluate
from repro.symbolic.compress import (
    CompressionConfig,
    compress_relation,
    constraint_admits_all,
)
from repro.symbolic.vctable import SymbolicTuple

SCHEMA = Schema.of("Country", "ID", "Price", "Fee")

ROWS = [
    ("UK", 11, 20, 5),
    ("UK", 12, 50, 5),
    ("US", 13, 60, 3),
    ("US", 14, 30, 4),
]


@pytest.fixture
def relation():
    return Relation.from_rows(SCHEMA, ROWS)


@pytest.fixture
def symbolic_tuple():
    return SymbolicTuple.fresh(SCHEMA, prefix="x")


class TestCompression:
    def test_single_group_ranges(self, relation, symbolic_tuple):
        phi = compress_relation(relation, symbolic_tuple)
        # the box [20..60] x [3..5] with countries {UK, US}
        assert evaluate(
            phi, {"x_Country": "UK", "x_ID": 11, "x_Price": 20, "x_Fee": 5}
        )
        assert not evaluate(
            phi, {"x_Country": "UK", "x_ID": 11, "x_Price": 500, "x_Fee": 5}
        )

    def test_soundness_invariant(self, relation, symbolic_tuple):
        for config in (
            CompressionConfig(),
            CompressionConfig(group_by="Country"),
            CompressionConfig(group_by="Price", num_groups=2),
            CompressionConfig(group_by="Price", num_groups=4),
        ):
            phi = compress_relation(relation, symbolic_tuple, config)
            assert constraint_admits_all(phi, relation, symbolic_tuple)

    def test_paper_example7_group_by_country(self, relation, symbolic_tuple):
        """Example 7: grouping on Country yields two disjuncts with the
        ranges Price∈[20,50] (UK) and Price∈[30,60] (US)."""
        phi = compress_relation(
            relation, symbolic_tuple, CompressionConfig(group_by="Country")
        )
        groups = disjuncts_of(phi)
        assert len(groups) == 2
        # UK group admits price 35, US group does not admit price 20
        uk = {"x_Country": "UK", "x_ID": 11, "x_Price": 35, "x_Fee": 5}
        assert evaluate(phi, uk)
        bad_us = {"x_Country": "US", "x_ID": 13, "x_Price": 20, "x_Fee": 3}
        assert not evaluate(phi, bad_us)

    def test_tighter_than_single_box(self, relation, symbolic_tuple):
        """Grouping excludes worlds the single box admits."""
        box = compress_relation(relation, symbolic_tuple)
        grouped = compress_relation(
            relation, symbolic_tuple, CompressionConfig(group_by="Country")
        )
        # (US, price 25) is inside the box but outside the US group range
        world = {"x_Country": "US", "x_ID": 13, "x_Price": 25, "x_Fee": 4}
        assert evaluate(box, world)
        assert not evaluate(grouped, world)

    def test_numeric_group_by_quantiles(self, relation, symbolic_tuple):
        phi = compress_relation(
            relation,
            symbolic_tuple,
            CompressionConfig(group_by="Price", num_groups=2),
        )
        assert len(disjuncts_of(phi)) == 2
        assert constraint_admits_all(phi, relation, symbolic_tuple)

    def test_empty_relation_compresses_to_true(self, symbolic_tuple):
        phi = compress_relation(Relation.empty(SCHEMA), symbolic_tuple)
        assert phi == TRUE

    def test_high_cardinality_strings_omitted(self, symbolic_tuple):
        rows = [(f"company-{i}", i, i, i) for i in range(50)]
        relation = Relation.from_rows(SCHEMA, rows)
        phi = compress_relation(
            relation, symbolic_tuple, CompressionConfig(max_distinct=10)
        )
        # Country must be unconstrained: any string value admitted
        assert evaluate(
            phi, {"x_Country": "unseen", "x_ID": 5, "x_Price": 5, "x_Fee": 5}
        )

    def test_constant_attribute_becomes_equality(self, symbolic_tuple):
        rows = [("UK", 1, 7, 7), ("UK", 2, 7, 9)]
        relation = Relation.from_rows(SCHEMA, rows)
        phi = compress_relation(relation, symbolic_tuple)
        assert not evaluate(
            phi, {"x_Country": "UK", "x_ID": 1, "x_Price": 8, "x_Fee": 8}
        )

    def test_null_values_skipped(self, symbolic_tuple):
        rows = [("UK", 1, None, 5), ("US", 2, 30, None)]
        relation = Relation.from_rows(SCHEMA, rows)
        phi = compress_relation(relation, symbolic_tuple)
        # price constrained by the single non-null value
        assert evaluate(
            phi, {"x_Country": "UK", "x_ID": 1, "x_Price": 30, "x_Fee": 5}
        )
