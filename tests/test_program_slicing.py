"""Program slicing tests (Sections 7-8, Theorem 4)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.hwq import Replace, align
from repro.core.program_slicing import (
    ProgramSlicingConfig,
    greedy_slice,
    histories_equal_condition,
    is_slice,
)
from repro.relational.expressions import (
    and_,
    col,
    eq,
    ge,
    le,
    lit,
)
from repro.relational.statements import (
    DeleteStatement,
    UpdateStatement,
)
from repro.symbolic.symexec import run_history_single_tuple
from repro.symbolic.vctable import SymbolicTuple

SCHEMA = Schema.of("k", "P", "F")


def db_with(rows):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def schemas():
    return {"R": SCHEMA}


ROWS = [(i, i * 10, 5) for i in range(1, 11)]  # P in 10..100, F = 5


def verify_slice_correct(db, aligned, kept_positions):
    """The ground-truth slice property (Definition 4): the delta computed
    from the sliced histories equals the full delta."""
    full_h = aligned.original.execute(db)
    full_m = aligned.modified.execute(db)
    sliced = aligned.subset(kept_positions)
    sliced_h = sliced.original.execute(db)
    sliced_m = sliced.modified.execute(db)
    full_delta = set(full_h["R"].symmetric_difference(full_m["R"]))
    sliced_delta = set(sliced_h["R"].symmetric_difference(sliced_m["R"]))
    assert full_delta == sliced_delta


class TestHistoriesEqualCondition:
    def test_identical_runs_yield_true(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        )
        shared = SymbolicTuple.fresh(SCHEMA, "in")
        run_a = run_history_single_tuple(history, "R", SCHEMA, shared, "a")
        condition = histories_equal_condition(run_a, run_a)
        from repro.relational.expressions import TRUE

        assert condition == TRUE


class TestGreedySlice:
    def test_independent_updates_excluded(self):
        """Updates whose windows cannot overlap the modification are
        dropped."""
        u_mod = UpdateStatement("R", {"F": lit(0)},
                                and_(ge(col("P"), 10), le(col("P"), 30)))
        u_mod2 = UpdateStatement("R", {"F": lit(0)},
                                 and_(ge(col("P"), 10), le(col("P"), 40)))
        u_far = UpdateStatement("R", {"F": col("F") + 1},
                                and_(ge(col("P"), 80), le(col("P"), 100)))
        u_near = UpdateStatement("R", {"F": col("F") + 1},
                                 and_(ge(col("P"), 20), le(col("P"), 50)))
        aligned = align(
            History.of(u_mod, u_far, u_near), [Replace(1, u_mod2)]
        )
        db = db_with(ROWS)
        result = greedy_slice(aligned, db, schemas())
        assert 1 in result.kept_positions      # the modification itself
        assert 3 in result.kept_positions      # overlapping: dependent
        assert 2 not in result.kept_positions  # disjoint: independent
        verify_slice_correct(db, aligned, result.kept_positions)

    def test_all_dependent_keeps_everything(self):
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(7)}, ge(col("P"), 50))
        u_dep = UpdateStatement("R", {"F": col("F") + 1}, ge(col("F"), 0))
        aligned = align(History.of(u_mod, u_dep), [Replace(1, u_mod2)])
        db = db_with(ROWS)
        result = greedy_slice(aligned, db, schemas())
        assert result.kept_positions == (1, 2)

    def test_deletes_participate(self):
        d_mod = DeleteStatement("R", ge(col("P"), 90))
        d_mod2 = DeleteStatement("R", ge(col("P"), 70))
        u_far = UpdateStatement(
            "R", {"F": col("F") + 1}, le(col("P"), 30)
        )
        aligned = align(History.of(d_mod, u_far), [Replace(1, d_mod2)])
        db = db_with(ROWS)
        result = greedy_slice(aligned, db, schemas())
        assert 2 not in result.kept_positions
        verify_slice_correct(db, aligned, result.kept_positions)

    def test_statements_on_unmodified_relations_excluded(self):
        other_schema = Schema.of("x")
        db = Database(
            {
                "R": Relation.from_rows(SCHEMA, ROWS),
                "S": Relation.from_rows(other_schema, [(1,)]),
            }
        )
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(1)}, ge(col("P"), 50))
        u_other = UpdateStatement("S", {"x": col("x") + 1}, ge(col("x"), 0))
        aligned = align(History.of(u_mod, u_other), [Replace(1, u_mod2)])
        result = greedy_slice(
            aligned, db, {"R": SCHEMA, "S": other_schema}
        )
        assert 2 not in result.kept_positions

    def test_solver_accounting(self):
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(1)}, ge(col("P"), 50))
        u_other = UpdateStatement("R", {"F": col("F") + 1}, le(col("P"), 20))
        aligned = align(History.of(u_mod, u_other), [Replace(1, u_mod2)])
        result = greedy_slice(aligned, db_with(ROWS), schemas())
        assert result.solver_calls >= 1
        assert result.solver_seconds >= 0.0
        assert result.excluded_count == result.total_positions - len(
            result.kept_positions
        )

    def test_compression_tightens_slices(self):
        """With Φ_D bounding F = 5, an update conditioned on F >= 100 is
        provably independent; without data knowledge it must be kept."""
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(1)}, ge(col("P"), 50))
        # F starts at 5 and u_mod writes 0/1, so F >= 100 is impossible —
        # but only the compressed database can prove it.
        u_impossible = UpdateStatement(
            "R", {"F": col("F") - 1}, ge(col("F"), 100)
        )
        aligned = align(
            History.of(u_mod, u_impossible), [Replace(1, u_mod2)]
        )
        db = db_with(ROWS)
        result = greedy_slice(aligned, db, schemas())
        assert 2 not in result.kept_positions
        verify_slice_correct(db, aligned, result.kept_positions)


class TestIsSlice:
    def test_full_index_set_is_always_a_slice(self):
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(1)}, ge(col("P"), 50))
        u_dep = UpdateStatement("R", {"F": col("F") + 1}, ge(col("F"), 0))
        aligned = align(History.of(u_mod, u_dep), [Replace(1, u_mod2)])
        assert is_slice(aligned, db_with(ROWS), schemas(), {1, 2})

    def test_dropping_dependent_statement_rejected(self):
        u_mod = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u_mod2 = UpdateStatement("R", {"F": lit(7)}, ge(col("P"), 50))
        u_dep = UpdateStatement("R", {"F": col("F") + 1}, ge(col("F"), 0))
        aligned = align(History.of(u_mod, u_dep), [Replace(1, u_mod2)])
        assert not is_slice(aligned, db_with(ROWS), schemas(), {1})

    def test_example8_candidate_rejected(self):
        """Example 8: dropping u2 from (u1, u2) with M = (u1 <- u1') is
        not a valid slice — u2 adds +5 for some affected tuples."""
        u1 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u1p = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        u2 = UpdateStatement(
            "R", {"F": col("F") + 5},
            and_(eq(col("k"), 1), le(col("P"), 100)),
        )
        # give tuple k=1 a price in the modification window so u2 matters
        rows = [(1, 55, 5), (2, 10, 5), (3, 95, 5)]
        aligned = align(History.of(u1, u2), [Replace(1, u1p)])
        assert not is_slice(aligned, db_with(rows), schemas(), {1})


class TestConfig:
    def test_skip_modified_positions_default(self):
        config = ProgramSlicingConfig()
        assert config.skip_modified_positions
