"""Unit tests for the SQL-ish parser."""

import pytest

from repro.relational.algebra import Project, RelScan, Select
from repro.relational.expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
    evaluate,
)
from repro.relational.parser import (
    ParseError,
    parse_expression,
    parse_history,
    parse_statement,
    tokenize,
)
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)


class TestTokenizer:
    def test_numbers_strings_names(self):
        tokens = tokenize("x >= 1.5 AND name = 'O''Hare'")
        kinds = [t.kind for t in tokens]
        assert kinds == ["name", "op", "number", "keyword", "name", "op",
                         "string", "eof"]

    def test_rejects_junk(self):
        with pytest.raises(ParseError):
            tokenize("a @ b")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("UpDaTe")
        assert tokens[0].kind == "keyword"
        assert tokens[0].text == "update"


class TestExpressionParsing:
    def test_precedence_arithmetic_over_comparison(self):
        expr = parse_expression("a + 1 >= b * 2")
        assert isinstance(expr, Cmp)
        assert isinstance(expr.left, Arith)
        assert isinstance(expr.right, Arith)

    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, Logic) and expr.op == "or"
        assert isinstance(expr.right, Logic) and expr.right.op == "and"

    def test_parentheses(self):
        expr = parse_expression("(a = 1 OR b = 2) AND c = 3")
        assert expr.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, Not)

    def test_diamond_not_equal(self):
        assert parse_expression("a <> 1") == Cmp("!=", Attr("a"), Const(1))
        assert parse_expression("a != 1") == Cmp("!=", Attr("a"), Const(1))

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("a IS NULL"), IsNull)
        expr = parse_expression("a IS NOT NULL")
        assert isinstance(expr, Not) and isinstance(expr.operand, IsNull)

    def test_between_desugars(self):
        expr = parse_expression("a BETWEEN 1 AND 5")
        assert evaluate(expr, {"a": 3}) is True
        assert evaluate(expr, {"a": 7}) is False

    def test_not_between(self):
        expr = parse_expression("a NOT BETWEEN 1 AND 5")
        assert evaluate(expr, {"a": 7}) is True

    def test_in_list_desugars(self):
        expr = parse_expression("c IN ('UK', 'US')")
        assert evaluate(expr, {"c": "UK"}) is True
        assert evaluate(expr, {"c": "DE"}) is False

    def test_not_in(self):
        expr = parse_expression("c NOT IN (1, 2)")
        assert evaluate(expr, {"c": 3}) is True

    def test_case_expression(self):
        expr = parse_expression(
            "CASE WHEN a >= 1 THEN 10 WHEN a >= 0 THEN 5 ELSE 0 END"
        )
        assert evaluate(expr, {"a": 2}) == 10
        assert evaluate(expr, {"a": 0.5}) == 5
        assert evaluate(expr, {"a": -1}) == 0

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            parse_expression("CASE ELSE 1 END")

    def test_unary_minus(self):
        assert parse_expression("-5") == Const(-5)
        expr = parse_expression("-a")
        assert evaluate(expr, {"a": 3}) == -3

    def test_float_and_int_literals(self):
        assert parse_expression("1.5") == Const(1.5)
        assert parse_expression("42") == Const(42)

    def test_boolean_and_null_literals(self):
        assert parse_expression("true") == Const(True)
        assert parse_expression("NULL") == Const(None)

    def test_trailing_junk_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("a = 1 b")

    def test_string_escape(self):
        assert parse_expression("'it''s'") == Const("it's")


class TestStatementParsing:
    def test_update(self):
        stmt = parse_statement(
            "UPDATE t SET a = a + 1, b = 0 WHERE a >= 5;"
        )
        assert isinstance(stmt, UpdateStatement)
        assert stmt.relation == "t"
        assert set(stmt.set_clauses) == {"a", "b"}

    def test_update_without_where_is_unconditional(self):
        stmt = parse_statement("UPDATE t SET a = 1")
        assert stmt.condition == TRUE

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1;")
        assert isinstance(stmt, DeleteStatement)
        assert stmt.relation == "t"

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM t").condition == TRUE

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t VALUES (1, 'x', 2.5, NULL);")
        assert isinstance(stmt, InsertTuple)
        assert stmt.values == (1, "x", 2.5, None)

    def test_insert_values_negative_number(self):
        stmt = parse_statement("INSERT INTO t VALUES (-3);")
        assert stmt.values == (-3,)

    def test_insert_values_rejects_expressions(self):
        with pytest.raises(ParseError):
            parse_statement("INSERT INTO t VALUES (1 + 2);")

    def test_insert_select_star(self):
        stmt = parse_statement("INSERT INTO t SELECT * FROM s WHERE a = 1;")
        assert isinstance(stmt, InsertQuery)
        assert isinstance(stmt.query, Select)
        assert isinstance(stmt.query.input, RelScan)

    def test_insert_select_projection(self):
        stmt = parse_statement("INSERT INTO t SELECT a, b + 1 FROM s;")
        assert isinstance(stmt.query, Project)
        names = [name for _, name in stmt.query.outputs]
        assert names[0] == "a"

    def test_unknown_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM t;")

    def test_history_script(self):
        statements = parse_history(
            "UPDATE t SET a = 1; DELETE FROM t WHERE a = 0;"
        )
        assert len(statements) == 2

    def test_history_trailing_semicolon_optional(self):
        assert len(parse_history("UPDATE t SET a = 1")) == 1
