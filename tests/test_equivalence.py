"""History equivalence checking tests (the paper's future-work item)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.equivalence import (
    EquivalenceVerdict,
    check_history_equivalence,
)
from repro.relational.algebra import RelScan
from repro.relational.expressions import and_, col, ge, le, lit
from repro.relational.statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    UpdateStatement,
)

SCHEMA = Schema.of("k", "P", "F")
ROWS = [(i, i * 10, 5) for i in range(1, 11)]  # P in 10..100, F = 5


def db_with(rows=ROWS):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def window(low, high):
    return and_(ge(col("P"), low), le(col("P"), high))


class TestEquivalent:
    def test_syntactic_identity(self):
        history = History.of(
            UpdateStatement("R", {"F": lit(0)}, window(10, 50))
        )
        result = check_history_equivalence(history, history, db_with())
        assert result.is_equivalent

    def test_reordered_independent_updates(self):
        u_low = UpdateStatement("R", {"F": col("F") + 1}, window(10, 30))
        u_high = UpdateStatement("R", {"F": col("F") + 2}, window(80, 100))
        result = check_history_equivalence(
            History.of(u_low, u_high), History.of(u_high, u_low), db_with()
        )
        assert result.is_equivalent

    def test_noop_padding_is_equivalent(self):
        u = UpdateStatement("R", {"F": lit(0)}, window(10, 50))
        from repro.relational.statements import no_op

        result = check_history_equivalence(
            History.of(u), History.of(u, no_op("R")), db_with()
        )
        assert result.is_equivalent

    def test_equivalence_via_data_constraints(self):
        """Two different conditions that agree on every admitted tuple:
        F is always 5, so 'F >= 5' and 'F >= 1' coincide on this data."""
        u1 = UpdateStatement("R", {"P": col("P") + 1}, ge(col("F"), 5))
        u2 = UpdateStatement("R", {"P": col("P") + 1}, ge(col("F"), 1))
        result = check_history_equivalence(
            History.of(u1), History.of(u2), db_with()
        )
        assert result.is_equivalent

    def test_masked_update_equivalence(self):
        """An update completely overwritten by a later unconditional
        update is removable."""
        masked = UpdateStatement("R", {"F": lit(3)}, window(10, 50))
        overwrite = UpdateStatement("R", {"F": lit(9)}, window(0, 200))
        with_masked = History.of(masked, overwrite)
        without = History.of(overwrite)
        result = check_history_equivalence(with_masked, without, db_with())
        assert result.is_equivalent

    def test_identical_inserts(self):
        h1 = History.of(
            InsertTuple("R", (99, 50, 5)),
            UpdateStatement("R", {"F": lit(0)}, window(40, 60)),
        )
        h2 = History.of(
            InsertTuple("R", (99, 50, 5)),
            UpdateStatement("R", {"F": lit(0)}, window(40, 60)),
        )
        assert check_history_equivalence(h1, h2, db_with()).is_equivalent


class TestDifferent:
    def test_different_thresholds(self):
        u1 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        u2 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        result = check_history_equivalence(
            History.of(u1), History.of(u2), db_with()
        )
        assert result.verdict is EquivalenceVerdict.DIFFERENT
        assert result.relation == "R"

    def test_reordered_dependent_updates_differ(self):
        set_zero = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 50))
        add_five = UpdateStatement("R", {"F": col("F") + 5}, ge(col("P"), 50))
        result = check_history_equivalence(
            History.of(set_zero, add_five),
            History.of(add_five, set_zero),
            db_with(),
        )
        assert result.verdict is EquivalenceVerdict.DIFFERENT

    def test_different_inserted_tuples(self):
        h1 = History.of(InsertTuple("R", (99, 50, 5)))
        h2 = History.of(InsertTuple("R", (99, 50, 6)))
        result = check_history_equivalence(h1, h2, db_with())
        assert result.verdict is EquivalenceVerdict.DIFFERENT
        assert result.witness is not None

    def test_delete_vs_update(self):
        delete = DeleteStatement("R", ge(col("P"), 90))
        update = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 90))
        result = check_history_equivalence(
            History.of(delete), History.of(update), db_with()
        )
        assert result.verdict is EquivalenceVerdict.DIFFERENT

    def test_different_lengths(self):
        u = UpdateStatement("R", {"F": col("F") + 1}, window(10, 50))
        result = check_history_equivalence(
            History.of(u), History.of(u, u), db_with()
        )
        assert result.verdict is EquivalenceVerdict.DIFFERENT


class TestUnknown:
    def test_insert_query_yields_unknown(self):
        h = History.of(InsertQuery("R", RelScan("R")))
        result = check_history_equivalence(h, h, db_with())
        assert result.verdict is EquivalenceVerdict.UNKNOWN

    def test_nonlinear_arithmetic_yields_unknown_or_better(self):
        quad = UpdateStatement(
            "R", {"F": col("F") * col("F")}, window(10, 50)
        )
        other = UpdateStatement(
            "R", {"F": col("F") * col("F")}, window(10, 60)
        )
        result = check_history_equivalence(
            History.of(quad), History.of(other), db_with()
        )
        # must not claim equivalence for genuinely different histories
        assert result.verdict is not EquivalenceVerdict.EQUIVALENT

    def test_unknown_relation_rejected(self):
        h = History.of(UpdateStatement("Z", {"x": lit(0)}))
        with pytest.raises(KeyError):
            check_history_equivalence(h, h, db_with())


class TestSoundness:
    def test_equivalent_verdicts_hold_on_the_database(self):
        """Whenever EQUIVALENT is claimed, direct execution agrees."""
        cases = [
            (
                History.of(
                    UpdateStatement("R", {"F": col("F") + 1}, window(10, 30)),
                    UpdateStatement("R", {"F": col("F") + 2}, window(80, 100)),
                ),
                History.of(
                    UpdateStatement("R", {"F": col("F") + 2}, window(80, 100)),
                    UpdateStatement("R", {"F": col("F") + 1}, window(10, 30)),
                ),
            ),
            (
                History.of(
                    UpdateStatement("R", {"F": lit(3)}, window(10, 50)),
                    UpdateStatement("R", {"F": lit(9)}, window(0, 200)),
                ),
                History.of(
                    UpdateStatement("R", {"F": lit(9)}, window(0, 200))
                ),
            ),
        ]
        db = db_with()
        for h1, h2 in cases:
            result = check_history_equivalence(h1, h2, db)
            if result.is_equivalent:
                assert h1.execute(db).same_contents(h2.execute(db))
