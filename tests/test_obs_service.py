"""Observability through the service: the /metrics endpoint under
concurrency, trace-id propagation across client retries, server-side
trace emission, and EXPLAIN ANALYZE over the HTTP API."""

import io
import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import trace
from repro.service import (
    ServiceClient,
    ServiceClientError,
    WhatIfServer,
    WhatIfService,
)

from test_obs import parse_exposition

SPEC = {
    "replace": [
        [1, "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"]
    ]
}


@pytest.fixture(autouse=True)
def _tracing_reset():
    yield
    trace.configure_tracing(None)


@pytest.fixture
def server(tmp_path, orders_db, paper_history):
    service = WhatIfService(tmp_path / "stores")
    service.register("orders", orders_db, paper_history)
    server = WhatIfServer(service, port=0).start_background()
    yield server
    server.shutdown()


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


class TestMetricsEndpoint:
    def test_scrape_is_valid_exposition(self, client):
        client.whatif("orders", SPEC)
        samples = parse_exposition(client.metrics())
        # Request accounting from the handler...
        assert samples['mahif_requests_total{route="whatif",code="200"}'] == 1
        assert (
            samples['mahif_request_seconds_count{route="whatif"}'] == 1
        )
        assert samples['mahif_request_seconds_bucket{route="whatif",le="+Inf"}'] == 1
        # ...admission control state...
        assert samples["mahif_in_flight"] == 0
        assert samples["mahif_shed_total"] == 0
        # ...the service's cache counters...
        assert samples['mahif_result_cache_misses_total{history="orders"}'] == 1
        # ...and process-global families merged into the same scrape.
        assert "mahif_planner_choice_total" in client.metrics()
        assert any(
            series.startswith("mahif_sqlite_") for series in samples
        )

    def test_cache_hits_and_invalidations_counted(self, client):
        first = client.whatif("orders", SPEC)
        again = client.whatif("orders", SPEC)
        assert not first["cached"] and again["cached"]
        samples = parse_exposition(client.metrics())
        assert samples['mahif_result_cache_hits_total{history="orders"}'] == 1
        assert samples['mahif_result_cache_misses_total{history="orders"}'] == 1
        # An append touching the cached delta's relation drops the entry.
        client.append(
            "orders",
            statements_sql="UPDATE Orders SET Price = Price + 1 "
            "WHERE Country = 'US';",
        )
        samples = parse_exposition(client.metrics())
        assert (
            samples[
                'mahif_result_cache_invalidations_total{history="orders"}'
            ]
            >= 1
        )

    def test_metrics_scrape_counts_itself(self, client):
        client.metrics()
        samples = parse_exposition(client.metrics())
        assert samples['mahif_requests_total{route="metrics",code="200"}'] >= 1

    def test_metrics_can_be_disabled(self, tmp_path, orders_db):
        service = WhatIfService(tmp_path / "stores")
        service.register("orders", orders_db)
        server = WhatIfServer(
            service, port=0, metrics=False
        ).start_background()
        try:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceClientError) as err:
                client.metrics()
            assert err.value.status == 404
            assert client.health()["ok"]  # health is unaffected
        finally:
            server.shutdown()

    def test_concurrent_scrapes_and_appends(self, server):
        """Scrapes racing appends and queries: every scrape parses
        cleanly (no torn lines) and counters only ever move up."""
        failures: list[str] = []

        def appender() -> None:
            client = ServiceClient(server.url)
            for _ in range(6):
                client.append(
                    "orders",
                    statements_sql="UPDATE Orders SET Price = Price + 0 "
                    "WHERE ID = 11;",
                )
                client.whatif("orders", SPEC)

        def scraper() -> list[dict[str, float]]:
            client = ServiceClient(server.url)
            scrapes = []
            for _ in range(10):
                try:
                    scrapes.append(parse_exposition(client.metrics()))
                except AssertionError as exc:
                    failures.append(str(exc))
            return scrapes

        with ThreadPoolExecutor(max_workers=4) as pool:
            writers = [pool.submit(appender) for _ in range(2)]
            readers = [pool.submit(scraper) for _ in range(2)]
            for writer in writers:
                writer.result()
            scrape_runs = [reader.result() for reader in readers]
        assert not failures
        for scrapes in scrape_runs:
            assert len(scrapes) == 10
            for before, after in zip(scrapes, scrapes[1:]):
                for series, value in before.items():
                    if "_total" in series or "_bucket" in series or (
                        "_count" in series
                    ):
                        assert after.get(series, 0) >= value, series


class TestTracePropagation:
    def test_every_response_carries_a_trace_id(self, client):
        # No tracing configured, no client header: the server still
        # assigns an id and echoes it.
        answer = client.whatif("orders", SPEC)
        assert len(answer["trace_id"]) == 32
        health = client.health()
        assert health["trace_id"]

    def test_client_retries_reuse_one_trace_id(self, server):
        sent_ids: list[str] = []
        state = {"failed": False}

        def opener(request, timeout=None):
            headers = {k.lower(): v for k, v in request.headers.items()}
            sent_ids.append(headers["x-mahif-trace"])
            if not state["failed"]:
                state["failed"] = True
                raise urllib.error.HTTPError(
                    request.full_url, 503, "shed",
                    {"Retry-After": "0"},
                    io.BytesIO(b'{"error": "shed"}'),
                )
            return urllib.request.urlopen(request, timeout=timeout)

        client = ServiceClient(
            server.url, retries=2, sleep=lambda s: None, opener=opener
        )
        answer = client.whatif("orders", SPEC)
        assert len(sent_ids) == 2
        assert sent_ids[0] == sent_ids[1]  # one logical request, one id
        assert answer["trace_id"] == sent_ids[0]

    def test_distinct_calls_get_distinct_ids(self, client):
        first = client.whatif("orders", SPEC)
        second = client.health()
        assert first["trace_id"] != second["trace_id"]

    def test_server_emits_span_tree_for_sampled_request(self, client):
        lines: list[str] = []
        lock = threading.Lock()

        def sink(line: str) -> None:
            with lock:
                lines.append(line)

        trace.configure_tracing(sink, sample=1.0)
        answer = client.whatif("orders", SPEC)
        with lock:
            spans = [json.loads(line) for line in lines]
        request_spans = [s for s in spans if s["name"] == "request"]
        ours = next(
            s
            for s in request_spans
            if s["trace_id"] == answer["trace_id"]
        )
        assert ours["attributes"]["route"] == "whatif"
        assert ours["attributes"]["status"] == 200
        names = {
            s["name"] for s in spans if s["trace_id"] == answer["trace_id"]
        }
        assert {"request", "cache", "plan", "execute"} <= names

    def test_unsampled_requests_still_echo_ids(self, client):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=0.0)
        answer = client.whatif("orders", SPEC)
        assert answer["trace_id"]
        assert not lines


class TestServiceExplain:
    def test_explain_payload_carries_profile(self, client):
        answer = client.whatif("orders", SPEC, explain=True)
        assert not answer["cached"]
        profile = answer["profile"]
        assert set(profile) == {"Orders"}
        for side in ("original", "modified"):
            tree = profile["Orders"][side]
            assert tree["operator"]
            assert tree["rows"] >= 0 and tree["seconds"] >= 0.0
        # The delta itself matches the uninstrumented answer.
        plain = client.whatif("orders", SPEC)
        assert answer["delta"] == plain["delta"]

    def test_explain_bypasses_the_result_cache(self, client):
        first = client.whatif("orders", SPEC, explain=True)
        second = client.whatif("orders", SPEC, explain=True)
        assert not first["cached"] and not second["cached"]
        # Explain neither reads nor seeds the cache: a plain answer
        # after two explains is still a miss, and no hit was counted.
        plain = client.whatif("orders", SPEC)
        assert not plain["cached"]
        samples = parse_exposition(client.metrics())
        assert (
            samples.get(
                'mahif_result_cache_hits_total{history="orders"}', 0
            )
            == 0
        )

    def test_plain_answers_have_no_profile(self, client):
        answer = client.whatif("orders", SPEC)
        assert "profile" not in answer

    def test_batch_explain(self, client):
        results = client.whatif_batch(
            "orders", [SPEC, {"delete_stmt": [2]}], explain=True
        )
        assert len(results) == 2
        for result in results:
            assert result["profile"]
            assert not result["cached"]
