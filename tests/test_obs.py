"""The observability layer in isolation: metrics instruments and
Prometheus rendering, span trees and sampling, EXPLAIN ANALYZE
profiling, and the engine's explain surface."""

import json
import re
import threading

import pytest

from repro import (
    HistoricalWhatIfQuery,
    Mahif,
    MahifConfig,
    Method,
    parse_statement,
)
from repro.core import Replace
from repro.obs import trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import OperatorProfile, profile_query
from repro.relational.algebra import (
    Project,
    RelScan,
    Select,
    Union,
    evaluate_query,
)
from repro.relational.expressions import col, ge, lit, lt

BACKENDS = ("interpreted", "compiled", "sqlite")

#: One Prometheus text-format sample line: name{labels} value.
_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[nN]a[nN]|[+-]?[iI]nf)$"
)


def parse_exposition(text: str) -> dict[str, float]:
    """Validate a Prometheus text scrape line by line; return the
    ``{name{labels}: value}`` samples.  Any torn or malformed line
    fails the assertion."""
    assert text.endswith("\n"), "exposition must end with a newline"
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert _METRIC_LINE.match(line), f"malformed sample line: {line!r}"
        series, value = line.rsplit(" ", 1)
        assert series not in samples, f"duplicate series: {series!r}"
        samples[series] = float(value)
    return samples


@pytest.fixture(autouse=True)
def _tracing_reset():
    yield
    trace.configure_tracing(None)


class TestCounter:
    def test_inc_value_and_labels(self):
        c = Counter("mahif_x_total", "help", ("kind",))
        c.inc(kind="a")
        c.inc(2, kind="a")
        c.inc(kind="b")
        assert c.value(kind="a") == 3
        assert c.value(kind="b") == 1
        assert c.value(kind="missing") == 0

    def test_monotonic(self):
        c = Counter("mahif_x_total", "help")
        with pytest.raises(ValueError, match="monotonic"):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        c = Counter("mahif_x_total", "help", ("kind",))
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(other="a")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc()

    def test_render(self):
        c = Counter("mahif_x_total", "help text", ("kind",))
        c.inc(kind="a")
        lines = c.render()
        assert lines[0] == "# HELP mahif_x_total help text"
        assert lines[1] == "# TYPE mahif_x_total counter"
        assert 'mahif_x_total{kind="a"} 1' in lines

    def test_unlabeled_renders_zero_before_first_inc(self):
        c = Counter("mahif_x_total", "help")
        assert "mahif_x_total 0" in c.render()


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("mahif_x", "help")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value() == 3

    def test_callback_reads_live_state(self):
        state = {"n": 7}
        g = Gauge("mahif_x", "help", callback=lambda: state["n"])
        assert g.value() == 7
        state["n"] = 9
        assert "mahif_x 9" in g.render()

    def test_callback_gauge_rejects_set_and_labels(self):
        g = Gauge("mahif_x", "help", callback=lambda: 1)
        with pytest.raises(ValueError, match="callback"):
            g.set(2)
        with pytest.raises(ValueError, match="labeled"):
            Gauge("mahif_y", "help", ("kind",), callback=lambda: 1)

    def test_broken_callback_renders_nan(self):
        def boom() -> float:
            raise RuntimeError("broken")

        g = Gauge("mahif_x", "help", callback=boom)
        (sample,) = [
            line for line in g.render() if not line.startswith("#")
        ]
        assert sample == "mahif_x nan"


class TestHistogram:
    def test_cumulative_buckets_sum_count(self):
        h = Histogram("mahif_x_seconds", "help", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)  # over the top bound: only +Inf
        lines = h.render()
        assert 'mahif_x_seconds_bucket{le="0.1"} 1' in lines
        assert 'mahif_x_seconds_bucket{le="1.0"} 2' in lines
        assert 'mahif_x_seconds_bucket{le="+Inf"} 3' in lines
        assert "mahif_x_seconds_count 3" in lines
        assert h.count() == 3
        assert h.sum() == pytest.approx(5.55)

    def test_timer_uses_injected_clock(self):
        ticks = iter([10.0, 10.25])
        h = Histogram(
            "mahif_x_seconds", "help", ("route",),
            buckets=(0.1, 1.0), clock=lambda: next(ticks),
        )
        with h.time(route="whatif"):
            pass
        assert h.sum(route="whatif") == pytest.approx(0.25)
        assert h.count(route="whatif") == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("mahif_x_total", "help")
        b = registry.counter("mahif_x_total", "other help")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("mahif_x_total", "help")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("mahif_x_total", "help")

    def test_register_external_instrument(self):
        registry = MetricsRegistry()
        owned = Counter("mahif_shed_total", "help")
        assert registry.register(owned) is owned
        assert registry.register(owned) is owned  # idempotent
        with pytest.raises(ValueError, match="already registered"):
            registry.register(Counter("mahif_shed_total", "help"))
        registry.unregister("mahif_shed_total")
        registry.register(Counter("mahif_shed_total", "help"))

    def test_reset_zeroes_but_keeps_registration(self):
        registry = MetricsRegistry()
        counter = registry.counter("mahif_x_total", "help")
        counter.inc(5)
        registry.reset()
        assert registry.counter("mahif_x_total", "help") is counter
        assert counter.value() == 0

    def test_render_is_valid_exposition(self):
        registry = MetricsRegistry()
        registry.counter("mahif_x_total", "help", ("kind",)).inc(
            kind='we"ird\nvalue'
        )
        registry.gauge("mahif_g", "help").set(1.5)
        registry.histogram(
            "mahif_h_seconds", "help", buckets=(0.1,)
        ).observe(0.05)
        samples = parse_exposition(registry.render())
        assert samples['mahif_x_total{kind="we\\"ird\\nvalue"}'] == 1
        assert samples["mahif_g"] == 1.5
        assert samples['mahif_h_seconds_bucket{le="+Inf"}'] == 1

    def test_render_merges_without_shadowing(self):
        mine = MetricsRegistry()
        other = MetricsRegistry()
        mine.counter("mahif_shared_total", "help").inc(1)
        other.counter("mahif_shared_total", "help").inc(99)
        other.counter("mahif_only_total", "help").inc(2)
        samples = parse_exposition(mine.render(other))
        assert samples["mahif_shared_total"] == 1  # first wins
        assert samples["mahif_only_total"] == 2


class TestTracing:
    def test_span_tree_flushes_at_root_close(self):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=1.0)
        with trace.start_trace("request", trace_id="t" * 32) as root:
            with trace.span("plan", method="R+PS+DS"):
                with trace.span("verify"):
                    pass
            assert not lines  # nothing emitted before the root closes
        spans = [json.loads(line) for line in lines]
        assert [s["name"] for s in spans] == ["request", "plan", "verify"]
        assert all(s["trace_id"] == "t" * 32 for s in spans)
        by_name = {s["name"]: s for s in spans}
        assert by_name["request"]["parent_id"] is None
        assert by_name["plan"]["parent_id"] == by_name["request"]["span_id"]
        assert by_name["verify"]["parent_id"] == by_name["plan"]["span_id"]
        assert by_name["plan"]["attributes"] == {"method": "R+PS+DS"}
        assert all(s["duration"] >= 0 for s in spans)

    def test_unsampled_trace_is_noop_and_free(self):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=0.0)
        with trace.start_trace("request") as root:
            root.set_attribute("status", 200)
            with trace.span("plan"):
                pass
        assert not lines
        assert trace.current_span() is None

    def test_span_without_active_trace_is_noop(self):
        with trace.span("orphan") as s:
            s.add_event("ignored")
        assert trace.current_span() is None

    def test_deterministic_sampler(self):
        lines: list[str] = []
        draws = iter([True, False])
        trace.configure_tracing(
            lines.append, sampler=lambda: next(draws)
        )
        with trace.start_trace("a"):
            pass
        with trace.start_trace("b"):
            pass
        assert [json.loads(l)["name"] for l in lines] == ["a"]

    def test_error_recorded_on_exception(self):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=1.0)
        with pytest.raises(RuntimeError):
            with trace.start_trace("request"):
                raise RuntimeError("boom")
        (root,) = [json.loads(line) for line in lines]
        assert root["attributes"]["error"] == "RuntimeError"

    def test_use_span_bridges_threads(self):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=1.0)
        with trace.start_trace("request") as root:
            def worker() -> None:
                with trace.use_span(root):
                    with trace.span("compute"):
                        pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        spans = {json.loads(l)["name"]: json.loads(l) for l in lines}
        assert spans["compute"]["parent_id"] == spans["request"]["span_id"]

    def test_record_span_attaches_completed_child(self):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=1.0)
        with trace.start_trace("request"):
            trace.record_span("shard", 0.125, shard=3)
        spans = [json.loads(line) for line in lines]
        shard = next(s for s in spans if s["name"] == "shard")
        assert shard["duration"] == pytest.approx(0.125)
        assert shard["attributes"] == {"shard": 3}

    def test_broken_sink_never_raises(self):
        def sink(line: str) -> None:
            raise OSError("disk full")

        trace.configure_tracing(sink, sample=1.0)
        with trace.start_trace("request"):
            pass  # must not raise


def _fee_query() -> Union:
    """Union of two selections over Orders — four operator kinds."""
    cheap = Select(RelScan("Orders"), lt(col("Price"), lit(50)))
    pricey = Project(
        Select(RelScan("Orders"), ge(col("Price"), lit(50))),
        (
            (col("ID"), "ID"),
            (col("Customer"), "Customer"),
            (col("Country"), "Country"),
            (col("Price"), "Price"),
            (lit(0), "ShippingFee"),
        ),
    )
    return Union(cheap, pricey)


class TestProfileQuery:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_result_matches_plain_evaluation(self, orders_db, backend):
        op = _fee_query()
        plain = evaluate_query(op, orders_db, backend=backend)
        result, profile = profile_query(op, orders_db, backend=backend)
        assert result == plain
        assert profile.operator == "Union"
        assert profile.rows == len(plain)
        kinds = {profile.operator}
        stack = list(profile.children)
        while stack:
            node = stack.pop()
            kinds.add(node.operator)
            stack.extend(node.children)
        assert {"Union", "Select", "Project", "RelScan"} <= kinds

    def test_payload_roundtrip_and_pretty(self, orders_db):
        _, profile = profile_query(_fee_query(), orders_db)
        assert OperatorProfile.from_payload(profile.payload()) == profile
        text = profile.pretty()
        assert text.splitlines()[0].startswith("Union [rows=")
        assert "  Select" in text  # children indent
        assert "rows=" in text and "ms]" in text
        assert profile.total_seconds >= profile.seconds


def _paper_query(orders_db, paper_history) -> HistoricalWhatIfQuery:
    return HistoricalWhatIfQuery(
        paper_history,
        orders_db,
        (
            # Replace u1: zero fees only from 60 up.
            Replace(
                1,
                parse_statement(
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60"
                ),
            ),
        ),
    )


class TestEngineExplain:
    @pytest.fixture
    def query(self, orders_db, paper_history):
        return _paper_query(orders_db, paper_history)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explain_delta_matches_plain(self, query, backend):
        config = MahifConfig(backend=backend)
        plain = Mahif(config).answer(query, Method.R_PS_DS)
        explained = Mahif(config).answer(
            query, Method.R_PS_DS, explain=True
        )
        assert explained.delta.relations == plain.delta.relations
        assert plain.profile is None
        assert explained.profile is not None
        assert set(explained.profile) == {"Orders"}
        sides = explained.profile["Orders"]
        assert set(sides) == {"original", "modified"}
        for side in sides.values():
            assert isinstance(side, OperatorProfile)
            assert side.rows >= 0 and side.seconds >= 0.0

    def test_profile_config_flag(self, query):
        result = Mahif(MahifConfig(profile=True)).answer(
            query, Method.R_PS_DS
        )
        assert result.profile is not None

    def test_naive_explain_has_no_profile(self, query):
        result = Mahif(MahifConfig()).answer(
            query, Method.NAIVE, explain=True
        )
        assert result.profile is None
        assert result.delta is not None

    def test_explain_forces_serial_evaluation(self, query):
        # Sharded config + explain: the profiled path bypasses the
        # shard fan-out, and the answer still matches.
        sharded = MahifConfig(shards=4)
        plain = Mahif(sharded).answer(query, Method.R_PS_DS)
        explained = Mahif(sharded).answer(
            query, Method.R_PS_DS, explain=True
        )
        assert explained.delta.relations == plain.delta.relations
        assert explained.profile is not None

    def test_batch_explain(self, orders_db, paper_history, query):
        engine = Mahif(MahifConfig())
        results = engine.answer_batch(
            [query, query], Method.R_PS_DS, explain=True
        )
        assert len(results) == 2
        for result in results:
            assert result.profile is not None
            assert set(result.profile) == {"Orders"}

    def test_engine_spans_under_active_trace(self, query):
        lines: list[str] = []
        trace.configure_tracing(lines.append, sample=1.0)
        with trace.start_trace("request"):
            Mahif(MahifConfig()).answer(query, Method.R_PS_DS)
        names = [json.loads(line)["name"] for line in lines]
        assert "plan" in names
        assert "execute" in names
        assert "relation" in names
