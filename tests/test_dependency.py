"""Dependency-based slicing tests (Section 9, Theorem 5)."""

import pytest

from repro import Database, History, Relation, Schema
from repro.core.dependency import dependency_slice
from repro.core.hwq import Replace, align
from repro.core.program_slicing import greedy_slice
from repro.relational.expressions import and_, col, ge, le, lit
from repro.relational.statements import DeleteStatement, UpdateStatement

SCHEMA = Schema.of("k", "P", "F")
ROWS = [(i, i * 10, 5) for i in range(1, 11)]


def db_with(rows=ROWS):
    return Database({"R": Relation.from_rows(SCHEMA, rows)})


def schemas():
    return {"R": SCHEMA}


def window(low, high):
    return and_(ge(col("P"), low), le(col("P"), high))


def verify_slice(db, aligned, kept):
    full = set(
        aligned.original.execute(db)["R"].symmetric_difference(
            aligned.modified.execute(db)["R"]
        )
    )
    sliced_pair = aligned.subset(kept)
    sliced = set(
        sliced_pair.original.execute(db)["R"].symmetric_difference(
            sliced_pair.modified.execute(db)["R"]
        )
    )
    assert full == sliced


class TestDependencySlice:
    def test_example9_overlapping_updates_are_dependent(self):
        """Example 9's shape: u2's window overlaps u1's affected tuples."""
        u1 = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 40))
        u1p = UpdateStatement("R", {"F": lit(0)}, ge(col("P"), 60))
        u2 = UpdateStatement("R", {"F": col("F") + 5}, le(col("P"), 100))
        aligned = align(History.of(u1, u2), [Replace(1, u1p)])
        result = dependency_slice(aligned, db_with(), schemas())
        assert result.kept_positions == (1, 2)

    def test_disjoint_windows_independent(self):
        u1 = UpdateStatement("R", {"F": lit(0)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(0)}, window(10, 40))
        u_far = UpdateStatement("R", {"F": col("F") + 1}, window(80, 100))
        aligned = align(History.of(u1, u_far), [Replace(1, u1p)])
        db = db_with()
        result = dependency_slice(aligned, db, schemas())
        assert result.kept_positions == (1,)
        verify_slice(db, aligned, result.kept_positions)

    def test_transitive_dependence_through_attribute_chain(self):
        """u3 depends on the modification *through* u2: the modification
        touches P<=30 tuples, u2 rewrites their F, u3 conditions on F."""
        u1 = UpdateStatement("R", {"F": lit(50)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(50)}, window(10, 20))
        u2 = UpdateStatement("R", {"F": col("F") * 2}, ge(col("F"), 50))
        u3 = UpdateStatement("R", {"k": col("k") + 100}, ge(col("F"), 100))
        aligned = align(History.of(u1, u2, u3), [Replace(1, u1p)])
        db = db_with()
        result = dependency_slice(aligned, db, schemas())
        # u2 overlaps (F=50 reachable for modified tuples), u3 sees F=100
        assert 2 in result.kept_positions
        assert 3 in result.kept_positions
        verify_slice(db, aligned, result.kept_positions)

    def test_compression_proves_independence(self):
        """F is 5 everywhere, so an update on F >= 1000 is impossible —
        provable only through Φ_D."""
        u1 = UpdateStatement("R", {"F": lit(0)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(0)}, window(10, 40))
        u_impossible = UpdateStatement(
            "R", {"k": lit(0)}, ge(col("F"), 1000)
        )
        aligned = align(History.of(u1, u_impossible), [Replace(1, u1p)])
        db = db_with()
        result = dependency_slice(aligned, db, schemas())
        assert 2 not in result.kept_positions
        verify_slice(db, aligned, result.kept_positions)

    def test_deletes_supported(self):
        d = DeleteStatement("R", window(10, 30))
        dp = DeleteStatement("R", window(10, 40))
        u_far = UpdateStatement("R", {"F": col("F") + 1}, window(80, 100))
        u_near = UpdateStatement("R", {"F": col("F") + 1}, window(20, 50))
        aligned = align(History.of(d, u_far, u_near), [Replace(1, dp)])
        db = db_with()
        result = dependency_slice(aligned, db, schemas())
        assert 2 not in result.kept_positions
        assert 3 in result.kept_positions
        verify_slice(db, aligned, result.kept_positions)

    def test_multiple_modifications(self):
        u1 = UpdateStatement("R", {"F": lit(0)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(0)}, window(10, 40))
        u2 = UpdateStatement("R", {"F": col("F") + 1}, window(50, 70))
        u2p = UpdateStatement("R", {"F": col("F") + 1}, window(50, 60))
        u_far = UpdateStatement("R", {"F": col("F") + 2}, window(90, 100))
        u_mid = UpdateStatement("R", {"F": col("F") + 3}, window(35, 55))
        aligned = align(
            History.of(u1, u2, u_far, u_mid),
            [Replace(1, u1p), Replace(2, u2p)],
        )
        db = db_with()
        result = dependency_slice(aligned, db, schemas())
        assert 1 in result.kept_positions and 2 in result.kept_positions
        assert 3 not in result.kept_positions  # disjoint from both mods
        assert 4 in result.kept_positions      # overlaps the second mod
        verify_slice(db, aligned, result.kept_positions)

    def test_consistent_with_greedy(self):
        """Both slicers must produce *valid* slices; greedy may keep a
        superset of dependency's slice when its larger exact formulas
        push the solver into the conservative UNKNOWN regime."""
        u1 = UpdateStatement("R", {"F": lit(0)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(0)}, window(10, 40))
        statements = [u1]
        for low in (20, 50, 80):
            statements.append(
                UpdateStatement(
                    "R", {"F": col("F") + 1}, window(low, low + 15)
                )
            )
        aligned = align(History(tuple(statements)), [Replace(1, u1p)])
        db = db_with()
        dep = dependency_slice(aligned, db, schemas())
        greedy = greedy_slice(aligned, db, schemas())
        assert set(dep.kept_positions) <= set(greedy.kept_positions)
        verify_slice(db, aligned, dep.kept_positions)
        verify_slice(db, aligned, greedy.kept_positions)

    def test_solver_call_count_linear(self):
        """One solver call per non-modified statement on the relation."""
        u1 = UpdateStatement("R", {"F": lit(0)}, window(10, 30))
        u1p = UpdateStatement("R", {"F": lit(0)}, window(10, 40))
        others = [
            UpdateStatement("R", {"F": col("F") + 1}, window(50, 60))
            for _ in range(4)
        ]
        aligned = align(History.of(u1, *others), [Replace(1, u1p)])
        result = dependency_slice(aligned, db_with(), schemas())
        assert result.solver_calls == 4
