"""The what-if service under sharded execution (``--shards > 1``).

Covers the service-level contract DESIGN.md's "Sharded execution"
section states: per-request and default shard counts route through
sharded engines, answers are identical to the unsharded in-process
oracle, the result-cache fingerprint includes the shard count (entries
never cross configurations), append invalidation behaves exactly as in
the unsharded service, and a sharded server's answers survive a restart
equal to the in-process oracle over the persisted history.
"""

import pytest

from repro import (
    Database,
    HistoricalWhatIfQuery,
    History,
    Mahif,
    MahifConfig,
    Relation,
    Schema,
    parse_history,
)
from repro.service import (
    METHODS,
    ServiceClient,
    WhatIfServer,
    WhatIfService,
    modifications_from_spec,
    result_payload,
)

HISTORY_SQL = """
UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;
UPDATE Orders SET ShippingFee = ShippingFee + 5
    WHERE Country = 'UK' AND Price <= 100;
UPDATE Orders SET ShippingFee = ShippingFee - 2
    WHERE Price <= 30 AND ShippingFee >= 10;
"""


def spec_for(threshold: int) -> dict:
    return {
        "replace": [
            [1, f"UPDATE Orders SET ShippingFee = 0 "
                f"WHERE Price >= {threshold}"]
        ]
    }


def expected_delta(database, history, spec, *, shards=1):
    query = HistoricalWhatIfQuery(
        history, database, modifications_from_spec(spec)
    )
    result = Mahif(MahifConfig(shards=shards)).answer(
        query, METHODS["R+PS+DS"]
    )
    return result_payload(result)["delta"]


@pytest.fixture
def sharded_server(tmp_path, orders_db, paper_history):
    service = WhatIfService(tmp_path / "stores", default_shards=2)
    service.register("orders", orders_db, paper_history)
    server = WhatIfServer(service, port=0).start_background()
    yield server
    server.shutdown()


@pytest.fixture
def client(sharded_server):
    return ServiceClient(sharded_server.url)


class TestShardedAnswering:
    def test_default_shards_match_in_process_oracle(
        self, client, orders_db, paper_history
    ):
        answer = client.whatif("orders", spec_for(60))
        assert answer["shards"] == 2
        assert answer["delta"] == expected_delta(
            orders_db, paper_history, spec_for(60)
        )

    def test_request_shards_override_and_batch(
        self, client, orders_db, paper_history
    ):
        specs = [spec_for(55), spec_for(70)]
        results = client.whatif_batch("orders", specs, shards=4)
        assert [r["shards"] for r in results] == [4, 4]
        assert [r["delta"] for r in results] == [
            expected_delta(orders_db, paper_history, spec)
            for spec in specs
        ]

    def test_invalid_shards_rejected(self, client):
        from repro.service import ServiceClientError

        with pytest.raises(ServiceClientError):
            client.whatif("orders", spec_for(60), shards=-1)
        with pytest.raises(ServiceClientError):
            client.whatif("orders", spec_for(60), shards="many")
        # the engine map is keyed per shard count, so client-supplied
        # counts are capped (MAX_SHARDS) instead of growing it unbounded
        with pytest.raises(ServiceClientError):
            client.whatif("orders", spec_for(60), shards=65)

    def test_explicit_shards_one_overrides_server_default(self, client):
        answer = client.whatif("orders", spec_for(58), shards=1)
        assert answer["shards"] == 1


class TestShardedResultCache:
    def test_repeat_query_hits_cache(self, client):
        first = client.whatif("orders", spec_for(60))
        second = client.whatif("orders", spec_for(60))
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["delta"] == first["delta"]

    def test_fingerprint_separates_shard_counts(self, client):
        """The same query at different shard counts must not share a
        cache entry (the payload records its configuration)."""
        sharded = client.whatif("orders", spec_for(60), shards=2)
        unsharded = client.whatif("orders", spec_for(60), shards=1)
        assert sharded["cached"] is False
        assert unsharded["cached"] is False  # distinct entry, first miss
        assert unsharded["shards"] == 1
        assert unsharded["delta"] == sharded["delta"]
        assert client.whatif(
            "orders", spec_for(60), shards=1
        )["cached"] is True

    def test_append_drops_overlapping_entries(
        self, client, orders_db, paper_history
    ):
        spec = spec_for(60)
        client.whatif("orders", spec)
        append_sql = (
            "UPDATE Orders SET Price = Price + 1 WHERE Country = 'US';"
        )
        info = client.append("orders", statements_sql=append_sql)
        assert info["cache_dropped"] == 1
        answer = client.whatif("orders", spec)
        assert answer["cached"] is False
        extended = History(
            tuple(paper_history) + tuple(parse_history(append_sql))
        )
        assert answer["delta"] == expected_delta(
            orders_db, extended, spec
        )

    def test_append_retains_disjoint_entries(self, tmp_path):
        db = Database(
            {
                "Orders": Relation.from_rows(
                    Schema.of("ID", "Price", "ShippingFee"),
                    [(1, 20, 5), (2, 60, 3)],
                ),
                "Audit": Relation.from_rows(
                    Schema.of("ID", "Flag"), [(1, 0)]
                ),
            }
        )
        history = History(
            tuple(
                parse_history(
                    "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 50;"
                )
            )
        )
        service = WhatIfService(tmp_path / "stores2", default_shards=2)
        service.register("mixed", db, history)
        server = WhatIfServer(service, port=0).start_background()
        try:
            client = ServiceClient(server.url)
            spec = {
                "replace": [[1, "UPDATE Orders SET ShippingFee = 0 "
                                "WHERE Price >= 70"]]
            }
            first = client.whatif("mixed", spec)
            info = client.append(
                "mixed",
                statements_sql="UPDATE Audit SET Flag = 1 WHERE ID = 1;",
            )
            assert info["cache_retained"] == 1
            assert info["cache_dropped"] == 0
            second = client.whatif("mixed", spec)
            assert second["cached"] is True
            assert second["delta"] == first["delta"]
        finally:
            server.shutdown()


class TestShardedPersistence:
    def test_sharded_server_resumes_equal_to_oracle(
        self, tmp_path, orders_db, paper_history
    ):
        root = tmp_path / "stores"
        service = WhatIfService(root, default_shards=4)
        service.register("orders", orders_db, paper_history)
        server = WhatIfServer(service, port=0).start_background()
        client = ServiceClient(server.url)
        spec = spec_for(60)
        before = client.whatif("orders", spec)
        append_sql = (
            "UPDATE Orders SET Price = Price + 1 WHERE Country = 'US';"
        )
        client.append("orders", statements_sql=append_sql)
        server.shutdown()

        revived = WhatIfServer(
            WhatIfService(root, default_shards=4), port=0
        ).start_background()
        try:
            client = ServiceClient(revived.url)
            after = client.whatif("orders", spec)
            assert after["cached"] is False  # caches are process-local
            assert after["shards"] == 4
            extended = History(
                tuple(paper_history) + tuple(parse_history(append_sql))
            )
            # equal to the in-process oracle, sharded and unsharded
            assert after["delta"] == expected_delta(
                orders_db, extended, spec, shards=4
            )
            assert after["delta"] == expected_delta(
                orders_db, extended, spec, shards=1
            )
            assert before["shards"] == 4
        finally:
            revived.shutdown()


class TestShardedServiceConfig:
    def test_bad_default_shards_rejected(self, tmp_path):
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            WhatIfService(tmp_path / "s", default_shards=-1)
        with pytest.raises(ServiceError):
            WhatIfService(tmp_path / "s", default_shards=65)
        with pytest.raises(ServiceError):
            WhatIfService(tmp_path / "s", default_shards="sixteen")

    def test_auto_default_shards_accepted(self, tmp_path):
        from repro.core.planner import AUTO_SHARDS

        service = WhatIfService(tmp_path / "s", default_shards="auto")
        try:
            assert service.default_shards == AUTO_SHARDS
        finally:
            service.close()


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
