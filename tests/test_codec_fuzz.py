"""Property-fuzz for the store codec: random round trips, exact types.

``store/codec.py`` promises *exact* round trips — ``Const(True)`` never
comes back as ``Const(1)``, ``1`` never as ``1.0``, and ``±Inf``/``NaN``
survive — but until now that promise leaned on hand-written cases.
This suite round-trips randomly generated statements, expressions and
set/bag snapshots drawn from ``fuzz_differential``'s codec value pool
(bools, ints, int-valued floats, ±Inf, NaN, -0.0, denormals, unicode
and quote-laden strings), comparing structurally with *type identity*:
dataclass ``==`` treats ``1 == True == 1.0`` and ``NaN != NaN``, so
plain equality can neither catch type collapses nor accept NaN — every
scalar is compared as ``(type, repr)``, which distinguishes all of the
above and is reflexive for NaN.
"""

import pytest

from fuzz_differential import (
    fresh_rng,
    random_codec_rows,
    random_codec_statement,
    random_codec_value,
    scaled,
)

from repro.relational import BagDatabase, BagRelation, Database, Relation, Schema
from repro.store import (
    decode_database,
    decode_statement,
    encode_database,
    encode_statement,
)
from repro.store.codec import decode_expr, encode_expr

N_STATEMENTS = 200
N_SNAPSHOTS = 40
N_EXPRS = 150


def exact(value):
    """A scalar as ``(type name, repr)`` — type-exact and NaN-reflexive.

    ``repr`` distinguishes ``-0.0`` from ``0.0`` and round-trips every
    float bit pattern; the type name separates ``True``/``1``/``1.0``.
    """
    return (type(value).__name__, repr(value))


def exact_row(row):
    return tuple(exact(cell) for cell in row)


def assert_same_tree(left, right):
    """Structural equality over expression/operator/statement trees with
    ``exact`` scalar comparison at the leaves."""
    assert type(left) is type(right), (left, right)
    if isinstance(left, (list, tuple)):
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert_same_tree(a, b)
        return
    if isinstance(left, dict):
        assert sorted(left) == sorted(right)
        for key in left:
            assert_same_tree(left[key], right[key])
        return
    if hasattr(left, "__dataclass_fields__"):
        for name in left.__dataclass_fields__:
            assert_same_tree(getattr(left, name), getattr(right, name))
        return
    assert exact(left) == exact(right)


class TestStatementRoundTrip:
    def test_random_statements_round_trip_exactly(self):
        rng = fresh_rng(offset=70)
        for trial in range(scaled(N_STATEMENTS)):
            stmt = random_codec_statement(rng)
            decoded = decode_statement(encode_statement(stmt))
            assert_same_tree(stmt, decoded)

    def test_random_expressions_round_trip_exactly(self):
        from fuzz_differential import random_codec_expr

        rng = fresh_rng(offset=71)
        for trial in range(scaled(N_EXPRS)):
            expr = random_codec_expr(rng, ("k", "c0", "c1"), depth=3)
            assert_same_tree(expr, decode_expr(encode_expr(expr)))


class TestSnapshotRoundTrip:
    @staticmethod
    def _schema(rng):
        arity = rng.randint(1, 4)
        return Schema(tuple(f"c{i}" for i in range(arity)))

    def test_set_snapshots_round_trip_exactly(self):
        rng = fresh_rng(offset=72)
        for trial in range(scaled(N_SNAPSHOTS)):
            schema = self._schema(rng)
            rows = random_codec_rows(
                rng, schema.arity, rng.randint(0, 12)
            )
            db = Database(
                {"R": Relation.from_rows(schema, rows)}
            )
            decoded = decode_database(encode_database(db))
            assert isinstance(decoded, Database)
            original = sorted(exact_row(r) for r in db["R"].tuples)
            restored = sorted(exact_row(r) for r in decoded["R"].tuples)
            assert restored == original
            assert decoded["R"].schema.attributes == schema.attributes

    def test_bag_snapshots_round_trip_exactly(self):
        rng = fresh_rng(offset=73)
        for trial in range(scaled(N_SNAPSHOTS)):
            schema = self._schema(rng)
            rows = random_codec_rows(
                rng, schema.arity, rng.randint(0, 10)
            )
            bag = BagRelation(
                schema,
                {
                    tuple(row): rng.randint(1, 4)
                    for row in rows
                },
            )
            db = BagDatabase({"R": bag})
            decoded = decode_database(encode_database(db))
            assert isinstance(decoded, BagDatabase)
            original = sorted(
                (exact_row(row), count)
                for row, count in bag.multiplicities.items()
            )
            restored = sorted(
                (exact_row(row), count)
                for row, count in decoded["R"].multiplicities.items()
            )
            assert restored == original

    def test_type_collapse_would_be_caught(self):
        """The comparator itself: a bool-vs-int or NaN-vs-NaN confusion
        in a future codec change must fail these assertions."""
        assert exact(True) != exact(1)
        assert exact(1) != exact(1.0)
        assert exact(-0.0) != exact(0.0)
        assert exact(float("nan")) == exact(float("nan"))
        assert exact(float("inf")) != exact(float("-inf"))


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
