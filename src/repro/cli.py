"""Command-line interface: Mahif as an actual middleware.

Answer a historical what-if query from the shell::

    python -m repro.cli whatif \
        --data ./tables/ \
        --history history.sql \
        --replace 1 "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60" \
        --method R+PS+DS

* ``--data`` — a directory of ``<relation>.csv`` files (the pre-history
  database; a production deployment would read this via time travel),
* ``--history`` — a ``;``-separated SQL script (UPDATE/DELETE/INSERT),
* ``--replace POS SQL`` / ``--delete-stmt POS`` / ``--insert-stmt POS SQL``
  — the modifications (repeatable),
* ``--method`` — one of N, R, R+DS, R+PS, R+PS+DS (default R+PS+DS),
* ``--explain`` — also print why-provenance for each delta tuple,
* ``--out delta.csv`` — write the delta as CSV (with a sign column).

Batched service mode: answer many what-if queries over the shared
history in one call (shared time travel, shared reenactment plans,
optional worker pool — see DESIGN.md, "Batched answering")::

    python -m repro.cli whatif \
        --data ./tables/ --history history.sql \
        --batch queries.json --batch-workers 4 --out deltas.jsonl

``queries.json`` holds a JSON array of modification specs, each with any
of ``"replace"``/``"insert_stmt"`` (lists of ``[position, sql]`` pairs)
and ``"delete_stmt"`` (list of positions)::

    [
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 60"]]},
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 70"]]},
        {"delete_stmt": [2]}
    ]

The answers are emitted as JSON lines — one object per query, in input
order, with the per-relation ``+``/``-`` tuples and timing — to stdout
or to ``--out``.

Service mode: ``python -m repro.cli serve`` runs the concurrent what-if
server over a root directory of persistent history stores (see
DESIGN.md, "Service architecture")::

    python -m repro.cli serve --root ./stores --port 8734 \
        --name orders --data ./tables/ --history history.sql

and ``--url`` on ``whatif`` remote-executes the same ``--replace``/
``--batch`` flags against a stored history instead of computing
in-process::

    python -m repro.cli whatif --url http://127.0.0.1:8734 \
        --name orders --batch queries.json

There is also ``python -m repro.cli replay`` to simply execute a history
and print/export the final state.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Sequence

from .core import HistoricalWhatIfQuery, Mahif, MahifConfig, Method
from .core.provenance import explain_delta
from .relational import BACKENDS, History, parse_history
from .relational.csvio import format_value, load_database_dir, relation_to_csv
from .relational.parser import ParseError

__all__ = ["main", "build_parser"]

_METHODS = {m.value: m for m in Method}


def _print(*values: object, **kwargs: object) -> None:
    """The CLI's output funnel — deltas, tables, status lines.

    The repro-lint ``no-print`` rule keeps ``src/repro`` free of bare
    ``print()``; user-facing CLI output is the sanctioned exception,
    concentrated here behind one pragma.
    """
    # repro-lint: allow[no-print] -- the CLI's user-facing output funnel
    print(*values, **kwargs)


def _fail(message: str) -> "SystemExit":
    """One-line error to stderr, nonzero exit — never a traceback."""
    return SystemExit(f"repro.cli: error: {message}")


def _shards_flag(text: str) -> "int | str":
    """``--shards`` value: a positive count, ``0``, or ``auto``.

    ``auto`` (and ``0``) select the cost-based planner; the engine and
    service validate ranges, this only parses the shape.
    """
    if text.strip().lower() == "auto":
        return "auto"
    return int(text)  # ValueError -> argparse's invalid-value message


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Mahif: answer historical what-if queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    whatif = sub.add_parser("whatif", help="answer a what-if query")
    whatif.add_argument("--data",
                        help="directory of <relation>.csv files "
                        "(required unless --url targets a stored history)")
    whatif.add_argument("--history",
                        help="SQL script file with the history "
                        "(required unless --url targets a stored history)")
    whatif.add_argument(
        "--replace", nargs=2, action="append", default=[],
        metavar=("POS", "SQL"), help="replace statement at POS",
    )
    whatif.add_argument(
        "--delete-stmt", action="append", default=[], metavar="POS",
        help="delete the statement at POS",
    )
    whatif.add_argument(
        "--insert-stmt", nargs=2, action="append", default=[],
        metavar=("POS", "SQL"), help="insert a statement before POS",
    )
    whatif.add_argument(
        "--method", default="R+PS+DS", choices=sorted(_METHODS),
        help="answering method (default: R+PS+DS)",
    )
    whatif.add_argument(
        "--slicing", default="dependency",
        choices=("dependency", "greedy"),
        help="program-slicing algorithm",
    )
    whatif.add_argument(
        "--backend", default="compiled",
        choices=BACKENDS,
        help="execution backend: compiled closures, the tree-walking "
        "reference interpreter, server-side SQL on in-memory sqlite, "
        "or vectorized columnar kernels",
    )
    whatif.add_argument(
        "--shards", type=_shards_flag, default=None, metavar="N",
        help="shard-parallel reenactment: partition each relation into "
        "N shards, skip shards the modification provably cannot touch, "
        "and merge the per-shard deltas; 'auto' (or 0) lets the "
        "cost-based planner decide per query (default: unsharded "
        "locally, the server's default over --url; an explicit value "
        "always wins, including --shards 1)",
    )
    whatif.add_argument(
        "--explain", action="store_true",
        help="EXPLAIN ANALYZE: print the per-operator time/row profile "
        "of both reenactment queries (and, for a single local query, "
        "why-provenance for delta tuples); with --batch or --url the "
        "JSON answers gain a \"profile\" tree instead",
    )
    whatif.add_argument("--out", help="write the delta as CSV")
    whatif.add_argument("--quiet", action="store_true")
    whatif.add_argument(
        "--batch", metavar="SPEC.JSON",
        help="answer a JSON array of modification specs over the shared "
        "history in one batched call, emitting JSON-lines deltas "
        "(--replace/--delete-stmt/--insert-stmt are then ignored; "
        "--out redirects the JSON lines)",
    )
    whatif.add_argument(
        "--batch-workers", type=int, default=0, metavar="N",
        help="worker pool size for --batch: processes for the in-process "
        "backends, threads for sqlite (default 0: no pool)",
    )
    whatif.add_argument(
        "--url", metavar="URL",
        help="remote-execute against a running what-if service instead of "
        "computing in-process (see the serve command); answers come back "
        "as JSON",
    )
    whatif.add_argument(
        "--name", metavar="NAME",
        help="with --url: the stored history to query; when --data/"
        "--history are also given, the history is registered under this "
        "name first",
    )
    whatif.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="with --url: retry shed (503) and transport failures up to "
        "N times with exponential backoff + jitter, honoring the "
        "server's Retry-After hint (default 2; 0 disables)",
    )
    whatif.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help="with --url: total time budget per call across retries, "
        "also propagated to the server as X-Mahif-Deadline-Ms so it "
        "stops computing once nobody is waiting",
    )

    replay = sub.add_parser("replay", help="execute a history")
    replay.add_argument("--data", required=True)
    replay.add_argument("--history", required=True)
    replay.add_argument("--relation", help="print only this relation")
    replay.add_argument("--out", help="write the final state CSV here")
    replay.add_argument(
        "--bag", action="store_true",
        help="replay under bag semantics; --out writes a multiplicity "
        "(_count) column so duplicates survive the CSV round-trip",
    )

    serve = sub.add_parser(
        "serve", help="run the concurrent what-if service"
    )
    serve.add_argument(
        "--root", required=True,
        help="directory holding the persistent history stores (created "
        "if missing; existing stores are reopened)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8734,
        help="listen port (0 binds an ephemeral port, printed on start)",
    )
    serve.add_argument(
        "--backend", default="compiled", choices=BACKENDS,
        help="default execution backend for answers",
    )
    serve.add_argument(
        "--checkpoint-interval", type=int, default=32, metavar="K",
        help="snapshot checkpoint every K statements in new stores",
    )
    serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="default worker pool for batched answers",
    )
    serve.add_argument(
        "--shards", type=_shards_flag, default="auto", metavar="N",
        help="default shard count for answers; 'auto' (the default) "
        "lets the cost-based planner pick per query, so sharding only "
        "happens where it wins (requests can override with a \"shards\" "
        "body field — including \"auto\")",
    )
    serve.add_argument(
        "--name", help="preload: register this history name on startup"
    )
    serve.add_argument(
        "--data", help="preload: directory of <relation>.csv files"
    )
    serve.add_argument(
        "--history", help="preload: SQL script file with the history"
    )
    serve.add_argument(
        "--max-in-flight", type=int, default=32, metavar="N",
        help="admission control: concurrent compute (whatif/batch) "
        "requests admitted; beyond N new ones are shed with 503 + "
        "Retry-After instead of queueing without bound (0 disables)",
    )
    serve.add_argument(
        "--deadline-ms", type=int, default=None, metavar="MS",
        help="server-side default deadline for compute requests when "
        "the client sends no X-Mahif-Deadline-Ms header; expiring "
        "requests get a fast 504 (default: no timeout)",
    )
    serve.add_argument(
        "--max-body-bytes", type=int, default=16 * 1024 * 1024,
        metavar="BYTES",
        help="largest accepted request body; bigger ones are refused "
        "with 413 before being read (default 16 MiB)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=10.0, metavar="SECONDS",
        help="how long graceful shutdown waits for in-flight requests "
        "to finish before closing (default 10)",
    )
    serve.add_argument(
        "--no-sync", action="store_true",
        help="skip fsync on appends and checkpoints: faster, but a "
        "power loss can drop acknowledged statements (crash-safety of "
        "the log format itself is unaffected)",
    )
    serve.add_argument(
        "--verbose", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    serve.add_argument(
        "--no-metrics", action="store_true",
        help="disable the GET /metrics Prometheus text endpoint "
        "(enabled by default; metrics are still collected in-process)",
    )
    serve.add_argument(
        "--trace-sink", metavar="PATH",
        help="append per-request trace trees as JSON lines to PATH "
        "(tracing is off without this flag)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="FRACTION",
        help="fraction of requests to trace when --trace-sink is set, "
        "0..1 (default 1.0: every request; ids still propagate when "
        "a request is unsampled)",
    )
    return parser


def _load_history(path: str) -> History:
    try:
        with open(path) as fh:
            return History(tuple(parse_history(fh.read())))
    except OSError as exc:
        raise _fail(f"cannot read history script {path!r}: {exc}") from None
    except ParseError as exc:
        raise _fail(f"history script {path!r}: {exc}") from None


def _load_database(path: str):
    try:
        return load_database_dir(path)
    except OSError as exc:
        raise _fail(f"cannot read CSV data from {path!r}: {exc}") from None
    except ValueError as exc:
        raise _fail(f"CSV data in {path!r}: {exc}") from None


def _build_modifications(args: argparse.Namespace):
    """Modification objects from the flags — the flags become a wire
    spec, parsed by the same :func:`modifications_from_spec` the server
    and the ``--batch`` path use (one parser, one error style)."""
    from .service.wire import SpecError, modifications_from_spec

    try:
        return modifications_from_spec(_modification_spec(args))
    except SpecError as exc:
        raise _fail(f"unparseable modification flags: {exc}") from None


def _modification_spec(args: argparse.Namespace) -> dict:
    """The wire-format spec equivalent of the modification flags."""
    spec: dict = {}
    try:
        if args.replace:
            spec["replace"] = [[int(p), sql] for p, sql in args.replace]
        if args.delete_stmt:
            spec["delete_stmt"] = [int(p) for p in args.delete_stmt]
        if args.insert_stmt:
            spec["insert_stmt"] = [
                [int(p), sql] for p, sql in args.insert_stmt
            ]
    except (TypeError, ValueError) as exc:
        raise _fail(f"bad modification position: {exc}") from None
    if not spec:
        raise SystemExit(
            "at least one --replace/--delete-stmt/--insert-stmt is required"
        )
    return spec


def _load_batch_specs(path: str) -> list:
    """Read a ``--batch`` spec file: a non-empty JSON array of objects.

    Unreadable files and non-JSON content get a one-line error instead
    of a traceback; per-entry shape validation happens in
    :func:`repro.service.wire.modifications_from_spec`.
    """
    try:
        with open(path) as fh:
            spec = json.load(fh)
    except OSError as exc:
        raise _fail(f"cannot read --batch spec {path!r}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise _fail(f"--batch spec {path!r} is not valid JSON: {exc}") from None
    if not isinstance(spec, list) or not spec:
        raise _fail(
            f"--batch spec {path!r} must be a non-empty JSON array of "
            "modification specs"
        )
    return spec


def _parse_batch_spec(path: str):
    """Parse a ``--batch`` spec file into per-query modification tuples."""
    from .service.wire import SpecError, modifications_from_spec

    batches = []
    for index, entry in enumerate(_load_batch_specs(path)):
        try:
            batches.append(modifications_from_spec(entry))
        except SpecError as exc:
            # Malformed shapes ([[1]] missing the SQL, a dict instead of
            # pair lists, a non-numeric position, ...) get the entry
            # index instead of a raw traceback.
            raise _fail(f"--batch entry {index}: {exc}") from None
    return batches


def _delta_json(result) -> dict:
    """One JSON-lines record for a batched answer — the shared wire
    rendering, keeping every empty relation delta for backward
    compatibility (the service omits them)."""
    from .service.wire import result_payload

    return result_payload(result, include_empty=True)


def _print_profile(profile, *, file=None) -> None:
    """Render EXPLAIN ANALYZE trees: per affected relation, the
    per-operator time/row profile of both reenactment queries.

    Accepts both in-process :class:`~repro.obs.profile.OperatorProfile`
    values (the local path) and their JSON payloads (over ``--url``).
    """
    from .obs.profile import OperatorProfile

    for relation in sorted(profile):
        for side in ("original", "modified"):
            prof = profile[relation].get(side)
            if prof is None:
                continue
            if not isinstance(prof, OperatorProfile):
                prof = OperatorProfile.from_payload(prof)
            _print(f"\nEXPLAIN ANALYZE {relation} ({side} history):",
                  file=file)
            _print(prof.pretty(1), file=file)


def _emit_json_lines(lines: list[str], args: argparse.Namespace) -> None:
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        if not args.quiet:
            _print(f"{len(lines)} deltas written to {args.out}")
    else:
        for line in lines:
            _print(line)


def _cmd_whatif_remote(args: argparse.Namespace) -> int:
    """Remote-execute --replace/--batch against a running service."""
    from .service import ServiceClient, ServiceClientError

    if not args.name:
        raise _fail("--url requires --name (the stored history to query)")
    # Validate all local inputs *before* any server-side effect, so a
    # malformed flag cannot leave a half-registered history behind.
    if args.batch:
        specs = _load_batch_specs(args.batch)
    else:
        specs = None
        single_spec = _modification_spec(args)
    if args.retries < 0:
        raise _fail("--retries must be >= 0")
    if args.deadline_ms is not None and args.deadline_ms < 1:
        raise _fail("--deadline-ms must be >= 1")
    client = ServiceClient(
        args.url,
        retries=args.retries,
        deadline=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
    )
    try:
        if args.data or args.history:
            if not (args.data and args.history):
                raise _fail(
                    "registering a history over --url needs both --data "
                    "and --history"
                )
            database = _load_database(args.data)
            history = _load_history(args.history)
            try:
                client.register(args.name, database, history)
            except ServiceClientError as exc:
                # Swallow only the duplicate-name conflict (a verbatim
                # re-run of the register+query one-liner); other 409s
                # (registration in flight, store-level failures) are
                # real errors.
                duplicate = f"history {args.name!r} already exists"
                if exc.status != 409 or duplicate not in str(exc):
                    raise
                # Status lines go to stderr: stdout carries only the
                # JSONL answers, like the local --batch path.
                if not args.quiet:
                    _print(
                        f"history {args.name!r} already exists on the "
                        "server; querying the stored history "
                        "(--data/--history ignored)",
                        file=sys.stderr,
                    )
            else:
                if not args.quiet:
                    _print(
                        f"registered history {args.name!r} "
                        f"({len(history)} statements)",
                        file=sys.stderr,
                    )
        if specs is not None:
            results = client.whatif_batch(
                args.name, specs, method=args.method, backend=args.backend,
                workers=args.batch_workers or None,
                shards=args.shards,
                explain=args.explain,
            )
        else:
            results = [
                client.whatif(
                    args.name, single_spec,
                    method=args.method, backend=args.backend,
                    shards=args.shards,
                    explain=args.explain,
                )
            ]
    except ServiceClientError as exc:
        raise _fail(f"service call failed: {exc}") from None
    lines = [
        json.dumps({"query": index, **result})
        for index, result in enumerate(results)
    ]
    _emit_json_lines(lines, args)
    if args.explain and not args.quiet and specs is None:
        # The JSON answer above carries the raw profile payload; also
        # render the tree for a human, like the local path (stderr, so
        # stdout stays machine-parseable JSONL).
        profile = results[0].get("profile")
        if profile:
            _print_profile(profile, file=sys.stderr)
    return 0


def _cmd_whatif_batch(args: argparse.Namespace) -> int:
    database = _load_database(args.data)
    history = _load_history(args.history)
    queries = [
        HistoricalWhatIfQuery(history, database, modifications)
        for modifications in _parse_batch_spec(args.batch)
    ]
    config = _engine_config(args, batch_workers=args.batch_workers)
    results = Mahif(config).answer_batch(
        queries, _METHODS[args.method], explain=args.explain
    )
    lines = [
        json.dumps({"query": index, **_delta_json(result)})
        for index, result in enumerate(results)
    ]
    _emit_json_lines(lines, args)
    return 0


def _engine_config(
    args: argparse.Namespace, *, batch_workers: int = 0
) -> MahifConfig:
    """The engine configuration the whatif flags describe."""
    try:
        return MahifConfig(
            slicing_algorithm=args.slicing,
            backend=args.backend,
            batch_workers=batch_workers,
            shards=args.shards if args.shards is not None else 1,
        )
    except ValueError as exc:
        raise _fail(str(exc)) from None


def _require_local_inputs(args: argparse.Namespace) -> None:
    if not args.data or not args.history:
        raise _fail(
            "--data and --history are required (or pass --url to query a "
            "stored history on a running service)"
        )


def _cmd_whatif(args: argparse.Namespace) -> int:
    if args.url:
        return _cmd_whatif_remote(args)
    _require_local_inputs(args)
    if args.batch:
        return _cmd_whatif_batch(args)
    database = _load_database(args.data)
    history = _load_history(args.history)
    modifications = _build_modifications(args)
    query = HistoricalWhatIfQuery(history, database, modifications)
    config = _engine_config(args)
    result = Mahif(config).answer(
        query, _METHODS[args.method], explain=args.explain
    )

    if not args.quiet:
        _print(result.delta.pretty())
        _print()
        _print(
            f"method={args.method} "
            f"ps={result.ps_seconds:.3f}s exe={result.exe_seconds:.3f}s"
        )
        if result.slice_result:
            s = result.slice_result
            _print(
                f"slice: kept {len(s.kept_positions)}/{s.total_positions} "
                f"statements ({s.solver_calls} solver calls)"
            )

    if args.explain and result.profile is not None:
        _print_profile(result.profile)

    if args.explain and result.queries_original is not None:
        for relation in sorted(result.delta.relations):
            explanation = explain_delta(result, relation)
            _print(f"\nprovenance for Δ {relation}:")
            for row, witnesses in sorted(
                explanation.items(), key=lambda kv: repr(kv[0])
            ):
                sources = ", ".join(
                    f"{w.relation}{w.row}" for w in sorted(
                        witnesses, key=lambda s: repr(s.row)
                    )
                ) or "(query-generated)"
                _print(f"  {row} <- {sources}")

    if args.out:
        with open(args.out, "w", newline="") as fh:
            writer = csv.writer(fh)
            for relation in sorted(result.delta.relations):
                delta = result.delta[relation]
                writer.writerow(
                    ["relation", "sign", *delta.schema.attributes]
                )
                for sign, row in delta.annotated_rows():
                    writer.writerow(
                        [relation, sign, *[format_value(v) for v in row]]
                    )
        if not args.quiet:
            _print(f"\ndelta written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import (
        ResilienceConfig,
        ServiceError,
        WhatIfServer,
        WhatIfService,
    )

    try:
        resilience = ResilienceConfig(
            max_in_flight=args.max_in_flight,
            default_deadline_ms=args.deadline_ms,
            max_body_bytes=args.max_body_bytes,
            drain_timeout=args.drain_timeout,
        )
    except ValueError as exc:
        raise _fail(str(exc)) from None
    try:
        service = WhatIfService(
            args.root,
            default_backend=args.backend,
            checkpoint_interval=args.checkpoint_interval,
            batch_workers=args.workers,
            default_shards=args.shards,
            sync=not args.no_sync,
        )
    except (ServiceError, OSError) as exc:
        raise _fail(f"cannot start service: {exc}") from None
    if args.trace_sample < 0.0 or args.trace_sample > 1.0:
        raise _fail("--trace-sample must be between 0 and 1")
    if args.trace_sink:
        from .obs.trace import configure_tracing

        try:
            # The sink reopens per flush; probe now so an unwritable
            # path fails at startup instead of silently dropping traces.
            with open(args.trace_sink, "a", encoding="utf-8"):
                pass
        except OSError as exc:
            raise _fail(
                f"cannot open --trace-sink {args.trace_sink!r}: {exc}"
            ) from None
        configure_tracing(args.trace_sink, sample=args.trace_sample)
    if args.name and args.name not in service.history_names():
        if not (args.data and args.history):
            raise _fail(
                "preloading --name needs both --data and --history"
            )
        database = _load_database(args.data)
        history = _load_history(args.history)
        try:
            service.register(args.name, database, history)
        except ServiceError as exc:
            raise _fail(f"cannot register {args.name!r}: {exc}") from None
        _print(
            f"registered history {args.name!r} ({len(history)} statements)",
            flush=True,
        )
    elif args.name and (args.data or args.history):
        _print(
            f"history {args.name!r} already exists under {args.root}; "
            "serving the persisted history (--data/--history ignored — "
            "append via the API to evolve it)",
            flush=True,
        )
    server = WhatIfServer(
        service, host=args.host, port=args.port, quiet=not args.verbose,
        resilience=resilience, metrics=not args.no_metrics,
    )
    host, port = server.address
    observability = "metrics=off" if args.no_metrics else "metrics=/metrics"
    if args.trace_sink:
        observability += (
            f", tracing {args.trace_sample:g} of requests "
            f"to {args.trace_sink}"
        )
    _print(
        f"serving what-if queries on http://{host}:{port} "
        f"(root={args.root}, backend={args.backend}, "
        f"histories={service.history_names()}, {observability})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    database = _load_database(args.data)
    history = _load_history(args.history)
    if args.bag:
        # Bag semantics: duplicates are data; the plain relation CSV
        # writer refuses bags, so export goes through bag_to_csv.
        from .relational import BagDatabase, execute_history_bag
        from .relational.csvio import bag_to_csv

        final_bag = execute_history_bag(
            history, BagDatabase.from_set_database(database)
        )
        names = (
            [args.relation] if args.relation else final_bag.relation_names()
        )
        for name in names:
            _print(f"== {name} ==")
            _print(final_bag[name].to_set_relation().pretty())
        if args.out:
            target = args.relation or names[0]
            bag_to_csv(final_bag[target], args.out)
            _print(f"\n{target} written to {args.out} (bag, _count column)")
        return 0
    final = history.execute(database)
    names = [args.relation] if args.relation else final.relation_names()
    for name in names:
        _print(f"== {name} ==")
        _print(final[name].pretty())
    if args.out:
        target = args.relation or names[0]
        relation_to_csv(final[target], args.out)
        _print(f"\n{target} written to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "whatif":
        return _cmd_whatif(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
