"""Command-line interface: Mahif as an actual middleware.

Answer a historical what-if query from the shell::

    python -m repro.cli whatif \
        --data ./tables/ \
        --history history.sql \
        --replace 1 "UPDATE Orders SET ShippingFee = 0 WHERE Price >= 60" \
        --method R+PS+DS

* ``--data`` — a directory of ``<relation>.csv`` files (the pre-history
  database; a production deployment would read this via time travel),
* ``--history`` — a ``;``-separated SQL script (UPDATE/DELETE/INSERT),
* ``--replace POS SQL`` / ``--delete-stmt POS`` / ``--insert-stmt POS SQL``
  — the modifications (repeatable),
* ``--method`` — one of N, R, R+DS, R+PS, R+PS+DS (default R+PS+DS),
* ``--explain`` — also print why-provenance for each delta tuple,
* ``--out delta.csv`` — write the delta as CSV (with a sign column).

Batched service mode: answer many what-if queries over the shared
history in one call (shared time travel, shared reenactment plans,
optional worker pool — see DESIGN.md, "Batched answering")::

    python -m repro.cli whatif \
        --data ./tables/ --history history.sql \
        --batch queries.json --batch-workers 4 --out deltas.jsonl

``queries.json`` holds a JSON array of modification specs, each with any
of ``"replace"``/``"insert_stmt"`` (lists of ``[position, sql]`` pairs)
and ``"delete_stmt"`` (list of positions)::

    [
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 60"]]},
        {"replace": [[1, "UPDATE Orders SET Fee = 0 WHERE Price >= 70"]]},
        {"delete_stmt": [2]}
    ]

The answers are emitted as JSON lines — one object per query, in input
order, with the per-relation ``+``/``-`` tuples and timing — to stdout
or to ``--out``.

There is also ``python -m repro.cli replay`` to simply execute a history
and print/export the final state.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from typing import Sequence

from .core import (
    DeleteStatementMod,
    HistoricalWhatIfQuery,
    InsertStatementMod,
    Mahif,
    MahifConfig,
    Method,
    Replace,
)
from .core.provenance import explain_delta
from .relational import BACKENDS, History, parse_history, parse_statement
from .relational.csvio import format_value, load_database_dir, relation_to_csv

__all__ = ["main", "build_parser"]

_METHODS = {m.value: m for m in Method}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Mahif: answer historical what-if queries",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    whatif = sub.add_parser("whatif", help="answer a what-if query")
    whatif.add_argument("--data", required=True,
                        help="directory of <relation>.csv files")
    whatif.add_argument("--history", required=True,
                        help="SQL script file with the history")
    whatif.add_argument(
        "--replace", nargs=2, action="append", default=[],
        metavar=("POS", "SQL"), help="replace statement at POS",
    )
    whatif.add_argument(
        "--delete-stmt", action="append", default=[], metavar="POS",
        help="delete the statement at POS",
    )
    whatif.add_argument(
        "--insert-stmt", nargs=2, action="append", default=[],
        metavar=("POS", "SQL"), help="insert a statement before POS",
    )
    whatif.add_argument(
        "--method", default="R+PS+DS", choices=sorted(_METHODS),
        help="answering method (default: R+PS+DS)",
    )
    whatif.add_argument(
        "--slicing", default="dependency",
        choices=("dependency", "greedy"),
        help="program-slicing algorithm",
    )
    whatif.add_argument(
        "--backend", default="compiled",
        choices=BACKENDS,
        help="execution backend: compiled closures, the tree-walking "
        "reference interpreter, or server-side SQL on in-memory sqlite",
    )
    whatif.add_argument("--explain", action="store_true",
                        help="print why-provenance for delta tuples")
    whatif.add_argument("--out", help="write the delta as CSV")
    whatif.add_argument("--quiet", action="store_true")
    whatif.add_argument(
        "--batch", metavar="SPEC.JSON",
        help="answer a JSON array of modification specs over the shared "
        "history in one batched call, emitting JSON-lines deltas "
        "(--replace/--delete-stmt/--insert-stmt are then ignored, "
        "--explain is rejected; --out redirects the JSON lines)",
    )
    whatif.add_argument(
        "--batch-workers", type=int, default=0, metavar="N",
        help="worker pool size for --batch: processes for the in-process "
        "backends, threads for sqlite (default 0: no pool)",
    )

    replay = sub.add_parser("replay", help="execute a history")
    replay.add_argument("--data", required=True)
    replay.add_argument("--history", required=True)
    replay.add_argument("--relation", help="print only this relation")
    replay.add_argument("--out", help="write the final state CSV here")
    return parser


def _load_history(path: str) -> History:
    with open(path) as fh:
        return History(tuple(parse_history(fh.read())))


def _modifications_from(replace_pairs, delete_positions, insert_pairs):
    """Build modification objects from (position, sql) containers —
    shared by the flag path and the ``--batch`` spec path."""
    modifications = []
    for pos, sql in replace_pairs:
        modifications.append(Replace(int(pos), parse_statement(sql)))
    for pos in delete_positions:
        modifications.append(DeleteStatementMod(int(pos)))
    for pos, sql in insert_pairs:
        modifications.append(
            InsertStatementMod(int(pos), parse_statement(sql))
        )
    return tuple(modifications)


def _build_modifications(args: argparse.Namespace):
    modifications = _modifications_from(
        args.replace, args.delete_stmt, args.insert_stmt
    )
    if not modifications:
        raise SystemExit(
            "at least one --replace/--delete-stmt/--insert-stmt is required"
        )
    return modifications


def _parse_batch_spec(path: str):
    """Parse a ``--batch`` spec file into per-query modification tuples."""
    with open(path) as fh:
        spec = json.load(fh)
    if not isinstance(spec, list) or not spec:
        raise SystemExit(
            "--batch expects a non-empty JSON array of modification specs"
        )
    batches = []
    for index, entry in enumerate(spec):
        if not isinstance(entry, dict):
            raise SystemExit(f"--batch entry {index} is not an object")
        unknown = set(entry) - {"replace", "delete_stmt", "insert_stmt"}
        if unknown:
            raise SystemExit(
                f"--batch entry {index} has unknown keys {sorted(unknown)}"
            )
        try:
            modifications = _modifications_from(
                entry.get("replace") or [],
                entry.get("delete_stmt") or [],
                entry.get("insert_stmt") or [],
            )
        except (TypeError, ValueError) as exc:
            # Malformed shapes ([[1]] missing the SQL, a dict instead of
            # pair lists, a non-numeric position, ...) get the entry
            # index instead of a raw traceback.
            raise SystemExit(
                f"--batch entry {index} is malformed: {exc} — expected "
                '{"replace"/"insert_stmt": [[position, sql], ...], '
                '"delete_stmt": [position, ...]}'
            ) from None
        if not modifications:
            raise SystemExit(f"--batch entry {index} has no modifications")
        batches.append(modifications)
    return batches


def _delta_json(result) -> dict:
    """One JSON-lines record for a batched answer."""
    return {
        "delta": {
            relation: {
                "attributes": list(delta.schema.attributes),
                "added": [
                    list(row) for row in sorted(delta.added, key=repr)
                ],
                "removed": [
                    list(row) for row in sorted(delta.removed, key=repr)
                ],
            }
            for relation, delta in sorted(result.delta.relations.items())
        },
        "ps_seconds": result.ps_seconds,
        "exe_seconds": result.exe_seconds,
    }


def _cmd_whatif_batch(args: argparse.Namespace) -> int:
    if args.explain:
        raise SystemExit(
            "--explain is not supported with --batch (provenance is "
            "per-query; run the query of interest without --batch)"
        )
    database = load_database_dir(args.data)
    history = _load_history(args.history)
    queries = [
        HistoricalWhatIfQuery(history, database, modifications)
        for modifications in _parse_batch_spec(args.batch)
    ]
    config = MahifConfig(
        slicing_algorithm=args.slicing,
        backend=args.backend,
        batch_workers=args.batch_workers,
    )
    results = Mahif(config).answer_batch(queries, _METHODS[args.method])
    lines = [
        json.dumps({"query": index, **_delta_json(result)})
        for index, result in enumerate(results)
    ]
    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        if not args.quiet:
            print(f"{len(lines)} deltas written to {args.out}")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    if args.batch:
        return _cmd_whatif_batch(args)
    database = load_database_dir(args.data)
    history = _load_history(args.history)
    modifications = _build_modifications(args)
    query = HistoricalWhatIfQuery(history, database, modifications)
    config = MahifConfig(
        slicing_algorithm=args.slicing, backend=args.backend
    )
    result = Mahif(config).answer(query, _METHODS[args.method])

    if not args.quiet:
        print(result.delta.pretty())
        print()
        print(
            f"method={args.method} "
            f"ps={result.ps_seconds:.3f}s exe={result.exe_seconds:.3f}s"
        )
        if result.slice_result:
            s = result.slice_result
            print(
                f"slice: kept {len(s.kept_positions)}/{s.total_positions} "
                f"statements ({s.solver_calls} solver calls)"
            )

    if args.explain and result.queries_original is not None:
        for relation in sorted(result.delta.relations):
            explanation = explain_delta(result, relation)
            print(f"\nprovenance for Δ {relation}:")
            for row, witnesses in sorted(
                explanation.items(), key=lambda kv: repr(kv[0])
            ):
                sources = ", ".join(
                    f"{w.relation}{w.row}" for w in sorted(
                        witnesses, key=lambda s: repr(s.row)
                    )
                ) or "(query-generated)"
                print(f"  {row} <- {sources}")

    if args.out:
        with open(args.out, "w", newline="") as fh:
            writer = csv.writer(fh)
            for relation in sorted(result.delta.relations):
                delta = result.delta[relation]
                writer.writerow(
                    ["relation", "sign", *delta.schema.attributes]
                )
                for sign, row in delta.annotated_rows():
                    writer.writerow(
                        [relation, sign, *[format_value(v) for v in row]]
                    )
        if not args.quiet:
            print(f"\ndelta written to {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    database = load_database_dir(args.data)
    history = _load_history(args.history)
    final = history.execute(database)
    names = [args.relation] if args.relation else final.relation_names()
    for name in names:
        print(f"== {name} ==")
        print(final[name].pretty())
    if args.out:
        target = args.relation or names[0]
        relation_to_csv(final[target], args.out)
        print(f"\n{target} written to {args.out}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "whatif":
        return _cmd_whatif(args)
    if args.command == "replay":
        return _cmd_replay(args)
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
