"""Structured request tracing: per-request span trees, JSONL sink.

One logical request gets one *trace*: a tree of timed spans named after
the pipeline stages it passed through (``request`` → ``plan`` →
``verify`` → ``partition`` → ``route`` → ``execute`` → ``merge`` →
``cache``; see DESIGN.md "Observability" for the full taxonomy).  Trace
ids are client-propagatable via the ``X-Mahif-Trace`` header and echoed
in response payloads, so a retried request keeps one id across
attempts and a saturated server's logs can be joined to the client's.

Semantics:

* **Sampling is decided once, at the root.**  :func:`start_trace`
  consults the configured sampler; an unsampled (or unconfigured)
  trace costs a single thread-local read per :func:`span` call site —
  the ≤5% instrumentation bound on the bench_backend smoke is measured
  against exactly this dormant path.
* **Emission is at root close.**  When the root span exits, every span
  in the tree is serialized as one JSON object per line to the
  configured sink (a callable or an append-mode file path, written
  under a module lock so concurrent requests never interleave lines).
* **Ambient by thread, explicitly portable.**  The active span lives
  in a ``threading.local`` stack; code that hops threads (the deadline
  worker) re-activates the parent with :func:`use_span`.  Work that
  lands in a process-pool worker simply sees no active trace and
  records nothing — cross-process spans are reconstructed by the
  parent from returned timings via :func:`record_span`.

The clock and the sampler are injectable (:func:`configure_tracing`),
so span durations and sampling decisions are deterministic in tests.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from typing import Any, Callable

__all__ = [
    "Span",
    "configure_tracing",
    "current_span",
    "new_trace_id",
    "record_span",
    "span",
    "start_trace",
    "tracing_configured",
    "use_span",
]


def new_trace_id() -> str:
    """A fresh 32-hex-digit trace id."""
    return uuid.uuid4().hex


class _Config:
    __slots__ = ("sink", "sample", "clock", "sampler")

    def __init__(self) -> None:
        self.sink: Callable[[str], None] | None = None
        self.sample: float = 0.0
        self.clock: Callable[[], float] = time.perf_counter
        self.sampler: Callable[[], bool] | None = None


_CONFIG = _Config()
_STATE = threading.local()
_SINK_LOCK = threading.Lock()


def configure_tracing(
    sink: Callable[[str], None] | str | None,
    *,
    sample: float = 1.0,
    clock: Callable[[], float] | None = None,
    sampler: Callable[[], bool] | None = None,
) -> None:
    """Install (or with ``sink=None`` remove) the trace sink.

    ``sink`` is a callable receiving one JSON line per span, or a file
    path opened in append mode per flush.  ``sample`` is the fraction
    of roots recorded (0 disables, 1 records all); ``sampler``
    overrides it with an explicit ``() -> bool`` for deterministic
    tests.  ``clock`` parameterizes span timestamps.
    """
    if isinstance(sink, str):
        path = sink

        def sink(line: str, _path: str = path) -> None:
            with open(_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")

    if not 0.0 <= sample <= 1.0:
        raise ValueError("sample must be within [0, 1]")
    _CONFIG.sink = sink
    _CONFIG.sample = sample
    _CONFIG.sampler = sampler
    if clock is not None:
        _CONFIG.clock = clock


def tracing_configured() -> bool:
    return _CONFIG.sink is not None


def _sampled() -> bool:
    if _CONFIG.sink is None:
        return False
    if _CONFIG.sampler is not None:
        return bool(_CONFIG.sampler())
    if _CONFIG.sample >= 1.0:
        return True
    if _CONFIG.sample <= 0.0:
        return False
    import random

    return random.random() < _CONFIG.sample


def _stack() -> list["Span"]:
    stack = getattr(_STATE, "stack", None)
    if stack is None:
        stack = _STATE.stack = []
    return stack


class Span:
    """One timed node in a trace tree.  Use as a context manager."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "duration",
        "attributes",
        "events",
        "children",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: str | None,
        attributes: dict[str, Any],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.name = name
        self.start = _CONFIG.clock()
        self.duration: float | None = None
        self.attributes = attributes
        self.events: list[dict[str, Any]] = []
        self.children: list["Span"] = []

    # -- recording --------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def set_attributes(self, values: dict[str, Any]) -> "Span":
        self.attributes.update(values)
        return self

    def add_event(self, name: str, **attributes: Any) -> "Span":
        self.events.append(
            {
                "name": name,
                "at": _CONFIG.clock() - self.start,
                **attributes,
            }
        )
        return self

    # -- context management -----------------------------------------

    def __enter__(self) -> "Span":
        _stack().append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None and "error" not in self.attributes:
            self.attributes["error"] = type(exc).__name__
        self.duration = _CONFIG.clock() - self.start
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if self.parent_id is None:
            _flush(self)

    def to_payload(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attributes": self.attributes,
            "events": self.events,
        }


class _NoopSpan:
    """Shared do-nothing span: the dormant fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def set_attributes(self, values: dict[str, Any]) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **attributes: Any) -> "_NoopSpan":
        return self


_NOOP = _NoopSpan()


def start_trace(name: str, trace_id: str | None = None, **attributes: Any):
    """Open a root span (a new trace) if tracing is configured and this
    root wins the sampling draw; otherwise return the no-op span."""
    if not _sampled():
        return _NOOP
    return Span(trace_id or new_trace_id(), name, None, dict(attributes))


def span(name: str, **attributes: Any):
    """Open a child of the thread's active span; no-op when no trace is
    active on this thread (the common, dormant case)."""
    stack = getattr(_STATE, "stack", None)
    if not stack:
        return _NOOP
    parent = stack[-1]
    child = Span(parent.trace_id, name, parent.span_id, dict(attributes))
    parent.children.append(child)
    return child


def record_span(name: str, seconds: float, **attributes: Any) -> None:
    """Attach an already-completed child span (e.g. a per-shard timing
    returned from a worker) to the active span."""
    stack = getattr(_STATE, "stack", None)
    if not stack:
        return
    parent = stack[-1]
    child = Span(parent.trace_id, name, parent.span_id, dict(attributes))
    child.start = _CONFIG.clock() - seconds
    child.duration = seconds
    parent.children.append(child)


def current_span() -> Span | None:
    """The thread's innermost active span, or None."""
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


class _UseSpan:
    __slots__ = ("_span", "_saved")

    def __init__(self, span_: Span | None) -> None:
        self._span = span_
        self._saved: list[Span] | None = None

    def __enter__(self) -> Span | None:
        self._saved = _stack()[:]
        _STATE.stack = [self._span] if self._span is not None else []
        return self._span

    def __exit__(self, *exc_info) -> None:
        _STATE.stack = self._saved or []


def use_span(span_: "Span | None") -> _UseSpan:
    """Re-activate ``span_`` as the active span on the current thread
    (deadline workers, pool threads) without finishing it on exit."""
    return _UseSpan(span_)


def _flush(root: Span) -> None:
    sink = _CONFIG.sink
    if sink is None:
        return
    lines: list[str] = []

    def _walk(node: Span) -> None:
        if node.duration is None:
            node.duration = _CONFIG.clock() - node.start
        lines.append(
            json.dumps(node.to_payload(), default=str, sort_keys=True)
        )
        for child in node.children:
            _walk(child)

    _walk(root)
    with _SINK_LOCK:
        for line in lines:
            try:
                sink(line)
            # repro-lint: allow[broad-swallow] -- a broken sink must never fail the request it observed
            except Exception:
                return
