"""EXPLAIN ANALYZE-style per-operator profiling for reenactment plans.

:func:`profile_query` evaluates an operator tree bottom-up, timing each
operator's *own* work and counting its output rows: children are
profiled first and materialized, then the node is re-rooted over a
scratch database in which each child subtree is replaced by a scan of
its materialized result.  Because the re-rooted single-operator tree is
evaluated through the ordinary backend dispatch, the same profiler
covers all three backends — compiled pipelines, the interpreted oracle
and the sqlite translation — without per-backend hooks, and the final
relation is exactly what plain evaluation would have produced (the
per-node materialization is the documented EXPLAIN ANALYZE overhead;
profiling is a diagnostic mode, never the hot path).

The result is an :class:`OperatorProfile` tree mirroring the plan
shape, with a terminal :meth:`~OperatorProfile.pretty` rendering::

    Union [rows=4 time=0.21ms]
      Project ShippingFee+5 -> ShippingFee [rows=2 time=0.08ms]
        Select Country = 'UK' [rows=2 time=0.05ms]
          RelScan Orders [rows=4 time=0.02ms]
      ...

and a JSON-friendly :meth:`~OperatorProfile.payload` for the service
API (``{"explain": true}`` on ``/histories/<name>/whatif``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from ..relational.algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
)
from ..relational.database import Database
from ..relational.relation import Relation

__all__ = ["OperatorProfile", "profile_query"]

#: Prefix for the scratch relations holding materialized child results;
#: reenactment never names user relations like this.
_SCRATCH = "__mahif_profile_"

_DETAIL_LIMIT = 72


@dataclass(frozen=True)
class OperatorProfile:
    """Wall time and output cardinality for one operator evaluation."""

    operator: str
    detail: str
    rows: int
    seconds: float
    children: tuple["OperatorProfile", ...] = field(default_factory=tuple)

    @property
    def total_seconds(self) -> float:
        """This operator plus everything below it."""
        return self.seconds + sum(c.total_seconds for c in self.children)

    def payload(self) -> dict:
        return {
            "operator": self.operator,
            "detail": self.detail,
            "rows": self.rows,
            "seconds": self.seconds,
            "children": [c.payload() for c in self.children],
        }

    @classmethod
    def from_payload(cls, data: dict) -> "OperatorProfile":
        return cls(
            operator=str(data.get("operator", "?")),
            detail=str(data.get("detail", "")),
            rows=int(data.get("rows", 0)),
            seconds=float(data.get("seconds", 0.0)),
            children=tuple(
                cls.from_payload(c) for c in data.get("children", ())
            ),
        )

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        detail = f" {self.detail}" if self.detail else ""
        line = (
            f"{pad}{self.operator}{detail} "
            f"[rows={self.rows} time={self.seconds * 1000:.2f}ms]"
        )
        parts = [line]
        parts.extend(c.pretty(indent + 1) for c in self.children)
        return "\n".join(parts)


def _clip(text: str) -> str:
    text = " ".join(text.split())
    if len(text) > _DETAIL_LIMIT:
        return text[: _DETAIL_LIMIT - 1] + "…"
    return text


def _describe(op: Operator) -> tuple[str, str]:
    """(operator kind, short human detail) for one node."""
    if isinstance(op, RelScan):
        return "RelScan", op.name
    if isinstance(op, Singleton):
        return "Singleton", _clip(repr(op.row))
    if isinstance(op, Project):
        return "Project", _clip(
            ", ".join(f"{expr} -> {name}" for expr, name in op.outputs)
        )
    if isinstance(op, Select):
        return "Select", _clip(str(op.condition))
    if isinstance(op, Union):
        return "Union", ""
    if isinstance(op, Difference):
        return "Difference", ""
    if isinstance(op, Join):
        return "Join", _clip(str(op.condition))
    return type(op).__name__, ""


def _children(op: Operator) -> tuple[Operator, ...]:
    if isinstance(op, (Project, Select)):
        return (op.input,)
    if isinstance(op, (Union, Difference, Join)):
        return (op.left, op.right)
    return ()


def _with_children(op: Operator, children: tuple[Operator, ...]) -> Operator:
    if isinstance(op, Project):
        return Project(children[0], op.outputs)
    if isinstance(op, Select):
        return Select(children[0], op.condition)
    if isinstance(op, Union):
        return Union(children[0], children[1])
    if isinstance(op, Difference):
        return Difference(children[0], children[1])
    if isinstance(op, Join):
        return Join(children[0], children[1], op.condition)
    raise TypeError(f"operator {type(op).__name__} has no children")


def profile_query(
    op: Operator,
    db: Database,
    backend: str | None = None,
    clock: Callable[[], float] = perf_counter,
) -> tuple[Relation, OperatorProfile]:
    """Evaluate ``op`` over ``db`` with per-operator instrumentation.

    Returns ``(result, profile)`` where ``result`` equals
    ``evaluate_query(op, db, backend=backend)`` and ``profile`` is the
    per-operator time/row tree.  ``clock`` is injectable for
    deterministic timing in tests.
    """
    kind, detail = _describe(op)
    children = _children(op)
    if not children:
        # Leaves (RelScan / Singleton) evaluate directly over the real
        # database, so scans are timed against actual base relations.
        start = clock()
        result = evaluate_query(op, db, backend=backend)
        elapsed = clock() - start
        return result, OperatorProfile(kind, detail, len(result), elapsed)

    profiled = [
        profile_query(child, db, backend=backend, clock=clock)
        for child in children
    ]
    scratch: dict[str, Relation] = {}
    scans: list[Operator] = []
    for i, (child_result, _) in enumerate(profiled):
        name = f"{_SCRATCH}{i}"
        scratch[name] = child_result
        scans.append(RelScan(name))
    rerooted = _with_children(op, tuple(scans))
    scratch_db = Database(scratch)
    start = clock()
    result = evaluate_query(rerooted, scratch_db, backend=backend)
    elapsed = clock() - start
    profile = OperatorProfile(
        kind,
        detail,
        len(result),
        elapsed,
        tuple(p for _, p in profiled),
    )
    return result, profile
