"""Structured event logging: the library's replacement for ``print``.

Library code under ``src/repro/`` must not write bare ``print()``
(enforced by the ``no-print`` rule in ``tools/repro_lint.py``); it
emits structured events here instead.  Events are single JSON lines —
``{"event": ..., "ts": ..., **fields}`` — written to a configurable
sink (stderr by default), so a serving process's diagnostics are
machine-parseable alongside its trace JSONL.

CLI user-facing output is exempt by design: the CLI's output *is* its
product surface, and its helpers carry an explicit lint pragma.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Any, Callable

__all__ = ["configure_logging", "log_event"]

_LOCK = threading.Lock()
_SINK: Callable[[str], None] | None = None
_CLOCK: Callable[[], float] = time.time


def configure_logging(
    sink: Callable[[str], None] | None,
    clock: Callable[[], float] | None = None,
) -> None:
    """Redirect events to ``sink`` (None restores stderr); ``clock``
    parameterizes the ``ts`` field for deterministic tests."""
    global _SINK, _CLOCK
    _SINK = sink
    if clock is not None:
        _CLOCK = clock


def log_event(event: str, **fields: Any) -> None:
    """Emit one structured event as a JSON line."""
    line = json.dumps(
        {"event": event, "ts": _CLOCK(), **fields},
        default=str,
        sort_keys=True,
    )
    sink = _SINK
    with _LOCK:
        if sink is not None:
            try:
                sink(line)
            # repro-lint: allow[broad-swallow] -- a broken log sink must never fail the caller
            except Exception:
                return
        else:
            # repro-lint: allow[no-print] -- the default structured-log sink is stderr
            print(line, file=sys.stderr, flush=True)
