"""Unified observability layer: metrics, tracing, profiling, logging.

One package, three windows into a running Mahif deployment, all with
zero third-party dependencies and injectable clocks (the repo-wide
idiom: contracts provable in tests without sleeps):

* :mod:`repro.obs.metrics` — a thread-safe metrics registry (counters,
  gauges, bucketed-latency histograms) rendered in Prometheus text
  exposition format by the ``/metrics`` endpoint on
  :class:`~repro.service.server.WhatIfServer`.  The process-global
  registry is the single source of truth for the degradation and
  planner counters that previously lived in ad-hoc module state.
* :mod:`repro.obs.trace` — structured per-request span trees (plan →
  verify → partition → route → execute → merge → cache), propagated
  across the wire via the ``X-Mahif-Trace`` header and emitted as JSON
  lines to a configurable sink.  Sampled off by default; the dormant
  instrumentation costs one thread-local read per span site.
* :mod:`repro.obs.profile` — EXPLAIN ANALYZE-style per-operator wall
  time and row counts for reenactment queries, surfaced through
  ``Mahif.answer(..., explain=True)``, ``whatif --explain`` and the
  service API.
* :mod:`repro.obs.logging` — the structured stderr event log that
  library code uses instead of bare ``print()`` (enforced by the
  ``no-print`` lint rule in ``tools/repro_lint.py``).
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from .trace import (
    configure_tracing,
    current_span,
    new_trace_id,
    record_span,
    span,
    start_trace,
    tracing_configured,
    use_span,
)
from .logging import log_event

# The profiler imports the algebra layer; keep it lazy (PEP 562, the
# exec-package idiom) so deep modules can import repro.obs for metrics
# or tracing without dragging the relational stack into their import
# graph.
_LAZY = {"OperatorProfile": "profile", "profile_query": "profile"}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OperatorProfile",
    "configure_tracing",
    "current_span",
    "global_registry",
    "log_event",
    "new_trace_id",
    "profile_query",
    "record_span",
    "span",
    "start_trace",
    "tracing_configured",
    "use_span",
]
