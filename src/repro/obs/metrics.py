"""Thread-safe metrics registry with Prometheus text exposition.

Zero dependencies: the three standard instrument kinds — monotonic
:class:`Counter`, :class:`Gauge` (set/inc or callback-backed) and
bucketed :class:`Histogram` — implemented over one lock per metric
family, rendered in `Prometheus text exposition format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ by
:meth:`MetricsRegistry.render`.

Design points, in the repo idiom:

* **Injectable clock.**  ``Histogram.time()`` and
  ``MetricsRegistry(clock=...)`` take a ``() -> float`` so latency
  tests are deterministic (a list-popping fake clock, no sleeps).
* **Instruments work unregistered.**  ``Counter("x", "help")`` is a
  valid standalone object; a registry's factory methods mint *and*
  register.  Per-instance state (e.g. one ``AdmissionController``'s
  shed count) can therefore live in a counter owned by that instance
  while still being scraped through whichever registry it is attached
  to — no duplicated bookkeeping, no cross-instance bleed.
* **Atomic scrapes.**  ``render()`` snapshots each family under its
  lock and returns one complete string; the server writes it in a
  single response body, so concurrent scrapes and appends can never
  observe torn lines or non-monotonic counters.

Naming convention (see DESIGN.md "Observability"): every metric is
prefixed ``mahif_``, counters end in ``_total``, durations are seconds
(``_seconds``), and label names are singular (``kind``, ``route``,
``decision``).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "reset_global_registry",
]

#: Default latency buckets (seconds): sub-millisecond to ten seconds,
#: roughly logarithmic — what-if requests span ~100us (cache hit) to
#: seconds (cold sharded reenactment).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_LabelKey = tuple[str, ...]


def _label_key(
    labelnames: tuple[str, ...], labels: Mapping[str, str]
) -> _LabelKey:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"expected labels {labelnames}, got {tuple(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    # Prometheus accepts both; integers without a trailing ".0" keep
    # the output diff-friendly for counter-heavy scrapes.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(
    labelnames: tuple[str, ...],
    key: _LabelKey,
    extra: tuple[tuple[str, str], ...] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, key)
    ]
    pairs.extend(f'{name}="{_escape_label_value(value)}"' for name, value in extra)
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


class _Metric:
    """Common state: name, help text, label names, one lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _header(self) -> list[str]:
        help_text = self.help.replace("\\", "\\\\").replace("\n", "\\n")
        return [
            f"# HELP {self.name} {help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]


class Counter(_Metric):
    """A monotonic counter, optionally labeled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[_LabelKey, float] = {}

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; inc amount must be >= 0")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: str) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def series(self) -> dict[_LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(_Metric):
    """A settable value, or a live read-through via ``callback``.

    Callback gauges (``callback() -> float``) have no stored state —
    the scrape reads the owning subsystem's truth directly (e.g. the
    sqlite connection-cache size), which is the point: no second copy
    to fall out of sync.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> None:
        super().__init__(name, help, labelnames)
        if callback is not None and self.labelnames:
            raise ValueError("callback gauges cannot be labeled")
        self._callback = callback
        self._values: dict[_LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        if self._callback is not None:
            raise ValueError(f"gauge {self.name} is callback-backed")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        if self._callback is not None:
            return float(self._callback())
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> list[str]:
        lines = self._header()
        if self._callback is not None:
            try:
                value = float(self._callback())
            # repro-lint: allow[broad-swallow] -- a broken callback renders NaN, never fails the scrape
            except Exception:
                value = float("nan")
            lines.append(f"{self.name} {_format_value(value)}")
            return lines
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            labels = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket latency histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bounds
        self._clock = clock
        self._series: dict[_LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(
                    len(self.buckets)
                )
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            series.total += value
            series.count += 1

    def time(self, **labels: str) -> "_Timer":
        return _Timer(self, labels, self._clock)

    def count(self, **labels: str) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.count if series is not None else 0

    def sum(self, **labels: str) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return series.total if series is not None else 0.0

    def reset(self) -> None:
        with self._lock:
            self._series.clear()

    def render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            items = sorted(
                (key, list(s.bucket_counts), s.total, s.count)
                for key, s in self._series.items()
            )
        if not items and not self.labelnames:
            items = [((), [0] * len(self.buckets), 0.0, 0)]
        for key, bucket_counts, total, count in items:
            cumulative = 0
            for bound, n in zip(self.buckets, bucket_counts):
                cumulative += n
                labels = _render_labels(
                    self.labelnames, key, extra=(("le", repr(bound)),)
                )
                lines.append(
                    f"{self.name}_bucket{labels} {cumulative}"
                )
            labels = _render_labels(
                self.labelnames, key, extra=(("le", "+Inf"),)
            )
            lines.append(f"{self.name}_bucket{labels} {count}")
            plain = _render_labels(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines


class _Timer:
    """``with histogram.time():`` — observes elapsed clock on exit."""

    def __init__(
        self,
        histogram: Histogram,
        labels: Mapping[str, str],
        clock: Callable[[], float],
    ) -> None:
        self._histogram = histogram
        self._labels = labels
        self._clock = clock
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._clock()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(
            self._clock() - self._start, **self._labels
        )


class MetricsRegistry:
    """A named collection of metrics with a single text rendering.

    Factory methods are get-or-create: asking twice for the same name
    returns the same instrument (kind and labels must match), so any
    module can cheaply bind its counters at import or call time without
    coordinating ownership.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def register(self, metric: _Metric) -> _Metric:
        """Attach an externally-owned instrument (e.g. a per-instance
        counter) to this registry's scrape output."""
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is metric:
                return metric
            if existing is not None:
                raise ValueError(
                    f"metric {metric.name!r} already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, name: str, kind: type, factory) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, kind):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(metric).__name__}"
                    )
                return metric
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str, labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(
            name, Counter, lambda: Counter(name, help, labelnames)
        )

    def gauge(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, help, labelnames, callback)
        )

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name,
            Histogram,
            lambda: Histogram(
                name, help, labelnames, buckets, clock=self._clock
            ),
        )

    def unregister(self, name: str) -> None:
        with self._lock:
            self._metrics.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def reset(self) -> None:
        """Zero every stored series (callback gauges are stateless).
        Registrations survive — this is the between-tests reset."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            reset = getattr(metric, "reset", None)
            if reset is not None:
                reset()

    def render(self, *extra_registries: "MetricsRegistry") -> str:
        """Prometheus text exposition of this registry (plus any
        ``extra_registries``, e.g. the process-global one merged into a
        per-server scrape).  Later registries do not shadow earlier
        names; duplicates are skipped to keep the output valid."""
        seen: set[str] = set()
        lines: list[str] = []
        for registry in (self, *extra_registries):
            with registry._lock:
                metrics = sorted(
                    registry._metrics.items(), key=lambda kv: kv[0]
                )
            for name, metric in metrics:
                if name in seen:
                    continue
                seen.add(name)
                lines.extend(metric.render())
        return "\n".join(lines) + "\n"


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global registry: home of counters recorded by layers
    that do not know which service owns them (degradation events three
    frames below the handler, planner decisions, sqlite cache state)."""
    return _GLOBAL


def reset_global_registry() -> None:
    """Zero the process-global series (tests)."""
    _GLOBAL.reset()
