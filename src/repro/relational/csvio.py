"""CSV import/export for relations and databases.

The middleware's bulk interface: load base tables from CSV files (with
light type inference: int → float → string; empty cells are NULL), save
query results and deltas back out.  Used by the command-line tool and
handy in tests/examples.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Any, Iterable

from .database import Database
from .relation import Relation
from .schema import Schema

__all__ = [
    "relation_from_csv",
    "relation_to_csv",
    "load_database_dir",
    "parse_value",
    "format_value",
]


def parse_value(text: str) -> Any:
    """Infer a Python value from a CSV cell.

    Empty cell → NULL; ``true``/``false`` → bool; then int, float, str.
    """
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def relation_from_csv(source: str | pathlib.Path | io.TextIOBase) -> Relation:
    """Load a relation from a CSV file (first row is the header)."""
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as fh:
            return relation_from_csv(fh)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV file is empty (no header row)") from None
    schema = Schema(tuple(h.strip() for h in header))
    rows = []
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != schema.arity:
            raise ValueError(
                f"line {line_number}: expected {schema.arity} cells, "
                f"got {len(row)}"
            )
        rows.append(tuple(parse_value(cell) for cell in row))
    return Relation.from_rows(schema, rows)


def relation_to_csv(
    relation: Relation, target: str | pathlib.Path | io.TextIOBase
) -> None:
    """Write a relation to CSV (deterministic row order)."""
    if isinstance(target, (str, pathlib.Path)):
        with open(target, "w", newline="") as fh:
            relation_to_csv(relation, fh)
            return
    writer = csv.writer(target)
    writer.writerow(relation.schema.attributes)
    for row in relation.sorted_rows():
        writer.writerow([format_value(v) for v in row])


def load_database_dir(directory: str | pathlib.Path) -> Database:
    """Load every ``*.csv`` in a directory as a relation named after the
    file stem."""
    directory = pathlib.Path(directory)
    relations = {}
    for path in sorted(directory.glob("*.csv")):
        relations[path.stem] = relation_from_csv(path)
    if not relations:
        raise ValueError(f"no CSV files found in {directory}")
    return Database(relations)
