"""CSV import/export for relations and databases.

The middleware's bulk interface: load base tables from CSV files (with
light type inference: int → float → string; empty cells are NULL), save
query results and deltas back out.  Used by the command-line tool and
handy in tests/examples.
"""

from __future__ import annotations

import csv
import io
import pathlib
from typing import Any, Iterable

from .database import Database
from .relation import Relation
from .schema import Schema

__all__ = [
    "relation_from_csv",
    "relation_to_csv",
    "bag_from_csv",
    "bag_to_csv",
    "BAG_COUNT_COLUMN",
    "load_database_dir",
    "parse_value",
    "format_value",
]

#: Reserved header name of the multiplicity column in bag CSV files.
BAG_COUNT_COLUMN = "_count"


def parse_value(text: str) -> Any:
    """Infer a Python value from a CSV cell.

    Empty cell → NULL; ``true``/``false`` → bool; then int, float, str.
    """
    if text == "":
        return None
    lowered = text.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def format_value(value: Any) -> str:
    """Format one cell so that ``parse_value`` round-trips it exactly.

    Floats use shortest-round-trip ``repr`` — ``%g`` truncated to 6
    significant digits, silently corrupting exported deltas (e.g.
    ``0.1234567890123`` → ``0.123457``).  ``repr`` always renders a
    float with a ``.``, an exponent, ``inf`` or ``nan``, so the output
    never re-parses as an int, and Python guarantees
    ``float(repr(x)) == x`` (sign of ``-0.0`` included).
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def relation_from_csv(source: str | pathlib.Path | io.TextIOBase) -> Relation:
    """Load a relation from a CSV file (first row is the header)."""
    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as fh:
            return relation_from_csv(fh)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV file is empty (no header row)") from None
    schema = Schema(tuple(h.strip() for h in header))
    rows = []
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != schema.arity:
            raise ValueError(
                f"line {line_number}: expected {schema.arity} cells, "
                f"got {len(row)}"
            )
        rows.append(tuple(parse_value(cell) for cell in row))
    return Relation.from_rows(schema, rows)


def relation_to_csv(
    relation: Relation, target: str | pathlib.Path | io.TextIOBase
) -> None:
    """Write a set relation to CSV (deterministic row order).

    Rejects :class:`~repro.relational.bag.BagRelation` inputs: writing
    only the distinct rows would silently drop multiplicities — use
    :func:`bag_to_csv`, which preserves them.
    """
    from .bag import BagRelation  # local: bag imports the exec layer

    if isinstance(relation, BagRelation):
        raise TypeError(
            "relation_to_csv would silently drop bag multiplicities; "
            "use bag_to_csv for bag-semantics relations"
        )
    if isinstance(target, (str, pathlib.Path)):
        with open(target, "w", newline="") as fh:
            relation_to_csv(relation, fh)
            return
    writer = csv.writer(target)
    writer.writerow(relation.schema.attributes)
    for row in relation.sorted_rows():
        writer.writerow([format_value(v) for v in row])


def bag_to_csv(
    bag,
    target: str | pathlib.Path | io.TextIOBase,
    *,
    style: str = "count",
) -> None:
    """Write a bag relation to CSV without losing multiplicities.

    ``style="count"`` (the default) appends a :data:`BAG_COUNT_COLUMN`
    multiplicity column — compact, and :func:`bag_from_csv` recognises
    the reserved header on import.  ``style="repeat"`` writes each row
    once per multiplicity (headers stay the plain schema, so the file
    also loads as a set relation, deliberately collapsing duplicates).
    """
    from .relation import _sort_key

    if style not in ("count", "repeat"):
        raise ValueError(
            f"unknown bag CSV style {style!r}; expected 'count' or 'repeat'"
        )
    if BAG_COUNT_COLUMN in bag.schema.attributes:
        raise ValueError(
            f"schema already has a {BAG_COUNT_COLUMN!r} column; cannot "
            "add the multiplicity column"
        )
    if isinstance(target, (str, pathlib.Path)):
        with open(target, "w", newline="") as fh:
            bag_to_csv(bag, fh, style=style)
            return
    writer = csv.writer(target)
    ordered = sorted(
        bag.multiplicities, key=lambda t: tuple(map(_sort_key, t))
    )
    if style == "count":
        writer.writerow([*bag.schema.attributes, BAG_COUNT_COLUMN])
        for row in ordered:
            writer.writerow(
                [*map(format_value, row), bag.multiplicities[row]]
            )
    else:
        writer.writerow(bag.schema.attributes)
        for row in ordered:
            formatted = [format_value(v) for v in row]
            for _ in range(bag.multiplicities[row]):
                writer.writerow(formatted)


def bag_from_csv(source: str | pathlib.Path | io.TextIOBase):
    """Load a bag relation from CSV.

    A trailing :data:`BAG_COUNT_COLUMN` header marks an explicit
    multiplicity column (cells must be positive ints); otherwise every
    physical row counts once and duplicates accumulate.
    """
    from .bag import BagRelation

    if isinstance(source, (str, pathlib.Path)):
        with open(source, newline="") as fh:
            return bag_from_csv(fh)
    reader = csv.reader(source)
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("CSV file is empty (no header row)") from None
    header = [h.strip() for h in header]
    counted = bool(header) and header[-1] == BAG_COUNT_COLUMN
    schema = Schema(tuple(header[:-1] if counted else header))
    counts: dict[tuple[Any, ...], int] = {}
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        expected = schema.arity + (1 if counted else 0)
        if len(row) != expected:
            raise ValueError(
                f"line {line_number}: expected {expected} cells, "
                f"got {len(row)}"
            )
        if counted:
            try:
                count = int(row[-1])
            except ValueError:
                raise ValueError(
                    f"line {line_number}: multiplicity {row[-1]!r} is "
                    "not an integer"
                ) from None
            if count < 1:
                raise ValueError(
                    f"line {line_number}: multiplicity must be >= 1, "
                    f"got {count}"
                )
            row = row[:-1]
        else:
            count = 1
        key = tuple(parse_value(cell) for cell in row)
        counts[key] = counts.get(key, 0) + count
    return BagRelation(schema, counts)


def load_database_dir(directory: str | pathlib.Path) -> Database:
    """Load every ``*.csv`` in a directory as a relation named after the
    file stem."""
    directory = pathlib.Path(directory)
    relations = {}
    for path in sorted(directory.glob("*.csv")):
        relations[path.stem] = relation_from_csv(path)
    if not relations:
        raise ValueError(f"no CSV files found in {directory}")
    return Database(relations)
