"""A small SQL parser for the statement and expression language.

The paper's middleware consumes SQL update/delete/insert statements
(without joins or subqueries in conditions, per Section 2).  Offline we
cannot use ``sqlglot``, so this module implements a tokenizer and a Pratt
(precedence-climbing) expression parser plus statement parsers for::

    UPDATE <rel> SET A = e [, ...] WHERE phi
    DELETE FROM <rel> [WHERE phi]
    INSERT INTO <rel> VALUES (v, ...)
    INSERT INTO <rel> SELECT e [, ...] FROM <rel> [WHERE phi]

Expression syntax supports arithmetic, comparisons (including ``<>``),
AND/OR/NOT, ``IS [NOT] NULL``, ``CASE WHEN phi THEN e ELSE e END``,
``BETWEEN``, ``IN (...)`` and parentheses.  ``BETWEEN`` and ``IN``
desugar into the core grammar of Figure 7.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator

from .algebra import Operator, Project, RelScan, Select
from .expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
    and_,
    or_,
)
from .statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = ["parse_expression", "parse_statement", "parse_history", "ParseError"]


class ParseError(Exception):
    """Raised on malformed input."""


_KEYWORDS = {
    "update", "set", "where", "delete", "from", "insert", "into", "values",
    "select", "and", "or", "not", "is", "null", "true", "false", "case",
    "when", "then", "else", "end", "between", "in",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>(?:\d+\.\d+|\.\d+|\d+)(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>|\+|-|\*|/|\(|\)|,|;)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # 'number' | 'string' | 'name' | 'keyword' | 'op' | 'eof'
    text: str
    position: int


def tokenize(source: str) -> list[Token]:
    """Tokenize SQL-ish input; raises :class:`ParseError` on junk."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {source[pos]!r} at offset {pos}"
            )
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        text = match.group()
        if kind == "name" and text.lower() in _KEYWORDS:
            tokens.append(Token("keyword", text.lower(), match.start()))
        else:
            assert kind is not None
            tokens.append(Token(kind, text, match.start()))
    tokens.append(Token("eof", "", len(source)))
    return tokens


class _Parser:
    """Recursive-descent / Pratt parser over a token stream."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- stream helpers ---------------------------------------------------
    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._index += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            expectation = text or kind
            raise ParseError(
                f"expected {expectation!r} but found {self.current.text!r} "
                f"at offset {self.current.position}"
            )
        return self.advance()

    def at_end(self) -> bool:
        return self.current.kind == "eof"

    # -- expression grammar (precedence climbing) -------------------------
    # precedence: OR < AND < NOT < comparison < additive < multiplicative
    def parse_condition(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self.accept("keyword", "or"):
            right = self._parse_and()
            left = Logic("or", left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self.accept("keyword", "and"):
            right = self._parse_not()
            left = Logic("and", left, right)
        return left

    def _parse_not(self) -> Expr:
        if self.accept("keyword", "not"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        left = self._parse_additive()
        # IS [NOT] NULL
        if self.accept("keyword", "is"):
            negated = self.accept("keyword", "not") is not None
            self.expect("keyword", "null")
            test: Expr = IsNull(left)
            return Not(test) if negated else test
        # [NOT] BETWEEN lo AND hi
        negated_between = False
        if self.check("keyword", "not") and self._peek_is_between():
            self.advance()
            negated_between = True
        if self.accept("keyword", "between"):
            low = self._parse_additive()
            self.expect("keyword", "and")
            high = self._parse_additive()
            rng = Logic("and", Cmp(">=", left, low), Cmp("<=", left, high))
            return Not(rng) if negated_between else rng
        # [NOT] IN (v, ...)
        negated_in = False
        if self.check("keyword", "not") and self._peek_is_in():
            self.advance()
            negated_in = True
        if self.accept("keyword", "in"):
            self.expect("op", "(")
            options = [self._parse_additive()]
            while self.accept("op", ","):
                options.append(self._parse_additive())
            self.expect("op", ")")
            membership = or_(*[Cmp("=", left, o) for o in options])
            return Not(membership) if negated_in else membership
        for op_text, op in (
            ("<>", "!="), ("!=", "!="), ("<=", "<="), (">=", ">="),
            ("=", "="), ("<", "<"), (">", ">"),
        ):
            if self.accept("op", op_text):
                right = self._parse_additive()
                return Cmp(op, left, right)
        return left

    def _peek_is_between(self) -> bool:
        nxt = self._tokens[self._index + 1]
        return nxt.kind == "keyword" and nxt.text == "between"

    def _peek_is_in(self) -> bool:
        nxt = self._tokens[self._index + 1]
        return nxt.kind == "keyword" and nxt.text == "in"

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            if self.accept("op", "+"):
                left = Arith("+", left, self._parse_multiplicative())
            elif self.accept("op", "-"):
                left = Arith("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            if self.accept("op", "*"):
                left = Arith("*", left, self._parse_unary())
            elif self.accept("op", "/"):
                left = Arith("/", left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expr:
        if self.accept("op", "-"):
            operand = self._parse_unary()
            if isinstance(operand, Const) and isinstance(
                operand.value, (int, float)
            ):
                return Const(-operand.value)
            return Arith("-", Const(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.text
            is_float = "." in text or "e" in text or "E" in text
            return Const(float(text) if is_float else int(text))
        if token.kind == "string":
            self.advance()
            return Const(token.text[1:-1].replace("''", "'"))
        if token.kind == "keyword":
            if token.text == "true":
                self.advance()
                return Const(True)
            if token.text == "false":
                self.advance()
                return Const(False)
            if token.text == "null":
                self.advance()
                return Const(None)
            if token.text == "case":
                return self._parse_case()
            raise ParseError(
                f"unexpected keyword {token.text!r} at offset {token.position}"
            )
        if token.kind == "name":
            self.advance()
            return Attr(token.text)
        if self.accept("op", "("):
            inner = self.parse_condition()
            self.expect("op", ")")
            return inner
        raise ParseError(
            f"unexpected token {token.text!r} at offset {token.position}"
        )

    def _parse_case(self) -> Expr:
        """``CASE WHEN c THEN e [WHEN c THEN e]... ELSE e END``."""
        self.expect("keyword", "case")
        branches: list[tuple[Expr, Expr]] = []
        while self.accept("keyword", "when"):
            cond = self.parse_condition()
            self.expect("keyword", "then")
            value = self.parse_condition()
            branches.append((cond, value))
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        self.expect("keyword", "else")
        orelse = self.parse_condition()
        self.expect("keyword", "end")
        result = orelse
        for cond, value in reversed(branches):
            result = If(cond, value, result)
        return result

    # -- statements -----------------------------------------------------------
    def parse_statement(self) -> Statement:
        if self.check("keyword", "update"):
            return self._parse_update()
        if self.check("keyword", "delete"):
            return self._parse_delete()
        if self.check("keyword", "insert"):
            return self._parse_insert()
        raise ParseError(
            f"expected UPDATE/DELETE/INSERT, found {self.current.text!r}"
        )

    def _parse_update(self) -> UpdateStatement:
        self.expect("keyword", "update")
        relation = self.expect("name").text
        self.expect("keyword", "set")
        clauses: dict[str, Expr] = {}
        while True:
            attribute = self.expect("name").text
            self.expect("op", "=")
            clauses[attribute] = self.parse_condition()
            if not self.accept("op", ","):
                break
        condition: Expr = TRUE
        if self.accept("keyword", "where"):
            condition = self.parse_condition()
        return UpdateStatement(relation, clauses, condition)

    def _parse_delete(self) -> DeleteStatement:
        self.expect("keyword", "delete")
        self.expect("keyword", "from")
        relation = self.expect("name").text
        condition: Expr = TRUE
        if self.accept("keyword", "where"):
            condition = self.parse_condition()
        return DeleteStatement(relation, condition)

    def _parse_insert(self) -> Statement:
        self.expect("keyword", "insert")
        self.expect("keyword", "into")
        relation = self.expect("name").text
        if self.accept("keyword", "values"):
            self.expect("op", "(")
            values: list[Any] = [self._parse_literal()]
            while self.accept("op", ","):
                values.append(self._parse_literal())
            self.expect("op", ")")
            return InsertTuple(relation, tuple(values))
        if self.check("keyword", "select"):
            query = self._parse_select()
            return InsertQuery(relation, query)
        raise ParseError("INSERT requires VALUES or SELECT")

    def _parse_literal(self) -> Any:
        expr = self.parse_condition()
        if not isinstance(expr, Const):
            raise ParseError("VALUES entries must be literals")
        return expr.value

    def _parse_select(self) -> Operator:
        """``SELECT e [, ...] FROM rel [WHERE phi]`` → algebra tree.

        ``SELECT *`` projects nothing (plain scan/selection).
        """
        self.expect("keyword", "select")
        star = self.accept("op", "*") is not None
        outputs: list[tuple[Expr, str]] = []
        if not star:
            index = 0
            while True:
                expr = self.parse_condition()
                name = (
                    expr.name if isinstance(expr, Attr) else f"col_{index}"
                )
                outputs.append((expr, name))
                index += 1
                if not self.accept("op", ","):
                    break
        self.expect("keyword", "from")
        relation = self.expect("name").text
        tree: Operator = RelScan(relation)
        if self.accept("keyword", "where"):
            tree = Select(tree, self.parse_condition())
        if not star:
            tree = Project(tree, tuple(outputs))
        return tree


def parse_expression(source: str) -> Expr:
    """Parse an expression/condition string into an AST."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_condition()
    if not parser.at_end():
        raise ParseError(
            f"trailing input at offset {parser.current.position}: "
            f"{parser.current.text!r}"
        )
    return expr


def parse_statement(source: str) -> Statement:
    """Parse a single SQL statement (trailing ``;`` allowed)."""
    parser = _Parser(tokenize(source))
    stmt = parser.parse_statement()
    parser.accept("op", ";")
    if not parser.at_end():
        raise ParseError(
            f"trailing input at offset {parser.current.position}: "
            f"{parser.current.text!r}"
        )
    return stmt


def parse_history(source: str) -> list[Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    parser = _Parser(tokenize(source))
    statements: list[Statement] = []
    while not parser.at_end():
        statements.append(parser.parse_statement())
        if not parser.accept("op", ";") and not parser.at_end():
            raise ParseError(
                f"expected ';' between statements at offset "
                f"{parser.current.position}"
            )
    return statements
