"""Expression and condition language of the paper (Figure 7).

The grammar is::

    e   := v | c | e {+, -, *, /} e | if phi then e else e
    phi := e {=, !=, <, <=, >, >=} e | phi {and, or} phi
         | e isnull | not phi | true | false

where ``v`` is a variable (an attribute reference or, during symbolic
execution, a symbolic variable) and ``c`` is a constant.  Expressions are
immutable dataclass trees; every analysis in the library (reenactment,
data-slicing pushdown, symbolic execution, MILP compilation) walks these
trees.

Values are Python ``None`` (SQL NULL), ``bool``, ``int``, ``float`` and
``str``.  Comparisons and arithmetic involving NULL evaluate to
``False``/``None`` respectively (two-valued logic; the paper's grammar does
not define 3VL, see DESIGN.md note 5).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, TypeGuard

__all__ = [
    "Expr",
    "Const",
    "Attr",
    "Var",
    "Arith",
    "Cmp",
    "Logic",
    "Not",
    "IsNull",
    "If",
    "TRUE",
    "FALSE",
    "NULL",
    "and_",
    "or_",
    "not_",
    "eq",
    "neq",
    "lt",
    "le",
    "gt",
    "ge",
    "add",
    "sub",
    "mul",
    "div",
    "if_",
    "col",
    "lit",
    "evaluate",
    "substitute",
    "attributes_of",
    "variables_of",
    "rename_attributes",
    "simplify",
    "is_condition",
    "conjuncts_of",
    "disjuncts_of",
    "expr_size",
    "EvaluationError",
]


class EvaluationError(Exception):
    """Raised when an expression cannot be evaluated over a tuple."""


class Expr:
    """Base class for all expression nodes.

    Subclasses are frozen dataclasses, so expressions are hashable and can
    be shared freely between queries, histories and symbolic states.
    """

    # -- convenience operator overloads (build new AST nodes) -------------
    def __add__(self, other: "Expr | Any") -> "Arith":
        return Arith("+", self, _wrap(other))

    def __radd__(self, other: Any) -> "Arith":
        return Arith("+", _wrap(other), self)

    def __sub__(self, other: "Expr | Any") -> "Arith":
        return Arith("-", self, _wrap(other))

    def __rsub__(self, other: Any) -> "Arith":
        return Arith("-", _wrap(other), self)

    def __mul__(self, other: "Expr | Any") -> "Arith":
        return Arith("*", self, _wrap(other))

    def __rmul__(self, other: Any) -> "Arith":
        return Arith("*", _wrap(other), self)

    def __truediv__(self, other: "Expr | Any") -> "Arith":
        return Arith("/", self, _wrap(other))

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return to_string(self)


def _wrap(value: Any) -> Expr:
    """Lift a plain Python value into a :class:`Const` node."""
    if isinstance(value, Expr):
        return value
    return Const(value)


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant (``c`` in the grammar)."""

    value: Any

    def __post_init__(self) -> None:
        if isinstance(self.value, Expr):
            raise TypeError("Const cannot wrap another expression")


@dataclass(frozen=True)
class Attr(Expr):
    """A reference to an attribute of the input tuple (``v``)."""

    name: str


@dataclass(frozen=True)
class Var(Expr):
    """A symbolic variable, used by VC-tables and the MILP compiler.

    Distinct from :class:`Attr` so that symbolic states can mix attribute
    references (not yet bound) with solver variables (bound by the global
    condition).
    """

    name: str


@dataclass(frozen=True)
class Arith(Expr):
    """Binary arithmetic ``e {+, -, *, /} e``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("+", "-", "*", "/"):
            raise ValueError(f"unknown arithmetic operator {self.op!r}")


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison ``e {=, !=, <, <=, >, >=} e`` (a condition)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("=", "!=", "<", "<=", ">", ">="):
            raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class Logic(Expr):
    """Boolean connective ``phi {and, or} phi``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ("and", "or"):
            raise ValueError(f"unknown logic operator {self.op!r}")


@dataclass(frozen=True)
class Not(Expr):
    """Negation ``not phi``."""

    operand: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    """NULL test ``e isnull``."""

    operand: Expr


@dataclass(frozen=True)
class If(Expr):
    """Conditional expression ``if phi then e else e``."""

    cond: Expr
    then: Expr
    orelse: Expr


TRUE = Const(True)
FALSE = Const(False)
NULL = Const(None)


# -- constructor helpers ---------------------------------------------------

def col(name: str) -> Attr:
    """Shorthand for an attribute reference."""
    return Attr(name)


def lit(value: Any) -> Const:
    """Shorthand for a constant."""
    return Const(value)


def and_(*conds: Expr) -> Expr:
    """N-ary conjunction; ``and_()`` is ``TRUE``."""
    conds = tuple(_wrap(c) for c in conds)
    if not conds:
        return TRUE
    result = conds[0]
    for c in conds[1:]:
        result = Logic("and", result, c)
    return result


def or_(*conds: Expr) -> Expr:
    """N-ary disjunction; ``or_()`` is ``FALSE``."""
    conds = tuple(_wrap(c) for c in conds)
    if not conds:
        return FALSE
    result = conds[0]
    for c in conds[1:]:
        result = Logic("or", result, c)
    return result


def not_(cond: Expr) -> Not:
    return Not(_wrap(cond))


def eq(left: Any, right: Any) -> Cmp:
    return Cmp("=", _wrap(left), _wrap(right))


def neq(left: Any, right: Any) -> Cmp:
    return Cmp("!=", _wrap(left), _wrap(right))


def lt(left: Any, right: Any) -> Cmp:
    return Cmp("<", _wrap(left), _wrap(right))


def le(left: Any, right: Any) -> Cmp:
    return Cmp("<=", _wrap(left), _wrap(right))


def gt(left: Any, right: Any) -> Cmp:
    return Cmp(">", _wrap(left), _wrap(right))


def ge(left: Any, right: Any) -> Cmp:
    return Cmp(">=", _wrap(left), _wrap(right))


def add(left: Any, right: Any) -> Arith:
    return Arith("+", _wrap(left), _wrap(right))


def sub(left: Any, right: Any) -> Arith:
    return Arith("-", _wrap(left), _wrap(right))


def mul(left: Any, right: Any) -> Arith:
    return Arith("*", _wrap(left), _wrap(right))


def div(left: Any, right: Any) -> Arith:
    return Arith("/", _wrap(left), _wrap(right))


def if_(cond: Any, then: Any, orelse: Any) -> If:
    return If(_wrap(cond), _wrap(then), _wrap(orelse))


# -- evaluation ------------------------------------------------------------

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def evaluate(expr: Expr, binding: Mapping[str, Any] | None = None) -> Any:
    """Evaluate ``expr`` over a tuple given as attribute->value mapping.

    Both :class:`Attr` and :class:`Var` nodes are looked up in ``binding``.
    NULL propagates through arithmetic and makes comparisons false
    (two-valued logic, see module docstring).
    """
    binding = binding or {}
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, (Attr, Var)):
        try:
            return binding[expr.name]
        except KeyError:
            raise EvaluationError(f"unbound reference {expr.name!r}") from None
    if isinstance(expr, Arith):
        left = evaluate(expr.left, binding)
        right = evaluate(expr.right, binding)
        if left is None or right is None:
            return None
        if expr.op == "/" and right == 0:
            return None
        return _ARITH_OPS[expr.op](left, right)
    if isinstance(expr, Cmp):
        left = evaluate(expr.left, binding)
        right = evaluate(expr.right, binding)
        if left is None or right is None:
            return False
        try:
            return bool(_CMP_OPS[expr.op](left, right))
        except TypeError:
            raise EvaluationError(
                f"cannot compare {left!r} and {right!r} with {expr.op}"
            ) from None
    if isinstance(expr, Logic):
        left = bool(evaluate(expr.left, binding))
        if expr.op == "and":
            return left and bool(evaluate(expr.right, binding))
        return left or bool(evaluate(expr.right, binding))
    if isinstance(expr, Not):
        return not bool(evaluate(expr.operand, binding))
    if isinstance(expr, IsNull):
        return evaluate(expr.operand, binding) is None
    if isinstance(expr, If):
        if bool(evaluate(expr.cond, binding)):
            return evaluate(expr.then, binding)
        return evaluate(expr.orelse, binding)
    raise EvaluationError(f"cannot evaluate {expr!r}")


# -- structural walks ------------------------------------------------------

def children_of(expr: Expr) -> tuple[Expr, ...]:
    """Direct sub-expressions of a node."""
    if isinstance(expr, (Arith, Cmp, Logic)):
        return (expr.left, expr.right)
    if isinstance(expr, (Not, IsNull)):
        return (expr.operand,)
    if isinstance(expr, If):
        return (expr.cond, expr.then, expr.orelse)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield every node of the expression tree (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(children_of(node))


def attributes_of(expr: Expr) -> set[str]:
    """Names of all :class:`Attr` references in the expression."""
    return {node.name for node in walk(expr) if isinstance(node, Attr)}


def variables_of(expr: Expr) -> set[str]:
    """Names of all :class:`Var` references in the expression."""
    return {node.name for node in walk(expr) if isinstance(node, Var)}


def expr_size(expr: Expr) -> int:
    """Number of nodes in the expression tree."""
    return sum(1 for _ in walk(expr))


def _rebuild(expr: Expr, children: tuple[Expr, ...]) -> Expr:
    """Reconstruct a node of the same type with new children."""
    if isinstance(expr, Arith):
        return Arith(expr.op, children[0], children[1])
    if isinstance(expr, Cmp):
        return Cmp(expr.op, children[0], children[1])
    if isinstance(expr, Logic):
        return Logic(expr.op, children[0], children[1])
    if isinstance(expr, Not):
        return Not(children[0])
    if isinstance(expr, IsNull):
        return IsNull(children[0])
    if isinstance(expr, If):
        return If(children[0], children[1], children[2])
    return expr


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to each node after rewriting its
    children; ``fn`` returns a replacement node or ``None`` to keep it."""
    children = children_of(expr)
    if children:
        new_children = tuple(transform(c, fn) for c in children)
        if new_children != children:
            expr = _rebuild(expr, new_children)
    replacement = fn(expr)
    return expr if replacement is None else replacement


def substitute(expr: Expr, mapping: Mapping[Expr, Expr]) -> Expr:
    """Return ``expr`` with each occurrence of a key replaced by its value
    (the paper's ``e[e' <- e'']``).  Keys are matched structurally; matches
    are not rewritten further (substitution is simultaneous, not iterated).
    """
    if not mapping:
        return expr

    def visit(node: Expr) -> Expr:
        if node in mapping:
            return mapping[node]
        children = children_of(node)
        if not children:
            return node
        new_children = tuple(visit(c) for c in children)
        if new_children == children:
            return node
        return _rebuild(node, new_children)

    return visit(expr)


def substitute_attributes(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace attribute references by name: ``e[A_i <- e_i]`` for all i.

    This is the substitution used by data-slicing pushdown (Section 6) and
    symbolic execution: all replacements happen simultaneously over the
    *original* expression.
    """
    if not mapping:
        return expr
    return substitute(
        expr, {Attr(name): repl for name, repl in mapping.items()}
    )


def substitute_variables(expr: Expr, mapping: Mapping[str, Expr]) -> Expr:
    """Replace :class:`Var` references by name (simultaneous)."""
    if not mapping:
        return expr
    return substitute(expr, {Var(name): repl for name, repl in mapping.items()})


def rename_attributes(expr: Expr, mapping: Mapping[str, str]) -> Expr:
    """Rename attribute references (used when pushing conditions through
    unions with differing schemas: ``theta[Sch(Q1) <- Sch(Q2)]``)."""
    return substitute_attributes(
        expr, {old: Attr(new) for old, new in mapping.items()}
    )


# -- simplification --------------------------------------------------------

def _is_const(expr: Expr) -> TypeGuard[Const]:
    return isinstance(expr, Const)


def _simplify_node(expr: Expr) -> Expr | None:
    """One local simplification step; assumes children already simplified.

    Implements constant folding plus the usual boolean absorption laws
    (``x and true = x`` etc.) and conditional folding.  The commutativity /
    associativity equivalences of Figure 8 are used only for canonical
    ordering of constant operands so folding fires more often.
    """
    if isinstance(expr, Arith):
        if _is_const(expr.left) and _is_const(expr.right):
            return Const(evaluate(expr))
        # x + 0, x - 0, x * 1, x / 1 -> x.  (x * 0 -> 0 would be unsound:
        # NULL * 0 is NULL, not 0 — caught by the differential fuzzer.)
        if isinstance(expr.right, Const):
            rv = expr.right.value
            if expr.op in ("+", "-") and rv == 0 and not isinstance(rv, bool):
                return expr.left
            if expr.op in ("*", "/") and rv == 1:
                return expr.left
        if isinstance(expr.left, Const):
            lv = expr.left.value
            if expr.op == "+" and lv == 0 and not isinstance(lv, bool):
                return expr.right
            if expr.op == "*" and lv == 1:
                return expr.right
        return None
    if isinstance(expr, Cmp):
        if _is_const(expr.left) and _is_const(expr.right):
            return Const(evaluate(expr))
        # Reflexive comparisons: x = x may NOT fold to TRUE — a NULL
        # operand makes every comparison false under the two-valued
        # logic (caught by the differential fuzzer: a reenacted
        # DELETE WHERE c = c must keep NULL rows, like NAIVE does).
        # The FALSE folds stay: x != x / x < x are false for NULL
        # operands too.  (NaN operands would flip x != x, but NaN has
        # no literal in the language and the sqlite backend rejects it.)
        if expr.left == expr.right and expr.op in ("!=", "<", ">"):
            return FALSE
        return None
    if isinstance(expr, Logic):
        left, right = expr.left, expr.right
        if expr.op == "and":
            if left == FALSE or right == FALSE:
                return FALSE
            if left == TRUE:
                return right
            if right == TRUE:
                return left
            if left == right:
                return left
        else:  # or
            if left == TRUE or right == TRUE:
                return TRUE
            if left == FALSE:
                return right
            if right == FALSE:
                return left
            if left == right:
                return left
        return None
    if isinstance(expr, Not):
        if _is_const(expr.operand):
            return Const(not bool(expr.operand.value))
        if isinstance(expr.operand, Not):
            return expr.operand.operand
        # NOT (a op b) must NOT rewrite to the flipped comparison: under
        # the two-valued logic a NULL operand makes every comparison
        # false, so NOT (a = b) is *true* for NULLs while a != b is
        # *false* (fuzzer regression — the rewrite broke reenacted
        # deletes over NULL rows).
        return None
    if isinstance(expr, IsNull):
        if _is_const(expr.operand):
            return Const(expr.operand.value is None)
        return None
    if isinstance(expr, If):
        if expr.cond == TRUE:
            return expr.then
        if expr.cond == FALSE:
            return expr.orelse
        if expr.then == expr.orelse:
            return expr.then
        return None
    return None


def simplify(expr: Expr) -> Expr:
    """Simplify an expression to a fixpoint of the local rules."""
    previous: Expr | None = None
    current = expr
    while current != previous:
        previous = current
        current = transform(current, _simplify_node)
    return current


def is_condition(expr: Expr) -> bool:
    """Heuristic check that an expression is boolean-valued (a ``phi``)."""
    if isinstance(expr, (Cmp, Logic, Not, IsNull)):
        return True
    if isinstance(expr, Const):
        return isinstance(expr.value, bool)
    if isinstance(expr, If):
        return is_condition(expr.then) and is_condition(expr.orelse)
    return False


def conjuncts_of(expr: Expr) -> list[Expr]:
    """Flatten a conjunction into its top-level conjuncts."""
    if isinstance(expr, Logic) and expr.op == "and":
        return conjuncts_of(expr.left) + conjuncts_of(expr.right)
    return [expr]


def disjuncts_of(expr: Expr) -> list[Expr]:
    """Flatten a disjunction into its top-level disjuncts."""
    if isinstance(expr, Logic) and expr.op == "or":
        return disjuncts_of(expr.left) + disjuncts_of(expr.right)
    return [expr]


# -- rendering -------------------------------------------------------------

def to_string(expr: Expr) -> str:
    """Render an expression in the paper's SQL-ish surface syntax."""
    if isinstance(expr, Const):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            escaped = expr.value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(expr.value, float):
            # repr('inf')/'nan' would tokenize as attribute names; render
            # parseable overflow literals instead (NaN stays semantic
            # only: it can never compare equal to itself anyway).
            if expr.value == float("inf"):
                return "9e999"
            if expr.value == float("-inf"):
                return "-9e999"
            if expr.value != expr.value:
                return "(9e999 - 9e999)"
        return repr(expr.value)
    if isinstance(expr, Attr):
        return expr.name
    if isinstance(expr, Var):
        return f"${expr.name}"
    if isinstance(expr, Arith):
        return f"({to_string(expr.left)} {expr.op} {to_string(expr.right)})"
    if isinstance(expr, Cmp):
        op = "<>" if expr.op == "!=" else expr.op
        return f"({to_string(expr.left)} {op} {to_string(expr.right)})"
    if isinstance(expr, Logic):
        op = expr.op.upper()
        return f"({to_string(expr.left)} {op} {to_string(expr.right)})"
    if isinstance(expr, Not):
        return f"(NOT {to_string(expr.operand)})"
    if isinstance(expr, IsNull):
        return f"({to_string(expr.operand)} IS NULL)"
    if isinstance(expr, If):
        return (
            f"CASE WHEN {to_string(expr.cond)} THEN {to_string(expr.then)} "
            f"ELSE {to_string(expr.orelse)} END"
        )
    raise TypeError(f"cannot render {expr!r}")
