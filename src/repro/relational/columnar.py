"""Columnar storage for relations: typed columns with a cheap tuple view.

The ``"vector"`` execution backend (see
:mod:`repro.relational.exec.vector_compile`) evaluates operators as
whole-column kernels instead of streaming Python tuples row-at-a-time.
This module supplies its data layer:

* :class:`Column` — one attribute's values as a typed array.  With NumPy
  available, clean columns become ``int64`` / ``float64`` / ``bool_`` /
  object-of-``str`` arrays plus an optional validity bitmap (``None``
  values are replaced by a fill and masked out); anything mixed-type,
  NaN-bearing, or exotic stays a plain Python list (tag ``"object"``)
  that kernels refuse and per-row fallbacks consume verbatim.  Without
  NumPy every column is list-backed but keeps its sniffed type tag.
* :class:`ColumnarTable` — a schema plus one column per attribute and an
  optional multiplicity vector (bag semantics), with ``tuples()`` /
  ``to_relation()`` / ``to_bag()`` views so the interpreter oracle and
  the store codec keep consuming row tuples unchanged.
* :func:`columnar_of_relation` / :func:`columnar_of_bag` — per-object
  columnarization caches, evicted by weak finalizers (mirrors the sqlite
  backend's connection cache; :class:`~repro.relational.bag.BagRelation`
  is unhashable, so entries are keyed by ``id`` with a generation token
  guarding against id reuse).
* :func:`bulk_shard_indices` / :func:`ordered_indices_by_column` — bulk
  helpers behind the partitioners in
  :mod:`repro.relational.partition`.

Exactness rules (what keeps the vector backend bit-identical to the
interpreter, enforced here and rechecked by the kernels):

* ints only become ``int64`` when every ``|v| < 2**63`` (materialization
  via ``tolist()`` is exact); kernels additionally require ``< 2**53``
  before mixing a column with floats, because NumPy compares int/float
  pairs through a ``float64`` cast while Python compares them exactly;
* a float column containing NaN stays list-backed: distinct NaN
  *objects* are distinct set/dict members (``hash(nan)`` is id-based),
  so NaN values must survive columnarization with identity intact;
* mixed int/float/bool columns stay list-backed rather than promoting,
  so ``1`` never silently becomes ``1.0``.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
import zlib
from typing import Any, Iterable, Sequence

from .bag import BagRelation
from .relation import Relation
from .schema import Schema

__all__ = [
    "Column",
    "ColumnarTable",
    "column_from_values",
    "column_values",
    "numpy_active",
    "set_numpy_enabled",
    "columnar_of_relation",
    "columnar_of_bag",
    "clear_columnar_cache",
    "columnar_cache_info",
    "bulk_shard_indices",
    "ordered_indices_by_column",
    "INT64_SAFE_BOUND",
    "FLOAT_EXACT_INT_BOUND",
]

try:  # NumPy is optional: the backend degrades to list-backed columns.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via set_numpy_enabled
    _np = None

#: ints with ``|v| >= 2**63`` cannot live in an int64 array at all.
INT64_SAFE_BOUND = 2 ** 63
#: ints with ``|v| >= 2**53`` lose exactness under a float64 cast.
FLOAT_EXACT_INT_BOUND = 2 ** 53

_STATE_LOCK = threading.Lock()
#: Runtime switch for the pure-Python column mode (tests and the
#: ``MAHIF_VECTOR_NUMPY=0`` escape hatch); guarded by ``_STATE_LOCK``.
_numpy_enabled = os.environ.get(
    "MAHIF_VECTOR_NUMPY", "1"
).strip().lower() not in ("0", "off", "false")


def numpy_active() -> bool:
    """Whether columns are being built as NumPy arrays right now."""
    if _np is None:
        return False
    with _STATE_LOCK:
        return _numpy_enabled


def set_numpy_enabled(enabled: bool) -> bool:
    """Toggle NumPy-backed columns (tests exercise the pure-Python
    fallback this way); returns the previous setting.  Flipping the
    switch drops the columnarization caches so array- and list-backed
    tables never mix for the same stored relation."""
    global _numpy_enabled
    with _STATE_LOCK:
        previous = _numpy_enabled
        _numpy_enabled = bool(enabled)
    if previous != bool(enabled):
        clear_columnar_cache()
    return previous


class Column:
    """One attribute's values: a typed array plus a validity mask.

    ``tag`` is one of ``"int"``, ``"float"``, ``"bool"``, ``"str"``,
    ``"object"``.  Array-backed columns (``is_array``) hold fills at
    invalid slots (0 / 0.0 / False / ``""``) with ``valid`` the bitmap
    (``None`` means all-valid); list-backed columns hold the original
    Python objects verbatim, ``None`` inline, and ``valid`` is always
    ``None``.  ``int_bound`` is a static bound on ``max(|v|)`` for int
    columns (0 for empty), used by the kernels' exactness guards.
    """

    __slots__ = ("tag", "data", "valid", "int_bound")

    def __init__(self, tag: str, data: Any, valid: Any = None,
                 int_bound: int = 0) -> None:
        self.tag = tag
        self.data = data
        self.valid = valid
        self.int_bound = int_bound

    @property
    def is_array(self) -> bool:
        return _np is not None and isinstance(self.data, _np.ndarray)

    def __len__(self) -> int:
        return len(self.data)

    def take(self, indices: Any) -> "Column":
        """Gather rows (``indices`` is an int array or list)."""
        if self.is_array:
            valid = None if self.valid is None else self.valid[indices]
            return Column(self.tag, self.data[indices], valid, self.int_bound)
        data = self.data
        return Column(
            self.tag, [data[i] for i in indices], None, self.int_bound
        )


def column_from_values(values: Sequence[Any]) -> Column:
    """Sniff a value sequence into the tightest exact column.

    Promotion never crosses type groups: a column is array-typed only
    when every non-NULL value is the same scalar type (bools are *not*
    folded into ints), NaN-free for floats, and within ``int64`` range
    for ints; everything else is preserved verbatim in a list-backed
    ``"object"`` column.
    """
    values = list(values)
    if not numpy_active() or not values:
        return Column(_sniff_tag(values), values)
    tag = _sniff_tag(values)
    if tag == "object":
        return Column("object", values)
    has_null = any(v is None for v in values)
    if tag == "int":
        bound = max(abs(v) for v in values if v is not None)
        if bound >= INT64_SAFE_BOUND:
            return Column("object", values)
        if has_null:
            valid = _np.array([v is not None for v in values], dtype=bool)
            data = _np.array(
                [0 if v is None else v for v in values], dtype=_np.int64
            )
            return Column("int", data, valid, bound)
        return Column("int", _np.array(values, dtype=_np.int64), None, bound)
    if tag == "float":
        if has_null:
            valid = _np.array([v is not None for v in values], dtype=bool)
            data = _np.array(
                [0.0 if v is None else v for v in values], dtype=_np.float64
            )
            return Column("float", data, valid)
        return Column("float", _np.array(values, dtype=_np.float64))
    if tag == "bool":
        if has_null:
            valid = _np.array([v is not None for v in values], dtype=bool)
            data = _np.array(
                [bool(v) for v in values], dtype=_np.bool_
            )
            return Column("bool", data, valid)
        return Column("bool", _np.array(values, dtype=_np.bool_))
    # str: object array so values stay Python strings end to end.
    if has_null:
        valid = _np.array([v is not None for v in values], dtype=bool)
        data = _np.array(
            ["" if v is None else v for v in values], dtype=object
        )
        return Column("str", data, valid)
    return Column("str", _np.array(values, dtype=object))


def _sniff_tag(values: Sequence[Any]) -> str:
    """The uniform scalar tag of a value sequence, or ``"object"``."""
    tag = None
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool):
            t = "bool"
        elif isinstance(v, int):
            t = "int"
        elif isinstance(v, float):
            if v != v:  # NaN: identity-bearing, never array-typed
                return "object"
            t = "float"
        elif isinstance(v, str):
            t = "str"
        else:
            return "object"
        if tag is None:
            tag = t
        elif tag != t:
            return "object"
    return tag if tag is not None else "object"


def column_values(col: Column) -> list:
    """The column as a list of Python values (``None`` at invalid slots)."""
    if not col.is_array:
        return list(col.data)
    data = col.data.tolist()
    if col.valid is None:
        return data
    return [
        v if ok else None for v, ok in zip(data, col.valid.tolist())
    ]


def concat_columns(a: Column, b: Column) -> Column:
    """Stack two columns (union); mismatched tags re-sniff to preserve
    value types exactly rather than promoting through a NumPy cast."""
    if a.is_array and b.is_array and a.tag == b.tag:
        data = _np.concatenate([a.data, b.data])
        if a.valid is None and b.valid is None:
            valid = None
        else:
            valid = _np.concatenate([
                a.valid if a.valid is not None
                else _np.ones(len(a.data), dtype=bool),
                b.valid if b.valid is not None
                else _np.ones(len(b.data), dtype=bool),
            ])
        return Column(a.tag, data, valid, max(a.int_bound, b.int_bound))
    return column_from_values(column_values(a) + column_values(b))


class ColumnarTable:
    """A schema, one :class:`Column` per attribute, and (for bags) a
    parallel multiplicity list.

    Row order is meaningful: operators preserve it so the vector
    backend's per-row fallbacks hit rows in exactly the order the
    compiled pipelines would (identical first-error behaviour)."""

    __slots__ = ("schema", "columns", "nrows", "mult")

    def __init__(self, schema: Schema, columns: list[Column], nrows: int,
                 mult: list[int] | None = None) -> None:
        self.schema = schema
        self.columns = columns
        self.nrows = nrows
        self.mult = mult

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Sequence[tuple],
        mult: Iterable[int] | None = None,
    ) -> "ColumnarTable":
        columns = [
            column_from_values([row[i] for row in rows])
            for i in range(schema.arity)
        ]
        return cls(
            schema, columns, len(rows),
            None if mult is None else list(mult),
        )

    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnarTable":
        return cls.from_rows(relation.schema, list(relation.tuples))

    @classmethod
    def from_bag(cls, bag: BagRelation) -> "ColumnarTable":
        rows = list(bag.multiplicities.keys())
        return cls.from_rows(
            bag.schema, rows, list(bag.multiplicities.values())
        )

    def tuples(self) -> list[tuple]:
        """Materialize the rows as Python tuples, in table order."""
        if not self.columns:
            return [()] * self.nrows
        return list(zip(*[column_values(c) for c in self.columns]))

    def take(self, indices: Any) -> "ColumnarTable":
        """Gather a row subset/permutation (indices array or list)."""
        idx_list = None
        if self.mult is not None or not self.columns:
            idx_list = (
                indices.tolist() if _np is not None
                and isinstance(indices, _np.ndarray) else list(indices)
            )
        mult = (
            None if self.mult is None
            else [self.mult[i] for i in idx_list]
        )
        nrows = len(idx_list) if idx_list is not None else len(indices)
        return ColumnarTable(
            self.schema,
            [c.take(indices) for c in self.columns],
            nrows,
            mult,
        )

    def to_relation(self) -> Relation:
        return Relation(self.schema, frozenset(self.tuples()))

    def to_bag(self) -> BagRelation:
        counts: dict[tuple, int] = {}
        mult = self.mult if self.mult is not None else [1] * self.nrows
        for row, count in zip(self.tuples(), mult):
            counts[row] = counts.get(row, 0) + count
        return BagRelation(self.schema, counts)


# -- columnarization caches --------------------------------------------------

_CACHE_LOCK = threading.Lock()
#: id(relation) -> (generation token, table); evicted by weak finalizers.
_REL_CACHE: dict[int, tuple[int, ColumnarTable]] = {}
_BAG_CACHE: dict[int, tuple[int, ColumnarTable]] = {}
_generation = itertools.count()


def _evict(cache: dict, key: int, token: int) -> None:
    with _CACHE_LOCK:
        entry = cache.get(key)
        if entry is not None and entry[0] == token:
            del cache[key]


def _cached_table(cache: dict, obj: Any, build) -> ColumnarTable:
    key = id(obj)
    with _CACHE_LOCK:
        entry = cache.get(key)
        if entry is not None:
            return entry[1]
    table = build(obj)
    with _CACHE_LOCK:
        token = next(_generation)
        cache[key] = (token, table)
    weakref.finalize(obj, _evict, cache, key, token)
    return table


def columnar_of_relation(relation: Relation) -> ColumnarTable:
    """The cached columnar view of a stored set relation."""
    return _cached_table(_REL_CACHE, relation, ColumnarTable.from_relation)


def columnar_of_bag(bag: BagRelation) -> ColumnarTable:
    """The cached columnar view of a stored bag relation."""
    return _cached_table(_BAG_CACHE, bag, ColumnarTable.from_bag)


def clear_columnar_cache() -> None:
    with _CACHE_LOCK:
        _REL_CACHE.clear()
        _BAG_CACHE.clear()


def columnar_cache_info() -> dict[str, int]:
    with _CACHE_LOCK:
        return {
            "relations": len(_REL_CACHE),
            "bags": len(_BAG_CACHE),
        }


# -- partition helpers -------------------------------------------------------

def bulk_shard_indices(rows: Sequence[tuple], shards: int) -> list[int]:
    """Shard index of every row in one pass.

    Must agree with :func:`repro.relational.partition.stable_shard_of`
    bit-for-bit — shard assignment is part of the cross-process
    contract — so the hash stays CRC32-of-repr; the win over the per-row
    helper is one tight loop with bound locals instead of a function
    call per row."""
    crc32 = zlib.crc32
    return [
        crc32(repr(row).encode("utf-8", "surrogatepass")) % shards
        for row in rows
    ]


def ordered_indices_by_column(
    rows: Sequence[tuple], key_index: int
) -> list[int] | None:
    """Stable ascending order of ``rows`` under the mixed-type sort key
    on one column, via an ``argsort`` kernel — or ``None`` when the
    column is not uniformly clean numeric.

    Only uniform non-NULL int or float columns qualify: there the
    mixed-type key reduces to the numeric value itself (one type rank,
    no NaN — NaN-bearing columns are list-backed by construction), so a
    stable argsort reproduces ``sorted(key=_sort_key)`` exactly.  Bools
    and NULLs rank differently from ints in the mixed-type order, so
    those columns fall back to the Python sort."""
    if not rows or not numpy_active():
        return None
    col = column_from_values([row[key_index] for row in rows])
    if not col.is_array or col.tag not in ("int", "float"):
        return None
    if col.valid is not None:
        return None
    return _np.argsort(col.data, kind="stable").tolist()
