"""Relational substrate: expressions, relations, statements, histories.

This subpackage is the from-scratch replacement for the PostgreSQL backend
the paper's middleware targets: an in-memory set-semantics relational
engine with a relational-algebra evaluator, a SQL-ish parser, and a
versioned database providing time travel.
"""

from .algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
    evaluate_query,
    evaluate_query_interpreted,
)
from .exec import (
    BACKEND_COMPILED,
    BACKEND_INTERPRETED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    BACKENDS,
    get_default_backend,
    set_default_backend,
    use_backend,
)
from .database import Database
from .expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    Expr,
    FALSE,
    If,
    IsNull,
    Logic,
    Not,
    TRUE,
    Var,
    and_,
    col,
    eq,
    evaluate,
    ge,
    gt,
    if_,
    le,
    lit,
    lt,
    neq,
    not_,
    or_,
    simplify,
)
from .bag import (
    BagDatabase,
    BagRelation,
    apply_statement_bag,
    bag_delta,
    evaluate_query_bag,
    evaluate_query_bag_interpreted,
    execute_history_bag,
)
from .csvio import (
    bag_from_csv,
    bag_to_csv,
    load_database_dir,
    relation_from_csv,
    relation_to_csv,
)
from .history import History
from .optimizer import OptimizerConfig, optimize
from .partition import (
    PARTITION_SCHEMES,
    ShardDelta,
    hash_partition,
    hash_partition_bag,
    merge_bag_deltas,
    merge_shard_bags,
    merge_shard_deltas,
    merge_shard_relations,
    partition_bag,
    partition_relation,
    range_partition,
    range_partition_bag,
    shard_delta,
    stable_shard_of,
)
from .parser import parse_expression, parse_history, parse_statement
from .relation import Relation
from .schema import Schema
from .sqlgen import history_to_sql, query_to_sql, statement_to_sql
from .statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
    is_no_op,
    is_tuple_independent,
    no_op,
)
from .versioning import VersionedDatabase

__all__ = [
    # schema / data
    "Schema", "Relation", "Database", "VersionedDatabase",
    # expressions
    "Expr", "Const", "Attr", "Var", "Arith", "Cmp", "Logic", "Not",
    "IsNull", "If", "TRUE", "FALSE",
    "and_", "or_", "not_", "eq", "neq", "lt", "le", "gt", "ge", "if_",
    "col", "lit", "evaluate", "simplify",
    # statements / histories
    "Statement", "UpdateStatement", "DeleteStatement", "InsertTuple",
    "InsertQuery", "History", "no_op", "is_no_op", "is_tuple_independent",
    # algebra
    "Operator", "RelScan", "Singleton", "Project", "Select", "Union",
    "Difference", "Join", "evaluate_query", "evaluate_query_interpreted",
    # execution backends
    "BACKEND_COMPILED", "BACKEND_INTERPRETED", "BACKEND_SQLITE",
    "BACKEND_VECTOR",
    "BACKENDS", "get_default_backend", "set_default_backend",
    "use_backend",
    # parsing / rendering
    "parse_expression", "parse_statement", "parse_history",
    "statement_to_sql", "query_to_sql", "history_to_sql",
    "OptimizerConfig", "optimize",
    "relation_from_csv", "relation_to_csv", "load_database_dir",
    "bag_from_csv", "bag_to_csv",
    "BagRelation", "BagDatabase", "apply_statement_bag",
    "execute_history_bag", "evaluate_query_bag",
    "evaluate_query_bag_interpreted", "bag_delta",
    # partitioning (sharded execution)
    "PARTITION_SCHEMES", "ShardDelta", "stable_shard_of",
    "hash_partition", "range_partition", "hash_partition_bag",
    "range_partition_bag", "partition_relation", "partition_bag",
    "merge_shard_relations", "merge_shard_bags", "shard_delta",
    "merge_shard_deltas", "merge_bag_deltas",
]
