"""Horizontal partitioning of relations for shard-parallel reenactment.

The engine's sharded execution path (see DESIGN.md, "Sharded execution",
and :mod:`repro.core.shard`) splits each base relation into ``N``
disjoint shards, evaluates a reenactment query pair independently per
shard, and merges the per-shard outcomes back into one relation delta.
This module supplies the data-layer half of that subsystem:

* **partitioners** — :func:`hash_partition` (stable content hash, good
  load balance regardless of data distribution) and
  :func:`range_partition` (sort by a key column and cut into contiguous
  chunks, which *clusters* tuples the data-slicing conditions select and
  lets whole shards skip reenactment) — for both set
  (:class:`~repro.relational.relation.Relation`) and bag
  (:class:`~repro.relational.bag.BagRelation`) relations,
* **merges** — :func:`merge_shard_relations` / :func:`merge_shard_bags`
  recombine shard contents, and :class:`ShardDelta` +
  :func:`merge_shard_deltas` implement the partition-aware delta merge.

Why deltas need a three-way merge: per-shard deltas alone are *not*
union-mergeable under set semantics.  With ``h_s``/``m_s`` the per-shard
query results, a tuple can be added on one shard (``t ∈ m_1 − h_1``) yet
present on both sides of another (``t ∈ h_2 ∩ m_2``) — globally it is in
both ``∪h_s`` and ``∪m_s``, so the true delta drops it, but the union of
per-shard deltas would report ``+t``.  Each shard therefore reports the
triple ``(added, removed, common)`` — a lossless re-encoding of
``(h_s, m_s)`` that stores the (typically large) common part once — and
the merge cancels cross-shard collisions exactly::

    added   = ∪ added_s  − ∪ removed_s − ∪ common_s
    removed = ∪ removed_s − ∪ added_s  − ∪ common_s

which equals ``(∪m_s − ∪h_s, ∪h_s − ∪m_s)`` (proof sketch in DESIGN.md).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Sequence

from .bag import BagRelation
from .columnar import bulk_shard_indices, ordered_indices_by_column
from .relation import Relation, _sort_key
from .schema import Schema

__all__ = [
    "PARTITION_SCHEMES",
    "stable_shard_of",
    "hash_partition",
    "range_partition",
    "hash_partition_bag",
    "range_partition_bag",
    "partition_relation",
    "partition_bag",
    "merge_shard_relations",
    "merge_shard_bags",
    "ShardDelta",
    "shard_delta",
    "merge_shard_deltas",
    "merge_bag_deltas",
]

PARTITION_SCHEMES = ("hash", "range")


def stable_shard_of(row: tuple[Any, ...], shards: int) -> int:
    """Deterministic shard index of a row, stable across processes.

    Python's builtin ``hash`` is salted per process for strings
    (``PYTHONHASHSEED``), which would make shard assignment — and with
    it any debugging trace — differ between runs; CRC32 over the row's
    ``repr`` is stable, cheap, and good enough for load balancing
    (collisions only perturb balance, never correctness: *any* disjoint
    cover of the relation is a valid partition).
    """
    return zlib.crc32(repr(row).encode("utf-8", "surrogatepass")) % shards


def _check_shards(shards: int) -> None:
    if shards < 1:
        raise ValueError("shard count must be >= 1")


def hash_partition(relation: Relation, shards: int) -> list[Relation]:
    """Split a set relation into ``shards`` disjoint relations by row hash."""
    _check_shards(shards)
    if shards == 1:
        return [relation]
    rows = list(relation.tuples)
    buckets: list[set] = [set() for _ in range(shards)]
    # Bulk assignment: one pass with bound locals (bit-identical to
    # per-row stable_shard_of; see repro.relational.columnar).
    for row, shard in zip(rows, bulk_shard_indices(rows, shards)):
        buckets[shard].add(row)
    return [
        Relation(relation.schema, frozenset(bucket)) for bucket in buckets
    ]


def range_partition(
    relation: Relation, shards: int, key_index: int = 0
) -> list[Relation]:
    """Split a set relation into contiguous key ranges of near-equal size.

    Rows are ordered by the mixed-type total order on column
    ``key_index`` (ties broken by the full row) and cut into ``shards``
    contiguous chunks.  Contiguity is what makes range partitioning pair
    well with data-slicing skip routing: a modification whose conditions
    select a narrow key window lands in few shards, and the rest skip
    reenactment entirely.
    """
    _check_shards(shards)
    if shards == 1:
        return [relation]
    # Ties may land on either side of a chunk boundary; any disjoint
    # cover is a valid partition, so no (costly) full-row tie-break.
    ordered = _ordered_by_key(list(relation.tuples), key_index)
    return [
        Relation(relation.schema, frozenset(chunk))
        for chunk in _chunks(ordered, shards)
    ]


def hash_partition_bag(bag: BagRelation, shards: int) -> list[BagRelation]:
    """Hash-partition a bag relation; each distinct row keeps its full
    multiplicity inside its shard."""
    _check_shards(shards)
    if shards == 1:
        return [bag]
    rows = list(bag.multiplicities)
    buckets: list[dict] = [{} for _ in range(shards)]
    for row, shard in zip(rows, bulk_shard_indices(rows, shards)):
        buckets[shard][row] = bag.multiplicities[row]
    return [BagRelation(bag.schema, bucket) for bucket in buckets]


def range_partition_bag(
    bag: BagRelation, shards: int, key_index: int = 0
) -> list[BagRelation]:
    """Range-partition a bag relation by distinct row (multiplicities
    travel with their row)."""
    _check_shards(shards)
    if shards == 1:
        return [bag]
    ordered = _ordered_by_key(list(bag.multiplicities), key_index)
    return [
        BagRelation(
            bag.schema, {row: bag.multiplicities[row] for row in chunk}
        )
        for chunk in _chunks(ordered, shards)
    ]


def _ordered_by_key(rows: list, key_index: int) -> list:
    """Rows ordered by the mixed-type key on one column: an argsort
    kernel when the column is uniformly clean numeric (see
    :func:`repro.relational.columnar.ordered_indices_by_column`), the
    Python sort otherwise — both stable, so the orders agree exactly."""
    indices = ordered_indices_by_column(rows, key_index)
    if indices is not None:
        return [rows[i] for i in indices]
    return sorted(rows, key=lambda row: _sort_key(row[key_index]))


def _chunks(ordered: list, shards: int) -> list[list]:
    """Cut an ordered list into ``shards`` near-equal contiguous chunks
    (sizes differ by at most one; trailing chunks may be empty)."""
    n = len(ordered)
    base, extra = divmod(n, shards)
    chunks = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        chunks.append(ordered[start:start + size])
        start += size
    return chunks


def partition_relation(
    relation: Relation,
    shards: int,
    scheme: str = "hash",
    key_index: int = 0,
) -> list[Relation]:
    """Partition a set relation with the named scheme."""
    if scheme == "hash":
        return hash_partition(relation, shards)
    if scheme == "range":
        return range_partition(relation, shards, key_index)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; expected one of "
        f"{PARTITION_SCHEMES}"
    )


def partition_bag(
    bag: BagRelation,
    shards: int,
    scheme: str = "hash",
    key_index: int = 0,
) -> list[BagRelation]:
    """Partition a bag relation with the named scheme."""
    if scheme == "hash":
        return hash_partition_bag(bag, shards)
    if scheme == "range":
        return range_partition_bag(bag, shards, key_index)
    raise ValueError(
        f"unknown partition scheme {scheme!r}; expected one of "
        f"{PARTITION_SCHEMES}"
    )


# -- merges ------------------------------------------------------------------

def merge_shard_relations(parts: Sequence[Relation]) -> Relation:
    """Union shard contents back into one set relation."""
    if not parts:
        raise ValueError("cannot merge zero shards")
    rows: set = set()
    for part in parts:
        rows |= part.tuples
    return Relation(parts[0].schema, frozenset(rows))


def merge_shard_bags(parts: Sequence[BagRelation]) -> BagRelation:
    """Recombine *disjoint* bag shards (additive on multiplicities, so
    only valid over a partition — shards must not share distinct rows)."""
    if not parts:
        raise ValueError("cannot merge zero shards")
    counts: dict = {}
    for part in parts:
        for row, count in part.multiplicities.items():
            counts[row] = counts.get(row, 0) + count
    return BagRelation(parts[0].schema, counts)


@dataclass(frozen=True)
class ShardDelta:
    """One shard's contribution to a relation delta.

    A lossless re-encoding of the shard's evaluated pair
    ``(h_s, m_s)``: ``added = m_s − h_s``, ``removed = h_s − m_s``,
    ``common = h_s ∩ m_s``.  ``common`` is what lets the merge cancel a
    tuple another shard reports as added/removed but this shard holds on
    both sides (see the module docstring).
    """

    schema: Schema
    added: frozenset[tuple[Any, ...]]
    removed: frozenset[tuple[Any, ...]]
    common: frozenset[tuple[Any, ...]]


def shard_delta(current: Relation, modified: Relation) -> ShardDelta:
    """The ``(added, removed, common)`` triple of one shard's query pair."""
    return ShardDelta(
        schema=current.schema,
        added=frozenset(modified.tuples - current.tuples),
        removed=frozenset(current.tuples - modified.tuples),
        common=frozenset(current.tuples & modified.tuples),
    )


def merge_shard_deltas(
    deltas: Sequence[ShardDelta], schema: Schema | None = None
):
    """Merge per-shard triples into one relation delta.

    Equals ``RelationDelta.between(∪h_s, ∪m_s)`` for any family of
    pairs ``(h_s, m_s)`` the triples encode; ``schema`` is the fallback
    for the empty family (e.g. every shard skipped)."""
    # Imported here: repro.core imports the relational layer, so a
    # module-level import would be circular at package load.
    from ..core.delta import RelationDelta

    if not deltas:
        if schema is None:
            raise ValueError("cannot merge zero shard deltas without a schema")
        return RelationDelta(schema, frozenset(), frozenset())
    added: set = set()
    removed: set = set()
    common: set = set()
    for delta in deltas:
        added |= delta.added
        removed |= delta.removed
        common |= delta.common
    return RelationDelta(
        deltas[0].schema,
        added=frozenset(added - removed - common),
        removed=frozenset(removed - added - common),
    )


def merge_bag_deltas(
    deltas: Sequence[dict[tuple[Any, ...], int]],
) -> dict[tuple[Any, ...], int]:
    """Merge per-shard signed bag deltas (see
    :func:`repro.relational.bag.bag_delta`) over a *partition*.

    Bags need no ``common`` bookkeeping: multiplicities are additive
    over disjoint shards, so the signed counts simply sum (a row's total
    change is the sum of its per-shard changes); zero entries drop.
    """
    merged: dict[tuple[Any, ...], int] = {}
    for delta in deltas:
        for row, diff in delta.items():
            merged[row] = merged.get(row, 0) + diff
    return {row: diff for row, diff in merged.items() if diff}
