"""Versioned databases: the time-travel substrate.

The paper assumes a DBMS with time travel (Oracle/SQL Server/DB2-style) so
Mahif can access ``D``, the database state *before* the first modified
statement ran.  This module provides that capability for the in-memory
engine: a :class:`VersionedDatabase` records the initial state and
periodic snapshot *checkpoints* — every ``checkpoint_interval``-th
version — instead of materializing every intermediate state eagerly.
``as_of`` reconstructs any version from the nearest checkpoint at or
below it by replaying at most ``checkpoint_interval`` statements; this is
the same policy the on-disk :class:`~repro.store.HistoryStore` uses, so
in-memory and persistent time travel share one cost model.  Because
relations are immutable frozensets, checkpoints (and replayed states)
share storage for untouched relations, so the chain costs O(changed
tuples), not O(database size) per checkpoint.
"""

from __future__ import annotations

import bisect
from typing import Iterator

from .database import Database
from .history import History
from .statements import Statement

__all__ = [
    "VersionedDatabase",
    "VersionError",
    "DEFAULT_CHECKPOINT_INTERVAL",
    "nearest_checkpoint",
]

#: The single source of the checkpoint policy's default interval —
#: :mod:`repro.store` re-exports it, so the in-memory and on-disk cost
#: models cannot desynchronize.
DEFAULT_CHECKPOINT_INTERVAL = 32


class VersionError(Exception):
    """Raised for invalid version accesses."""


def nearest_checkpoint(sorted_versions, version: int) -> int:
    """The deepest checkpoint at or below ``version`` (0 as the floor).

    The one checkpoint-policy lookup shared by the in-memory
    :class:`VersionedDatabase` and the on-disk
    :class:`~repro.store.HistoryStore`, so the two cost models cannot
    drift.  ``sorted_versions`` must be ascending; the lookup is
    O(log n), cheap enough for the service's per-query time travel.
    """
    index = bisect.bisect_right(sorted_versions, version)
    return sorted_versions[index - 1] if index else 0


class VersionedDatabase:
    """A database with a linear version history supporting time travel.

    Versions are numbered ``0..n`` where version ``i`` is the state after
    executing the first ``i`` statements (version 0 is the initial state,
    matching the paper's ``D_i = H_i(D)``).  Only every
    ``checkpoint_interval``-th version is kept materialized;
    ``checkpoint_interval=1`` restores the old keep-every-snapshot
    behavior.
    """

    def __init__(
        self,
        initial: Database,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        if checkpoint_interval < 1:
            raise VersionError("checkpoint_interval must be >= 1")
        self._interval = checkpoint_interval
        self._checkpoints: dict[int, Database] = {0: initial}
        self._order: list[int] = [0]  # ascending, mirrors _checkpoints
        self._statements: list[Statement] = []
        self._current = initial

    # -- recording -----------------------------------------------------------
    def execute(self, stmt: Statement) -> Database:
        """Apply a statement to the current version; checkpoint every
        ``checkpoint_interval``-th resulting version."""
        self._current = stmt.apply(self._current)
        self._statements.append(stmt)
        version = len(self._statements)
        if version % self._interval == 0:
            self._checkpoints[version] = self._current
            self._order.append(version)
        return self._current

    def execute_history(self, history: History) -> Database:
        """Execute an entire history, checkpointing as configured."""
        for stmt in history:
            self.execute(stmt)
        return self._current

    # -- access ----------------------------------------------------------
    @property
    def current(self) -> Database:
        """The latest database state ``H(D)``."""
        return self._current

    @property
    def checkpoint_interval(self) -> int:
        return self._interval

    @property
    def version_count(self) -> int:
        """Number of versions, ``len(history) + 1``."""
        return len(self._statements) + 1

    def checkpoint_versions(self) -> tuple[int, ...]:
        """The materialized versions (always includes 0)."""
        return tuple(self._order)

    def replay_cost(self, version: int) -> int:
        """Statements :meth:`as_of` replays to reach ``version`` —
        bounded by ``checkpoint_interval - 1`` (0 for checkpoints and
        the current version)."""
        self._check_version(version)
        if version == len(self._statements):
            return 0
        return version - self._nearest_checkpoint(version)

    def as_of(self, version: int) -> Database:
        """Time travel: the state after the first ``version`` statements.

        Reconstructed from the nearest checkpoint at or below
        ``version`` plus a bounded replay — never a full-history replay.
        """
        self._check_version(version)
        if version == len(self._statements):
            return self._current
        base = self._nearest_checkpoint(version)
        state = self._checkpoints[base]
        for stmt in self._statements[base:version]:
            state = stmt.apply(state)
        return state

    def initial(self) -> Database:
        """The state before any statement ran (version 0)."""
        return self._checkpoints[0]

    def history(self) -> History:
        """The recorded history as a :class:`History`."""
        return History(tuple(self._statements))

    def history_since(self, version: int) -> History:
        """Statements executed after ``version`` (for HWQ suffix replay)."""
        self._check_version(version)
        return History(tuple(self._statements[version:]))

    def versions(self) -> Iterator[tuple[int, Database]]:
        """Lazily iterate ``(version, state)`` pairs oldest-first.

        One statement apply per step starting from the initial state —
        a generator, so a long history never holds every intermediate
        database at once.
        """
        state = self._checkpoints[0]
        yield 0, state
        for index, stmt in enumerate(self._statements, start=1):
            state = stmt.apply(state)
            yield index, state

    @classmethod
    def from_history(
        cls,
        db: Database,
        history: History,
        *,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> "VersionedDatabase":
        """Build a versioned database by executing ``history`` over ``db``."""
        versioned = cls(db, checkpoint_interval=checkpoint_interval)
        versioned.execute_history(history)
        return versioned

    # -- internals -----------------------------------------------------------
    def _nearest_checkpoint(self, version: int) -> int:
        return nearest_checkpoint(self._order, version)

    def _check_version(self, version: int) -> None:
        if not 0 <= version <= len(self._statements):
            raise VersionError(
                f"version {version} out of range 0..{len(self._statements)}"
            )
