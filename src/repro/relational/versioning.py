"""Versioned databases: the time-travel substrate.

The paper assumes a DBMS with time travel (Oracle/SQL Server/DB2-style) so
Mahif can access ``D``, the database state *before* the first modified
statement ran.  This module provides that capability for the in-memory
engine: a :class:`VersionedDatabase` records the initial state and a
snapshot after every committed statement.  Because relations are immutable
frozensets, snapshots share storage for untouched relations, so keeping a
full version chain costs O(changed tuples), not O(database size) per
version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .database import Database
from .history import History
from .statements import Statement

__all__ = ["VersionedDatabase", "VersionError"]


class VersionError(Exception):
    """Raised for invalid version accesses."""


class VersionedDatabase:
    """A database with a linear version history supporting time travel.

    Versions are numbered ``0..n`` where version ``i`` is the state after
    executing the first ``i`` statements (version 0 is the initial state,
    matching the paper's ``D_i = H_i(D)``).
    """

    def __init__(self, initial: Database) -> None:
        self._snapshots: list[Database] = [initial]
        self._statements: list[Statement] = []

    # -- recording -----------------------------------------------------------
    def execute(self, stmt: Statement) -> Database:
        """Apply a statement to the current version and record a snapshot."""
        new_state = stmt.apply(self.current)
        self._snapshots.append(new_state)
        self._statements.append(stmt)
        return new_state

    def execute_history(self, history: History) -> Database:
        """Execute an entire history, recording every version."""
        for stmt in history:
            self.execute(stmt)
        return self.current

    # -- access ----------------------------------------------------------
    @property
    def current(self) -> Database:
        """The latest database state ``H(D)``."""
        return self._snapshots[-1]

    @property
    def version_count(self) -> int:
        """Number of versions, ``len(history) + 1``."""
        return len(self._snapshots)

    def as_of(self, version: int) -> Database:
        """Time travel: the state after the first ``version`` statements."""
        if not 0 <= version < len(self._snapshots):
            raise VersionError(
                f"version {version} out of range 0..{len(self._snapshots) - 1}"
            )
        return self._snapshots[version]

    def initial(self) -> Database:
        """The state before any statement ran (version 0)."""
        return self._snapshots[0]

    def history(self) -> History:
        """The recorded history as a :class:`History`."""
        return History(tuple(self._statements))

    def history_since(self, version: int) -> History:
        """Statements executed after ``version`` (for HWQ suffix replay)."""
        if not 0 <= version < len(self._snapshots):
            raise VersionError(f"version {version} out of range")
        return History(tuple(self._statements[version:]))

    def versions(self) -> Iterator[tuple[int, Database]]:
        """Iterate ``(version, state)`` pairs oldest-first."""
        return iter(enumerate(self._snapshots))

    @classmethod
    def from_history(cls, db: Database, history: History) -> "VersionedDatabase":
        """Build a versioned database by executing ``history`` over ``db``."""
        versioned = cls(db)
        versioned.execute_history(history)
        return versioned
