"""Bag (multiset) semantics: relations, statements, reenactment, deltas.

The paper's reenactment theorem is proved for annotated relations, which
specializes to both set and bag semantics (footnote to Definition 3).
The main library uses set semantics — simpler, and faithful to Section 5's
presentation — but set semantics has one caveat: an update can *merge* two
tuples onto the same value, and data slicing may then perturb the delta
unless histories are key-preserving (see DESIGN.md).  Under bag semantics
rows keep their multiplicity, merging cannot lose information, and the
slicing theorems hold without the key assumption.

This module provides the bag world: :class:`BagRelation` (tuple →
multiplicity), statement application, a bag evaluator for the same
operator algebra, and bag deltas.  Tests use it to show the set-semantics
collision counterexample is benign under bags.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from .algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from .database import Database
from .exec.backend import (
    BACKEND_COMPILED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    resolve_backend,
)
from .expressions import Expr, evaluate
from .history import History
from .relation import Relation
from .schema import Schema, SchemaError, check_union_compatible
from .statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
    compiled_update_row,
)

__all__ = [
    "BagRelation",
    "BagDatabase",
    "apply_statement_bag",
    "execute_history_bag",
    "evaluate_query_bag",
    "evaluate_query_bag_interpreted",
    "bag_delta",
]


@dataclass(frozen=True)
class BagRelation:
    """An immutable multiset relation: rows with multiplicities."""

    schema: Schema
    multiplicities: Mapping[tuple[Any, ...], int]

    def __post_init__(self) -> None:
        cleaned: dict[tuple[Any, ...], int] = {}
        arity = self.schema.arity  # bound once: this loop is hot
        for row, count in dict(self.multiplicities).items():
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    f"row {row} has arity {len(row)}, expected "
                    f"{arity}"
                )
            if count < 0:
                raise ValueError(f"negative multiplicity for {row}")
            if count:
                cleaned[row] = count
        object.__setattr__(self, "multiplicities", cleaned)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_rows(
        cls, schema: Schema | Iterable[str], rows: Iterable[Iterable[Any]]
    ) -> "BagRelation":
        if not isinstance(schema, Schema):
            schema = Schema(tuple(schema))
        counts = Counter(tuple(r) for r in rows)
        return cls(schema, counts)

    @classmethod
    def from_set_relation(cls, relation: Relation) -> "BagRelation":
        return cls(relation.schema, {t: 1 for t in relation})

    def to_set_relation(self) -> Relation:
        return Relation(self.schema, frozenset(self.multiplicities))

    # -- protocol ----------------------------------------------------------
    def __len__(self) -> int:
        """Total row count including duplicates."""
        return sum(self.multiplicities.values())

    def distinct_count(self) -> int:
        return len(self.multiplicities)

    def count_of(self, row: Iterable[Any]) -> int:
        return self.multiplicities.get(tuple(row), 0)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        """Iterate rows with repetition."""
        for row, count in self.multiplicities.items():
            for _ in range(count):
                yield row

    # -- bag algebra ---------------------------------------------------------
    def union_all(self, other: "BagRelation") -> "BagRelation":
        check_union_compatible(self.schema, other.schema, "bag union")
        counts = Counter(self.multiplicities)
        counts.update(other.multiplicities)
        return BagRelation(self.schema, counts)

    def monus(self, other: "BagRelation") -> "BagRelation":
        """Bag difference: multiplicities subtract, floored at zero."""
        check_union_compatible(self.schema, other.schema, "bag difference")
        counts = {
            row: count - other.multiplicities.get(row, 0)
            for row, count in self.multiplicities.items()
        }
        return BagRelation(
            self.schema, {r: c for r, c in counts.items() if c > 0}
        )

    def filter(self, condition: Expr) -> "BagRelation":
        kept = {
            row: count
            for row, count in self.multiplicities.items()
            if bool(evaluate(condition, self.schema.as_dict(row)))
        }
        return BagRelation(self.schema, kept)

    def add_row(self, row: Iterable[Any], count: int = 1) -> "BagRelation":
        counts = Counter(self.multiplicities)
        counts[tuple(row)] += count
        return BagRelation(self.schema, counts)


class BagDatabase:
    """A named collection of bag relations (mirrors :class:`Database`)."""

    def __init__(self, relations: Mapping[str, BagRelation]) -> None:
        self._relations = dict(relations)

    @classmethod
    def from_set_database(cls, db: Database) -> "BagDatabase":
        return cls(
            {
                name: BagRelation.from_set_relation(rel)
                for name, rel in db.relations.items()
            }
        )

    def __getitem__(self, name: str) -> BagRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def schema_of(self, name: str) -> Schema:
        return self[name].schema

    def with_relation(self, name: str, relation: BagRelation) -> "BagDatabase":
        updated = dict(self._relations)
        updated[name] = relation
        return BagDatabase(updated)

    def same_contents(self, other: "BagDatabase") -> bool:
        names = set(self._relations) | set(other._relations)
        for name in names:
            left = self._relations.get(name)
            right = other._relations.get(name)
            left_counts = dict(left.multiplicities) if left else {}
            right_counts = dict(right.multiplicities) if right else {}
            if left_counts != right_counts:
                return False
        return True


# -- statements over bags -----------------------------------------------------

def apply_statement_bag(stmt: Statement, db: BagDatabase) -> BagDatabase:
    """Apply a statement with bag semantics (multiplicities preserved).

    Update/delete conditions and Set clauses run through the configured
    execution backend: compiled row closures by default, per-row dict
    bindings under the interpreter, or one translated SQL statement
    executed server-side under the sqlite middleware backend (see
    :mod:`repro.relational.exec`).
    """
    backend = resolve_backend(None)
    if backend == BACKEND_SQLITE:
        from .exec.sql_backend import apply_statement_sqlite_bag

        return apply_statement_sqlite_bag(stmt, db)
    relation = db[stmt.relation]
    compiled = backend == BACKEND_COMPILED
    vector = backend == BACKEND_VECTOR
    if isinstance(stmt, UpdateStatement):
        counts: Counter = Counter()
        if vector:
            from .exec.vector_compile import bag_update_counts

            counts.update(bag_update_counts(stmt, relation))
        elif compiled:
            update_row = compiled_update_row(stmt, relation.schema)
            for row, count in relation.multiplicities.items():
                counts[update_row(row)] += count
        else:
            for row, count in relation.multiplicities.items():
                binding = relation.schema.as_dict(row)
                updated = stmt.apply_to_row(binding)
                counts[relation.schema.from_dict(updated)] += count
        return db.with_relation(
            stmt.relation, BagRelation(relation.schema, counts)
        )
    if isinstance(stmt, DeleteStatement):
        if vector:
            from .exec.vector_compile import bag_delete_counts

            kept = bag_delete_counts(stmt, relation)
        elif compiled:
            from .exec import compile_predicate

            predicate = compile_predicate(stmt.condition, relation.schema)
            kept = {
                row: count
                for row, count in relation.multiplicities.items()
                if not predicate(row)
            }
        else:
            kept = {
                row: count
                for row, count in relation.multiplicities.items()
                if not bool(
                    evaluate(stmt.condition, relation.schema.as_dict(row))
                )
            }
        return db.with_relation(
            stmt.relation, BagRelation(relation.schema, kept)
        )
    if isinstance(stmt, InsertTuple):
        return db.with_relation(
            stmt.relation, relation.add_row(stmt.values)
        )
    if isinstance(stmt, InsertQuery):
        result = evaluate_query_bag(stmt.query, db)
        if result.schema.arity != relation.schema.arity:
            raise SchemaError(
                f"INSERT SELECT arity {result.schema.arity} does not "
                f"match {stmt.relation} arity {relation.schema.arity}"
            )
        # INSERT ... SELECT is positional (like the set-semantics path):
        # relabel the query result to the target schema before the union.
        result = BagRelation(relation.schema, result.multiplicities)
        return db.with_relation(
            stmt.relation, relation.union_all(result)
        )
    raise TypeError(f"unknown statement {stmt!r}")


def execute_history_bag(history: History, db: BagDatabase) -> BagDatabase:
    for stmt in history:
        db = apply_statement_bag(stmt, db)
    return db


# -- bag evaluator ------------------------------------------------------------

def evaluate_query_bag(
    op: Operator, db: BagDatabase, backend: str | None = None
) -> BagRelation:
    """Evaluate an operator tree with bag semantics.

    Projection preserves multiplicities (no dedup), union is additive,
    difference is monus, join multiplies multiplicities — the standard
    N[X]-semiring specialization.  ``backend`` selects compiled streaming
    pipelines (default), the tree-walking interpreter, or server-side
    SQLite execution with a hidden multiplicity column, as in
    :func:`repro.relational.algebra.evaluate_query`.
    """
    resolved = resolve_backend(backend)
    if resolved == BACKEND_COMPILED:
        from .exec.bag_compile import execute_plan_bag

        return execute_plan_bag(op, db)
    if resolved == BACKEND_SQLITE:
        from .exec.sql_backend import execute_query_sqlite_bag

        return execute_query_sqlite_bag(op, db)
    if resolved == BACKEND_VECTOR:
        from .exec.vector_compile import execute_plan_vector_bag

        return execute_plan_vector_bag(op, db)
    return evaluate_query_bag_interpreted(op, db)


def evaluate_query_bag_interpreted(op: Operator, db: BagDatabase) -> BagRelation:
    """The tree-walking bag evaluator (the differential oracle)."""
    if isinstance(op, RelScan):
        return db[op.name]
    if isinstance(op, Singleton):
        return BagRelation(op.schema, {op.row: 1})
    if isinstance(op, Select):
        return evaluate_query_bag_interpreted(op.input, db).filter(op.condition)
    if isinstance(op, Project):
        child = evaluate_query_bag_interpreted(op.input, db)
        out_schema = Schema(tuple(name for _, name in op.outputs))
        counts: Counter = Counter()
        for row, count in child.multiplicities.items():
            binding = child.schema.as_dict(row)
            out_row = tuple(evaluate(expr, binding) for expr, _ in op.outputs)
            counts[out_row] += count
        return BagRelation(out_schema, counts)
    if isinstance(op, Union):
        return evaluate_query_bag_interpreted(op.left, db).union_all(
            evaluate_query_bag_interpreted(op.right, db)
        )
    if isinstance(op, Difference):
        return evaluate_query_bag_interpreted(op.left, db).monus(
            evaluate_query_bag_interpreted(op.right, db)
        )
    if isinstance(op, Join):
        left = evaluate_query_bag_interpreted(op.left, db)
        right = evaluate_query_bag_interpreted(op.right, db)
        schema = left.schema.concat(right.schema)
        counts = Counter()
        for lrow, lcount in left.multiplicities.items():
            binding = left.schema.as_dict(lrow)
            for rrow, rcount in right.multiplicities.items():
                full = dict(binding)
                full.update(right.schema.as_dict(rrow))
                if bool(evaluate(op.condition, full)):
                    counts[lrow + rrow] += lcount * rcount
        return BagRelation(schema, counts)
    raise TypeError(f"unknown operator {op!r}")


# -- bag deltas --------------------------------------------------------------

def bag_delta(
    current: BagRelation, modified: BagRelation
) -> dict[tuple[Any, ...], int]:
    """Signed multiplicity delta: row -> (count in modified) - (count in
    current); zero entries are dropped.  Negative = removed by the
    hypothetical change, positive = added."""
    rows = set(current.multiplicities) | set(modified.multiplicities)
    delta = {}
    for row in rows:
        diff = modified.count_of(row) - current.count_of(row)
        if diff:
            delta[row] = diff
    return delta
