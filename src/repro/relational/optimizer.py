"""Algebraic optimizer for reenactment queries.

Reenactment compiles a history of ``U`` updates into ``U`` *nested
generalized projections* (Definition 3).  Evaluating them one-by-one
materializes ``U`` intermediate relations and walks ``O(U)`` expression
trees per tuple per level — ``O(U^2)`` work per tuple.  A real middleware
ships *one* flattened query to the backend and lets its optimizer collapse
the stack; this module plays that role for the in-memory engine:

* **projection merging** — ``Π_e(Π_f(Q)) = Π_{e∘f}(Q)`` by substituting
  the inner output expressions into the outer ones,
* **selection fusion** — ``σ_a(σ_b(Q)) = σ_{a∧b}(Q)``,
* **selection pushdown through projections** — ``σ_θ(Π_e(Q)) =
  Π_e(σ_{θ[A←e]}(Q))`` (brings data-slicing filters next to the scan),
* **expression simplification** of every condition/output,
* **pruning** of no-op operators (``σ_true``, identity projections,
  unions with provably-empty sides).

All rewrites are semantics-preserving for set semantics; the equivalences
are the standard ones (and the two the paper itself uses in Section 10 to
pull unions out of reenactment queries).

The cost model trade-off: merging two projections *duplicates* shared
subexpressions — a reenactment ``CASE WHEN θ THEN F+d ELSE F`` references
``F`` twice, so naively flattening a U-deep update chain grows the
expression 2^U-fold (a real optimizer would share common subexpressions;
our tree evaluator cannot).  Merging is therefore *growth-aware*: a merge
is kept only when the combined expression is not materially larger than
the two it replaces (``growth_factor``), with ``max_expression_size`` as
a hard cap.  Identity and non-self-referencing outputs merge for free;
self-referencing chains stay stacked.  The ablation benchmark measures
the settings.
"""

from __future__ import annotations

from dataclasses import dataclass

from .algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from .expressions import (
    Attr,
    Expr,
    FALSE,
    TRUE,
    and_,
    expr_size,
    simplify,
    substitute_attributes,
)

__all__ = ["OptimizerConfig", "optimize"]


@dataclass(frozen=True)
class OptimizerConfig:
    """Rewrite knobs.

    ``max_expression_size`` bounds per-output expression growth during
    projection merging; ``push_selections`` moves filters toward scans.
    """

    merge_projections: bool = True
    fuse_selections: bool = True
    push_selections: bool = True
    max_expression_size: int = 512
    growth_factor: float = 1.25


def optimize(op: Operator, config: OptimizerConfig | None = None) -> Operator:
    """Rewrite an operator tree to a fixpoint of the enabled rules."""
    config = config or OptimizerConfig()
    previous = None
    current = op
    # Each pass is bottom-up; iterate until stable (rule applications can
    # enable each other, e.g. pushdown then fusion).
    for _ in range(32):
        if current == previous:
            break
        previous = current
        current = _rewrite(current, config)
    return current


def _rewrite(op: Operator, config: OptimizerConfig) -> Operator:
    # Rewrite children first.
    if isinstance(op, Project):
        op = Project(_rewrite(op.input, config), op.outputs)
    elif isinstance(op, Select):
        op = Select(_rewrite(op.input, config), op.condition)
    elif isinstance(op, Union):
        op = Union(_rewrite(op.left, config), _rewrite(op.right, config))
    elif isinstance(op, Difference):
        op = Difference(_rewrite(op.left, config), _rewrite(op.right, config))
    elif isinstance(op, Join):
        op = Join(
            _rewrite(op.left, config), _rewrite(op.right, config), op.condition
        )
    return _rewrite_node(op, config)


def _rewrite_node(op: Operator, config: OptimizerConfig) -> Operator:
    if isinstance(op, Select):
        return _rewrite_select(op, config)
    if isinstance(op, Project):
        return _rewrite_project(op, config)
    if isinstance(op, Union):
        return _rewrite_union(op)
    return op


def _is_empty(op: Operator) -> bool:
    """Conservatively detect provably-empty subtrees."""
    if isinstance(op, Select):
        return op.condition == FALSE or _is_empty(op.input)
    if isinstance(op, Project):
        return _is_empty(op.input)
    if isinstance(op, Union):
        return _is_empty(op.left) and _is_empty(op.right)
    if isinstance(op, Join):
        return _is_empty(op.left) or _is_empty(op.right)
    return False


def _rewrite_select(op: Select, config: OptimizerConfig) -> Operator:
    condition = simplify(op.condition)
    if condition == TRUE:
        return op.input
    if condition == FALSE and isinstance(op.input, RelScan):
        # keep a recognizable empty selection over the scan
        return Select(op.input, FALSE)
    # selection fusion
    if config.fuse_selections and isinstance(op.input, Select):
        return _rewrite_select(
            Select(op.input.input, and_(op.input.condition, condition)),
            config,
        )
    # pushdown through projection
    if config.push_selections and isinstance(op.input, Project):
        inner = op.input
        substitution = {name: expr for expr, name in inner.outputs}
        pushed = simplify(substitute_attributes(condition, substitution))
        if expr_size(pushed) <= config.max_expression_size:
            return Project(
                _rewrite_select(Select(inner.input, pushed), config),
                inner.outputs,
            )
    # pushdown through union
    if config.push_selections and isinstance(op.input, Union):
        return _rewrite_union(
            Union(
                _rewrite_select(Select(op.input.left, condition), config),
                _rewrite_select(Select(op.input.right, condition), config),
            )
        )
    return Select(op.input, condition)


def _identity_projection(op: Project, input_schema: tuple[str, ...] | None) -> bool:
    """``Π_{A1->A1,...,An->An}`` over an input producing exactly those
    attributes (only checkable when the input is another projection)."""
    if input_schema is None:
        return False
    names = tuple(name for _, name in op.outputs)
    if names != input_schema:
        return False
    return all(
        isinstance(expr, Attr) and expr.name == name
        for expr, name in op.outputs
    )


def _rewrite_project(op: Project, config: OptimizerConfig) -> Operator:
    outputs = tuple(
        (simplify(expr), name) for expr, name in op.outputs
    )
    inner = op.input
    if isinstance(inner, Project):
        if _identity_projection(
            Project(inner, outputs),
            tuple(name for _, name in inner.outputs),
        ):
            return inner
        if config.merge_projections:
            substitution = {name: expr for expr, name in inner.outputs}
            merged = []
            total = 0
            for expr, name in outputs:
                combined = simplify(
                    substitute_attributes(expr, substitution)
                )
                total += expr_size(combined)
                merged.append((combined, name))
            parts_size = sum(expr_size(e) for e, _ in outputs) + sum(
                expr_size(e) for e, _ in inner.outputs
            )
            budget = min(
                config.max_expression_size,
                int(config.growth_factor * parts_size) + 8,
            )
            if total <= budget:
                return _rewrite_project(
                    Project(inner.input, tuple(merged)), config
                )
    return Project(inner, outputs)


def _rewrite_union(op: Union) -> Operator:
    if _is_empty(op.left):
        return op.right
    if _is_empty(op.right):
        return op.left
    return op
