"""Update statements: ``U_{Set,θ}``, ``D_θ``, ``I_t`` and ``I_Q``.

These implement Equations (1)–(4) of the paper:

* ``U_{Set,θ}(R) = {Set(t) | t ∈ R ∧ θ(t)} ∪ {t | t ∈ R ∧ ¬θ(t)}``
* ``D_θ(R)      = {t | t ∈ R ∧ ¬θ(t)}``
* ``I_t(R)      = R ∪ {t}``
* ``I_Q(R)      = R ∪ Q(D)``

Statements are functions from databases to databases.  ``Set`` clauses are
given sparsely as ``{attribute: expression}``; attributes not mentioned are
implicitly the identity, matching the paper's shorthand
``(A_i1 <- e_1, ..., A_im <- e_m)``.

A delete with condition ``false`` is the *no-op* statement used for padding
histories when modifications insert or delete statements (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from .algebra import Operator, base_relations, evaluate_query
from .database import Database
from .exec.backend import (
    BACKEND_COMPILED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    resolve_backend,
)
from .expressions import (
    Expr,
    FALSE,
    TRUE,
    attributes_of,
    evaluate,
    simplify,
)
from .relation import Relation
from .schema import Schema, SchemaError

__all__ = [
    "Statement",
    "UpdateStatement",
    "DeleteStatement",
    "InsertTuple",
    "InsertQuery",
    "compiled_update_row",
    "no_op",
    "is_no_op",
    "is_tuple_independent",
    "statements_equal",
]


def compiled_update_row(stmt: "UpdateStatement", schema: Schema):
    """One compiled ``row -> row`` closure for a whole UPDATE statement:
    ``if theta then Set(t) else t`` evaluated positionally.

    Shared by the set- and bag-semantics apply paths so the two cannot
    drift apart.
    """
    from .exec import compile_predicate, compile_row

    predicate = compile_predicate(stmt.condition, schema)
    set_row = compile_row(
        tuple(stmt.set_expression_for(attribute) for attribute in schema),
        schema,
    )

    def update_row(row: tuple) -> tuple:
        return set_row(row) if predicate(row) else row

    return update_row


class Statement:
    """Base class for history statements.

    Every statement targets a single relation (``self.relation``) and is
    applied functionally: :meth:`apply` returns a new database.
    """

    relation: str

    def apply(self, db: Database) -> Database:
        raise NotImplementedError

    def accessed_relations(self) -> set[str]:
        """All relations this statement reads (including the target)."""
        return {self.relation}


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE relation SET A_i = e_i, ... WHERE condition``."""

    relation: str
    set_clauses: Mapping[str, Expr]
    condition: Expr = TRUE

    def __post_init__(self) -> None:
        object.__setattr__(self, "set_clauses", dict(self.set_clauses))
        if not self.set_clauses:
            raise ValueError("UPDATE requires at least one SET clause")

    def set_expression_for(self, attribute: str) -> Expr:
        """The Set expression for ``attribute`` (identity if unmentioned)."""
        from .expressions import Attr

        return self.set_clauses.get(attribute, Attr(attribute))

    def apply_to_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Apply Set to one row mapping *iff* the condition holds."""
        if not bool(evaluate(self.condition, row)):
            return row
        # Set(t): all expressions are evaluated over the ORIGINAL tuple.
        updated = dict(row)
        for attribute, expr in self.set_clauses.items():
            updated[attribute] = evaluate(expr, row)
        return updated

    def apply(self, db: Database) -> Database:
        relation = db[self.relation]
        for attribute in self.set_clauses:
            if attribute not in relation.schema:
                raise SchemaError(
                    f"UPDATE sets unknown attribute {attribute!r} "
                    f"on {self.relation}"
                )
        backend = resolve_backend(None)
        if backend == BACKEND_SQLITE:
            from .exec.sql_backend import apply_statement_sqlite

            return apply_statement_sqlite(self, db)
        if backend == BACKEND_VECTOR:
            from .exec.vector_compile import apply_update_vector

            return apply_update_vector(self, db)
        if backend == BACKEND_COMPILED:
            # Positional fast path: one compiled predicate plus one
            # compiled whole-row Set closure, no per-row dict bindings.
            update_row = compiled_update_row(self, relation.schema)
            rows = frozenset(update_row(t) for t in relation.tuples)
        else:
            rows = frozenset(
                relation.schema.from_dict(
                    self.apply_to_row(relation.schema.as_dict(t))
                )
                for t in relation
            )
        return db.with_relation(self.relation, Relation(relation.schema, rows))


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE FROM relation WHERE condition``."""

    relation: str
    condition: Expr = TRUE

    def apply(self, db: Database) -> Database:
        relation = db[self.relation]
        backend = resolve_backend(None)
        if backend == BACKEND_SQLITE:
            from .exec.sql_backend import apply_statement_sqlite

            return apply_statement_sqlite(self, db)
        if backend == BACKEND_VECTOR:
            from .exec.vector_compile import apply_delete_vector

            return apply_delete_vector(self, db)
        if backend == BACKEND_COMPILED:
            from itertools import filterfalse

            from .exec import compile_predicate

            predicate = compile_predicate(self.condition, relation.schema)
            kept = frozenset(filterfalse(predicate, relation.tuples))
        else:
            kept = frozenset(
                t
                for t in relation
                if not bool(
                    evaluate(self.condition, relation.schema.as_dict(t))
                )
            )
        return db.with_relation(self.relation, Relation(relation.schema, kept))


@dataclass(frozen=True)
class InsertTuple(Statement):
    """``INSERT INTO relation VALUES (v_1, ..., v_n)``."""

    relation: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def apply(self, db: Database) -> Database:
        relation = db[self.relation]
        if resolve_backend(None) == BACKEND_SQLITE:
            from .exec.sql_backend import apply_statement_sqlite

            return apply_statement_sqlite(self, db)
        return db.with_relation(self.relation, relation.insert(self.values))


@dataclass(frozen=True)
class InsertQuery(Statement):
    """``INSERT INTO relation SELECT ...`` — inserts a query result.

    The query is evaluated over the whole database state at the time the
    statement runs; this is the only statement type that is *not* tuple
    independent (Lemma 1).
    """

    relation: str
    query: Operator

    def apply(self, db: Database) -> Database:
        relation = db[self.relation]
        if resolve_backend(None) == BACKEND_SQLITE:
            from .exec.sql_backend import apply_statement_sqlite

            return apply_statement_sqlite(self, db)
        result = evaluate_query(self.query, db)
        if result.schema.arity != relation.schema.arity:
            raise SchemaError(
                f"INSERT SELECT arity {result.schema.arity} does not match "
                f"{self.relation} arity {relation.schema.arity}"
            )
        rows = relation.tuples | frozenset(result.tuples)
        return db.with_relation(self.relation, Relation(relation.schema, rows))

    def accessed_relations(self) -> set[str]:
        return {self.relation} | base_relations(self.query)


def no_op(relation: str) -> DeleteStatement:
    """The no-op statement ``D_false`` used for history padding."""
    return DeleteStatement(relation, FALSE)


def is_no_op(stmt: Statement) -> bool:
    """True for statements that provably modify no data."""
    if isinstance(stmt, DeleteStatement):
        return simplify(stmt.condition) == FALSE
    if isinstance(stmt, UpdateStatement):
        return simplify(stmt.condition) == FALSE
    return False


def is_tuple_independent(stmt: Statement) -> bool:
    """Tuple independence per Definition 1 / Lemma 1.

    Updates, deletes, and constant-tuple inserts are tuple independent;
    inserts with queries are not.
    """
    return not isinstance(stmt, InsertQuery)


def statements_equal(a: Statement, b: Statement) -> bool:
    """Structural equality of statements (dataclass equality)."""
    return a == b
