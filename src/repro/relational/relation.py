"""Set-semantics relation instances.

Per Section 2 of the paper, a relation instance of arity ``n`` is a subset
of ``D^n``.  We store relations as frozensets of value tuples together with
their :class:`~repro.relational.schema.Schema`.  All operations are
functional: statements and queries produce new relations and never mutate
their inputs, which is what makes cheap snapshot-based time travel possible
(see :mod:`repro.relational.versioning`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping

from .expressions import Expr, evaluate
from .schema import Schema, SchemaError

__all__ = ["Relation"]


@dataclass(frozen=True)
class Relation:
    """An immutable set-semantics relation instance."""

    schema: Schema
    tuples: frozenset[tuple[Any, ...]]

    def __post_init__(self) -> None:
        raw = self.tuples
        # A frozenset of plain tuples needs no rebuild: validating in
        # place skips rehashing every row, which is measurable on the
        # execution backends' result construction.
        if type(raw) is frozenset and all(type(t) is tuple for t in raw):
            tuples = raw
        else:
            tuples = frozenset(
                t if type(t) is tuple else tuple(t) for t in raw
            )
        arity = self.schema.arity  # bound once: this loop is hot
        for t in tuples:
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t} has arity {len(t)}, schema expects "
                    f"{arity}"
                )
        object.__setattr__(self, "tuples", tuples)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_rows(
        cls, schema: Schema | Iterable[str], rows: Iterable[Iterable[Any]]
    ) -> "Relation":
        """Build a relation from an iterable of row tuples."""
        if not isinstance(schema, Schema):
            schema = Schema(tuple(schema))
        return cls(schema, frozenset(tuple(r) for r in rows))

    @classmethod
    def from_dicts(
        cls, schema: Schema, rows: Iterable[Mapping[str, Any]]
    ) -> "Relation":
        """Build a relation from attribute->value mappings."""
        return cls(
            schema, frozenset(schema.from_dict(dict(r)) for r in rows)
        )

    @classmethod
    def empty(cls, schema: Schema) -> "Relation":
        return cls(schema, frozenset())

    # -- basic protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.tuples)

    def __contains__(self, row: tuple[Any, ...]) -> bool:
        return tuple(row) in self.tuples

    def rows_as_dicts(self) -> Iterator[dict[str, Any]]:
        """Iterate tuples as attribute->value mappings."""
        for t in self.tuples:
            yield self.schema.as_dict(t)

    # -- set algebra ---------------------------------------------------------
    def _check_compatible(self, other: "Relation") -> None:
        if self.schema.arity != other.schema.arity:
            raise SchemaError(
                f"arity mismatch: {self.schema.arity} vs {other.schema.arity}"
            )

    def union(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.schema, self.tuples | other.tuples)

    def difference(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.schema, self.tuples - other.tuples)

    def intersection(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.schema, self.tuples & other.tuples)

    def symmetric_difference(self, other: "Relation") -> "Relation":
        self._check_compatible(other)
        return Relation(self.schema, self.tuples ^ other.tuples)

    # -- tuple-at-a-time operations -------------------------------------------
    def filter(self, condition: Expr) -> "Relation":
        """Tuples satisfying ``condition`` (a selection)."""
        kept = frozenset(
            t
            for t in self.tuples
            if bool(evaluate(condition, self.schema.as_dict(t)))
        )
        return Relation(self.schema, kept)

    def map_rows(
        self,
        fn: Callable[[dict[str, Any]], dict[str, Any]],
        schema: Schema | None = None,
    ) -> "Relation":
        """Apply ``fn`` to each row mapping; optionally change schema."""
        out_schema = schema or self.schema
        rows = frozenset(
            out_schema.from_dict(fn(self.schema.as_dict(t)))
            for t in self.tuples
        )
        return Relation(out_schema, rows)

    def insert(self, row: Iterable[Any]) -> "Relation":
        row = tuple(row)
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"insert arity {len(row)} != schema arity {self.schema.arity}"
            )
        return Relation(self.schema, self.tuples | {row})

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Deterministically ordered rows (for display and tests)."""
        return sorted(self.tuples, key=lambda t: tuple(map(_sort_key, t)))

    def pretty(self, limit: int = 20) -> str:
        """Simple fixed-width rendering of the relation."""
        rows = self.sorted_rows()[:limit]
        header = list(self.schema.attributes)
        cells = [[_fmt(v) for v in row] for row in rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in cells)) if cells else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for r in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
        if len(self.tuples) > limit:
            lines.append(f"... ({len(self.tuples) - limit} more rows)")
        return "\n".join(lines)


def _sort_key(value: Any) -> tuple[int, int, Any]:
    """Total order over mixed-type values for deterministic output.

    NaN gets its own fixed slot (just above every other number): it
    compares False both ways, so leaving it in the numeric rank would
    make the sort input-order-dependent — CSV export and ``pretty()``
    would shuffle NaN rows between runs.
    """
    if value is None:
        return (0, 0, "")
    if isinstance(value, bool):
        return (1, 0, value)
    if isinstance(value, (int, float)):
        if value != value:  # NaN: pin it, don't let it float around
            return (2, 1, 0.0)
        return (2, 0, value)
    return (3, 0, str(value))


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
