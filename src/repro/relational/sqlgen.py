"""Render statements and algebra trees back to SQL text.

Mahif is a *middleware*: in the paper it rewrites histories into SQL that a
backend (PostgreSQL) executes.  Our backend is the in-memory evaluator, but
the SQL rendering is kept both as documentation of what would be shipped to
a real DBMS and to round-trip-test the parser.
"""

from __future__ import annotations

from typing import Any

from .algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from .expressions import Attr, Expr, to_string
from .statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = ["statement_to_sql", "query_to_sql", "history_to_sql"]


def _literal(value: Any) -> str:
    """Render a constant as a SQL literal valid for SQLite and our parser.

    Hardened against the fuzzer's adversarial values:

    * embedded quotes in strings are escaped by doubling,
    * booleans render as ``1``/``0`` — SQLite stores booleans as
      integers, and Python's ``True == 1`` makes the round trip
      invisible to statement equality,
    * floats render via ``repr`` (full precision; ``0.30000000000000004``
      instead of the lossy ``%g``), with ``9e999`` for infinities (SQLite
      parses that as ``Inf``) and ``NULL`` for NaN — SQLite has no NaN
      literal and stores computed NaNs as NULL anyway.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        if value != value:
            return "NULL"
        if value == float("inf"):
            return "9e999"
        if value == float("-inf"):
            return "-9e999"
        return repr(value)
    return str(value)


def statement_to_sql(stmt: Statement) -> str:
    """Render a statement as a SQL string (parseable by our parser)."""
    if isinstance(stmt, UpdateStatement):
        sets = ", ".join(
            f"{attr} = {to_string(expr)}"
            for attr, expr in sorted(stmt.set_clauses.items())
        )
        return (
            f"UPDATE {stmt.relation} SET {sets} "
            f"WHERE {to_string(stmt.condition)};"
        )
    if isinstance(stmt, DeleteStatement):
        return f"DELETE FROM {stmt.relation} WHERE {to_string(stmt.condition)};"
    if isinstance(stmt, InsertTuple):
        values = ", ".join(_literal(v) for v in stmt.values)
        return f"INSERT INTO {stmt.relation} VALUES ({values});"
    if isinstance(stmt, InsertQuery):
        return f"INSERT INTO {stmt.relation} {query_to_sql(stmt.query)};"
    raise TypeError(f"cannot render statement {stmt!r}")


def history_to_sql(statements: list[Statement] | tuple[Statement, ...]) -> str:
    """Render a sequence of statements as a SQL script."""
    return "\n".join(statement_to_sql(s) for s in statements)


def _flat_select(op: Operator) -> str | None:
    """Render ``[Project] [Select] RelScan`` trees as one flat SELECT.

    This is exactly the fragment our parser's ``INSERT ... SELECT`` can
    produce, so rendering it flat (instead of as nested derived tables,
    which the parser cannot read back) makes every parser-producible
    query round-trip through :func:`statement_to_sql`.  The parser names
    projection outputs automatically (an :class:`Attr`'s own name,
    ``col_<i>`` otherwise) and has no ``AS`` clause, so the flat form
    only applies when the output names follow that convention.
    """
    project = None
    node = op
    if isinstance(node, Project):
        project, node = node, node.input
    condition = None
    if isinstance(node, Select):
        condition, node = node.condition, node.input
    if not isinstance(node, RelScan):
        return None
    if project is None:
        columns = "*"
    else:
        for index, (expr, name) in enumerate(project.outputs):
            implied = (
                expr.name if isinstance(expr, Attr) else f"col_{index}"
            )
            if name != implied:
                return None
        columns = ", ".join(
            to_string(expr) for expr, _ in project.outputs
        )
    sql = f"SELECT {columns} FROM {node.name}"
    if condition is not None:
        sql += f" WHERE {to_string(condition)}"
    return sql


def query_to_sql(op: Operator, indent: int = 0) -> str:
    """Render an algebra tree as (nested) SQL.

    Reenactment queries are deeply nested projections; the rendering mirrors
    that structure with derived-table subqueries, which is exactly the SQL
    the middleware would send to a backend.  Trees our parser can express
    (``[Project] [Select] RelScan``, with conventionally named outputs)
    render flat so they round-trip; anything else uses derived-table
    nesting and is documentation-only.
    """
    pad = "  " * indent
    flat = _flat_select(op)
    if flat is not None:
        return flat
    if isinstance(op, RelScan):
        return f"SELECT * FROM {op.name}"
    if isinstance(op, Singleton):
        row = ", ".join(
            f"{_literal(v)} AS {a}"
            for v, a in zip(op.row, op.schema.attributes)
        )
        return f"SELECT {row}"
    if isinstance(op, Project):
        cols = ", ".join(
            f"{to_string(expr)} AS {name}" for expr, name in op.outputs
        )
        inner = query_to_sql(op.input, indent + 1)
        return f"SELECT {cols} FROM (\n{pad}  {inner}\n{pad}) AS sub"
    if isinstance(op, Select):
        inner = query_to_sql(op.input, indent + 1)
        return (
            f"SELECT * FROM (\n{pad}  {inner}\n{pad}) AS sub "
            f"WHERE {to_string(op.condition)}"
        )
    if isinstance(op, Union):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return f"({left})\n{pad}UNION\n{pad}({right})"
    if isinstance(op, Difference):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return f"({left})\n{pad}EXCEPT\n{pad}({right})"
    if isinstance(op, Join):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return (
            f"SELECT * FROM (\n{pad}  {left}\n{pad}) AS lhs, "
            f"(\n{pad}  {right}\n{pad}) AS rhs "
            f"WHERE {to_string(op.condition)}"
        )
    raise TypeError(f"cannot render operator {op!r}")
