"""Render statements and algebra trees back to SQL text.

Mahif is a *middleware*: in the paper it rewrites histories into SQL that a
backend (PostgreSQL) executes.  Our backend is the in-memory evaluator, but
the SQL rendering is kept both as documentation of what would be shipped to
a real DBMS and to round-trip-test the parser.
"""

from __future__ import annotations

from typing import Any

from .algebra import (
    Difference,
    Join,
    Operator,
    Project,
    RelScan,
    Select,
    Singleton,
    Union,
)
from .expressions import Expr, to_string
from .statements import (
    DeleteStatement,
    InsertQuery,
    InsertTuple,
    Statement,
    UpdateStatement,
)

__all__ = ["statement_to_sql", "query_to_sql", "history_to_sql"]


def _literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def statement_to_sql(stmt: Statement) -> str:
    """Render a statement as a SQL string (parseable by our parser)."""
    if isinstance(stmt, UpdateStatement):
        sets = ", ".join(
            f"{attr} = {to_string(expr)}"
            for attr, expr in sorted(stmt.set_clauses.items())
        )
        return (
            f"UPDATE {stmt.relation} SET {sets} "
            f"WHERE {to_string(stmt.condition)};"
        )
    if isinstance(stmt, DeleteStatement):
        return f"DELETE FROM {stmt.relation} WHERE {to_string(stmt.condition)};"
    if isinstance(stmt, InsertTuple):
        values = ", ".join(_literal(v) for v in stmt.values)
        return f"INSERT INTO {stmt.relation} VALUES ({values});"
    if isinstance(stmt, InsertQuery):
        return f"INSERT INTO {stmt.relation} {query_to_sql(stmt.query)};"
    raise TypeError(f"cannot render statement {stmt!r}")


def history_to_sql(statements: list[Statement] | tuple[Statement, ...]) -> str:
    """Render a sequence of statements as a SQL script."""
    return "\n".join(statement_to_sql(s) for s in statements)


def query_to_sql(op: Operator, indent: int = 0) -> str:
    """Render an algebra tree as (nested) SQL.

    Reenactment queries are deeply nested projections; the rendering mirrors
    that structure with derived-table subqueries, which is exactly the SQL
    the middleware would send to a backend.
    """
    pad = "  " * indent
    if isinstance(op, RelScan):
        return f"SELECT * FROM {op.name}"
    if isinstance(op, Singleton):
        row = ", ".join(
            f"{_literal(v)} AS {a}"
            for v, a in zip(op.row, op.schema.attributes)
        )
        return f"SELECT {row}"
    if isinstance(op, Project):
        cols = ", ".join(
            f"{to_string(expr)} AS {name}" for expr, name in op.outputs
        )
        inner = query_to_sql(op.input, indent + 1)
        return f"SELECT {cols} FROM (\n{pad}  {inner}\n{pad}) AS sub"
    if isinstance(op, Select):
        inner = query_to_sql(op.input, indent + 1)
        return (
            f"SELECT * FROM (\n{pad}  {inner}\n{pad}) AS sub "
            f"WHERE {to_string(op.condition)}"
        )
    if isinstance(op, Union):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return f"({left})\n{pad}UNION\n{pad}({right})"
    if isinstance(op, Difference):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return f"({left})\n{pad}EXCEPT\n{pad}({right})"
    if isinstance(op, Join):
        left = query_to_sql(op.left, indent + 1)
        right = query_to_sql(op.right, indent + 1)
        return (
            f"SELECT * FROM (\n{pad}  {left}\n{pad}) AS lhs, "
            f"(\n{pad}  {right}\n{pad}) AS rhs "
            f"WHERE {to_string(op.condition)}"
        )
    raise TypeError(f"cannot render operator {op!r}")
