"""The ``"sqlite"`` execution backend: Mahif as a real middleware.

The paper's system rewrites a what-if history into one reenactment query
and ships it to a DBMS.  This module completes that architecture for the
reproduction: the database is loaded into an in-memory :mod:`sqlite3`
connection, operator trees and update statements are translated to SQL by
:mod:`.sqlite_sql`, executed server-side, and the results read back into
:class:`~repro.relational.relation.Relation` /
:class:`~repro.relational.bag.BagRelation` instances.

Storage model
-------------

* Set-semantics relations become plain rowid tables, one untyped column
  per attribute (BLOB affinity — values keep the storage class they were
  bound with, so comparisons follow SQLite's cross-type rules, which the
  translation layer reconciles with Python semantics).
* Bag-semantics relations carry one extra hidden column
  (:data:`~.sqlite_sql.MULT_COLUMN`) holding the row's multiplicity;
  duplicate rows arriving from queries or inserts are consolidated at
  read-back time by summing, which is exactly the bag evaluator's
  ``Counter`` behaviour.

Databases are immutable, so read-only query evaluation caches one loaded
connection per :class:`Database`/:class:`BagDatabase` *instance* (keyed
by identity, dropped via weakref when the database is collected) — the
engine evaluates many reenactment queries against one time-travelled
state, and reloading per query would swamp the measurement.  Statement
application uses a throwaway connection loaded with just the relations
the statement touches, since it must not mutate the cached image.

Cache lifetime and thread-safety contract (see DESIGN.md, "The sqlite
middleware backend"):

* entries are keyed per *thread* — a :mod:`sqlite3` connection must not
  be used from two threads at once, and the engine's batched path
  (:meth:`repro.core.engine.Mahif.answer_batch`) evaluates sqlite
  queries from a thread pool, so each worker thread gets its own loaded
  connection per database instance,
* all module state is guarded by one re-entrant lock (weakref ``_drop``
  callbacks can fire on any thread, including re-entrantly under the
  lock during an allocation inside a cache operation),
* every registered ``_drop`` callback carries the *generation* of the
  entry it was created for and is a no-op when the cached entry has
  since been replaced — otherwise a late callback (``id()`` reuse after
  GC, or a set/bag reload of the same database) would pop and close the
  live replacement connection mid-use,
* the cache is bounded: beyond ``sqlite_cache_info()["max_connections"]``
  entries the least-recently-used connection is evicted and closed, so a
  long-running batch server over many distinct databases cannot leak
  connections.  Closing is deferred while a query is in flight on the
  entry (``clear_sqlite_cache()`` is safe to call concurrently): the
  entry is marked defunct, dropped from the cache, and closed by the
  last release.
"""

from __future__ import annotations

import itertools
import sqlite3
import threading
import weakref
from collections import Counter, OrderedDict
from typing import Any, Iterable

from ..algebra import Operator, base_relations, output_schema
from ..database import Database
from ..relation import Relation
from ..schema import Schema, SchemaError
from .sqlite_sql import (
    MULT_COLUMN,
    RESERVED_COLUMNS,
    SqlBackendError,
    bind_value,
    query_to_sqlite,
    query_to_sqlite_bag,
    quote_identifier,
    statement_to_sqlite,
)

__all__ = [
    "SqlBackendError",
    "execute_query_sqlite",
    "execute_query_sqlite_bag",
    "apply_statement_sqlite",
    "apply_statement_sqlite_bag",
    "clear_sqlite_cache",
    "sqlite_cache_info",
    "set_sqlite_cache_limit",
]


# -- loading ----------------------------------------------------------------

def _check_identifier_collisions(names: Iterable[str], what: str) -> None:
    """SQLite identifiers are case-insensitive; Python names are not."""
    seen: dict[str, str] = {}
    for name in names:
        folded = name.lower()
        if folded in seen and seen[folded] != name:
            raise SqlBackendError(
                f"{what} {seen[folded]!r} and {name!r} collide under "
                "SQLite's case-insensitive identifiers"
            )
        seen[folded] = name


def _create_table(
    conn: sqlite3.Connection, name: str, schema: Schema, bag: bool
) -> None:
    for attribute in schema.attributes:
        if attribute in RESERVED_COLUMNS:
            raise SqlBackendError(
                f"attribute name {attribute!r} is reserved by the sqlite "
                "backend"
            )
    _check_identifier_collisions(schema.attributes, "attributes")
    columns = [quote_identifier(a) for a in schema.attributes]
    if bag:
        columns.append(f"{quote_identifier(MULT_COLUMN)} INTEGER")
    if not columns:
        raise SqlBackendError(f"relation {name!r} has zero columns")
    conn.execute(
        f"CREATE TABLE {quote_identifier(name)} ({', '.join(columns)})"
    )


def _load_set_relation(
    conn: sqlite3.Connection, name: str, relation: Relation
) -> None:
    _create_table(conn, name, relation.schema, bag=False)
    placeholders = ", ".join("?" for _ in relation.schema.attributes)
    conn.executemany(
        f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})",
        (tuple(bind_value(v) for v in row) for row in relation.tuples),
    )


def _load_bag_relation(conn: sqlite3.Connection, name: str, relation) -> None:
    _create_table(conn, name, relation.schema, bag=True)
    placeholders = ", ".join("?" for _ in relation.schema.attributes)
    conn.executemany(
        f"INSERT INTO {quote_identifier(name)} "
        f"VALUES ({placeholders}, ?)",
        (
            tuple(bind_value(v) for v in row) + (count,)
            for row, count in relation.multiplicities.items()
        ),
    )


def _load_database(conn: sqlite3.Connection, db, names, bag: bool) -> None:
    _check_identifier_collisions(names, "relations")
    for name in names:
        if bag:
            _load_bag_relation(conn, name, db[name])
        else:
            _load_set_relation(conn, name, db[name])


def _connect() -> sqlite3.Connection:
    # Connections are single-thread-confined *by construction* (cache
    # entries are keyed per thread; throwaway statement connections never
    # escape their frame), but eviction/clear may close an entry from a
    # different thread — which sqlite3 forbids unless the check is off.
    return sqlite3.connect(":memory:", check_same_thread=False)


# -- read-only connection cache ---------------------------------------------

class _CacheEntry:
    """One cached ``(thread, database)`` connection with its lifetime bits.

    ``generation`` identifies the entry its weakref ``_drop`` callback was
    registered for; ``in_use`` counts in-flight queries so eviction/clear
    can defer the close; ``defunct`` marks an entry removed from the cache
    whose connection the last release must close.
    """

    __slots__ = ("ref", "conn", "bag", "generation", "in_use", "defunct")

    def __init__(self, ref, conn, bag, generation):
        self.ref = ref
        self.conn = conn
        self.bag = bag
        self.generation = generation
        self.in_use = 0
        self.defunct = False


_lock = threading.RLock()
#: ``(thread ident, id(db)) -> _CacheEntry``, most recently used last.
_connections: "OrderedDict[tuple[int, int], _CacheEntry]" = OrderedDict()
_generations = itertools.count()
_cache_hits = 0
_cache_misses = 0
_generation_drops = 0
_max_connections = 32


def _retire(entry: _CacheEntry) -> None:
    """Close an entry's connection, deferred while queries are in flight.

    Caller holds ``_lock`` and has already removed the entry from
    ``_connections``.
    """
    entry.defunct = True
    if entry.in_use == 0:
        entry.conn.close()


def _acquire(db, bag: bool) -> _CacheEntry:
    """Look up or load the calling thread's connection for ``db``.

    The returned entry has its in-use count raised; callers must pair
    with :func:`_release` (closing is deferred past in-flight queries).
    """
    global _cache_hits, _cache_misses
    key = (threading.get_ident(), id(db))
    with _lock:
        entry = _connections.get(key)
        if entry is not None and entry.ref() is db and entry.bag == bag:
            _cache_hits += 1
            entry.in_use += 1
            _connections.move_to_end(key)
            return entry
        if entry is not None:  # id reuse, or a set/bag reload of one db
            del _connections[key]
            _retire(entry)
        _cache_misses += 1
    # Load outside the lock — it is the expensive part, and the key is
    # private to this thread, so nobody can race the insertion below.
    conn = _connect()
    _load_database(conn, db, db.relation_names(), bag)
    with _lock:
        generation = next(_generations)

        def _drop(_ref, key=key, generation=generation) -> None:
            global _generation_drops
            with _lock:
                stale = _connections.get(key)
                if stale is not None and stale.generation == generation:
                    del _connections[key]
                    _retire(stale)
                    _generation_drops += 1

        entry = _CacheEntry(weakref.ref(db, _drop), conn, bag, generation)
        entry.in_use = 1
        _connections[key] = entry
        while len(_connections) > _max_connections:
            evicted_key, evicted = next(iter(_connections.items()))
            if evicted is entry:  # bound of 1: keep the entry in use
                break
            del _connections[evicted_key]
            _retire(evicted)
        return entry


def _release(entry: _CacheEntry) -> None:
    with _lock:
        entry.in_use -= 1
        if entry.defunct and entry.in_use == 0:
            entry.conn.close()


def clear_sqlite_cache() -> None:
    """Close and drop every cached read-only connection.

    Safe to call while queries are in flight on other threads: their
    entries are marked defunct and closed by the last release instead of
    being yanked mid-query.
    """
    global _cache_hits, _cache_misses
    with _lock:
        entries = list(_connections.values())
        _connections.clear()
        for entry in entries:
            _retire(entry)
        _cache_hits = 0
        _cache_misses = 0


def set_sqlite_cache_limit(limit: int) -> int:
    """Set the connection-cache bound; returns the previous bound.

    Shrinking evicts (LRU-first) immediately; in-flight queries on
    evicted entries finish normally before their connection closes.
    """
    global _max_connections
    if limit < 1:
        raise ValueError("sqlite cache limit must be at least 1")
    with _lock:
        previous = _max_connections
        _max_connections = limit
        while len(_connections) > _max_connections:
            evicted_key, evicted = next(iter(_connections.items()))
            del _connections[evicted_key]
            _retire(evicted)
        return previous


def sqlite_cache_info() -> dict[str, int]:
    with _lock:
        return {
            "hits": _cache_hits,
            "misses": _cache_misses,
            "connections": len(_connections),
            "max_connections": _max_connections,
            "generation_drops": _generation_drops,
        }


def _register_cache_metrics() -> None:
    """Expose the connection-cache state as callback gauges on the
    process-global registry: the scrape reads this module's truth
    directly, so the PR 3 lifetime behavior (bounded size, generation-
    guarded weakref drops) is observable without a second copy."""
    from ...obs.metrics import global_registry

    registry = global_registry()
    for suffix, help_text in (
        ("connections", "Live cached sqlite connections."),
        ("connections_max", "Connection-cache bound."),
        ("cache_hits", "Connection-cache lookups served from cache."),
        ("cache_misses", "Connection-cache lookups that loaded a database."),
        (
            "generation_drops",
            "Entries dropped by generation-guarded weakref callbacks.",
        ),
    ):
        info_key = {
            "connections": "connections",
            "connections_max": "max_connections",
            "cache_hits": "hits",
            "cache_misses": "misses",
            "generation_drops": "generation_drops",
        }[suffix]
        registry.gauge(
            f"mahif_sqlite_{suffix}",
            help_text,
            callback=lambda key=info_key: sqlite_cache_info()[key],
        )


_register_cache_metrics()


# -- query evaluation -------------------------------------------------------

def _schemas_of(db, names: Iterable[str]) -> dict[str, Schema]:
    schemas = {}
    for name in names:
        if name not in db:
            raise SchemaError(f"no relation named {name!r}")
        schemas[name] = db.schema_of(name)
    return schemas


def execute_query_sqlite(op: Operator, db: Database) -> Relation:
    """Evaluate a set-semantics operator tree server-side on SQLite."""
    schemas = _schemas_of(db, base_relations(op))
    # Schema checks first, for error parity with the in-process backends.
    out_schema = output_schema(op, schemas)
    sql, params, _ = query_to_sqlite(op, schemas)
    entry = _acquire(db, bag=False)
    try:
        rows = entry.conn.execute(sql, params).fetchall()
    finally:
        _release(entry)
    return Relation(out_schema, frozenset(tuple(r) for r in rows))


def execute_query_sqlite_bag(op: Operator, db) -> "BagRelation":
    """Evaluate a bag-semantics operator tree server-side on SQLite."""
    from ..bag import BagRelation

    schemas = _schemas_of(db, base_relations(op))
    out_schema = output_schema(op, schemas)
    sql, params, _ = query_to_sqlite_bag(op, schemas)
    entry = _acquire(db, bag=True)
    try:
        counts: Counter = Counter()
        for row in entry.conn.execute(sql, params):
            counts[tuple(row[:-1])] += row[-1]
    finally:
        _release(entry)
    return BagRelation(out_schema, counts)


# -- statement application --------------------------------------------------

def _validate_statement(stmt, relation_schema: Schema) -> None:
    """Schema-level checks the in-process apply paths perform eagerly."""
    from ..statements import InsertTuple, UpdateStatement

    if isinstance(stmt, UpdateStatement):
        for attribute in stmt.set_clauses:
            if attribute not in relation_schema:
                raise SchemaError(
                    f"UPDATE sets unknown attribute {attribute!r} "
                    f"on {stmt.relation}"
                )
    if isinstance(stmt, InsertTuple):
        if len(stmt.values) != relation_schema.arity:
            raise SchemaError(
                f"insert arity {len(stmt.values)} != schema arity "
                f"{relation_schema.arity}"
            )


def _statement_schemas(stmt, db) -> dict[str, Schema]:
    from ..statements import InsertQuery

    names = set(stmt.accessed_relations())
    names.add(stmt.relation)
    schemas = _schemas_of(db, names)
    if isinstance(stmt, InsertQuery):
        result_schema = output_schema(stmt.query, schemas)
        target_arity = schemas[stmt.relation].arity
        if result_schema.arity != target_arity:
            raise SchemaError(
                f"INSERT SELECT arity {result_schema.arity} does not "
                f"match {stmt.relation} arity {target_arity}"
            )
    return schemas


def apply_statement_sqlite(stmt, db: Database) -> Database:
    """Apply one statement server-side (set semantics).

    A throwaway connection is loaded with exactly the relations the
    statement touches; the mutated target relation is read back and the
    untouched relations of the immutable input database are shared.
    """
    target = db[stmt.relation]
    _validate_statement(stmt, target.schema)
    schemas = _statement_schemas(stmt, db)
    conn = _connect()
    try:
        _load_database(conn, db, sorted(schemas), bag=False)
        sql, params = statement_to_sqlite(stmt, schemas, bag=False)
        conn.execute(sql, params)
        cursor = conn.execute(
            f"SELECT * FROM {quote_identifier(stmt.relation)}"
        )
        rows = frozenset(tuple(r) for r in cursor.fetchall())
    finally:
        conn.close()
    return db.with_relation(stmt.relation, Relation(target.schema, rows))


def apply_statement_sqlite_bag(stmt, db) -> "BagDatabase":
    """Apply one statement server-side (bag semantics)."""
    from ..bag import BagRelation

    target = db[stmt.relation]
    _validate_statement(stmt, target.schema)
    schemas = _statement_schemas(stmt, db)
    conn = _connect()
    try:
        _load_database(conn, db, sorted(schemas), bag=True)
        sql, params = statement_to_sqlite(stmt, schemas, bag=True)
        conn.execute(sql, params)
        cursor = conn.execute(
            f"SELECT * FROM {quote_identifier(stmt.relation)}"
        )
        counts: Counter = Counter()
        for row in cursor:
            counts[tuple(row[:-1])] += row[-1]
    finally:
        conn.close()
    return db.with_relation(stmt.relation, BagRelation(target.schema, counts))
