"""The ``"sqlite"`` execution backend: Mahif as a real middleware.

The paper's system rewrites a what-if history into one reenactment query
and ships it to a DBMS.  This module completes that architecture for the
reproduction: the database is loaded into an in-memory :mod:`sqlite3`
connection, operator trees and update statements are translated to SQL by
:mod:`.sqlite_sql`, executed server-side, and the results read back into
:class:`~repro.relational.relation.Relation` /
:class:`~repro.relational.bag.BagRelation` instances.

Storage model
-------------

* Set-semantics relations become plain rowid tables, one untyped column
  per attribute (BLOB affinity — values keep the storage class they were
  bound with, so comparisons follow SQLite's cross-type rules, which the
  translation layer reconciles with Python semantics).
* Bag-semantics relations carry one extra hidden column
  (:data:`~.sqlite_sql.MULT_COLUMN`) holding the row's multiplicity;
  duplicate rows arriving from queries or inserts are consolidated at
  read-back time by summing, which is exactly the bag evaluator's
  ``Counter`` behaviour.

Databases are immutable, so read-only query evaluation caches one loaded
connection per :class:`Database`/:class:`BagDatabase` *instance* (keyed
by identity, dropped via weakref when the database is collected) — the
engine evaluates many reenactment queries against one time-travelled
state, and reloading per query would swamp the measurement.  Statement
application uses a throwaway connection loaded with just the relations
the statement touches, since it must not mutate the cached image.
"""

from __future__ import annotations

import sqlite3
import weakref
from collections import Counter
from typing import Any, Iterable

from ..algebra import Operator, base_relations, output_schema
from ..database import Database
from ..relation import Relation
from ..schema import Schema, SchemaError
from .sqlite_sql import (
    MULT_COLUMN,
    RESERVED_COLUMNS,
    SqlBackendError,
    bind_value,
    query_to_sqlite,
    query_to_sqlite_bag,
    quote_identifier,
    statement_to_sqlite,
)

__all__ = [
    "SqlBackendError",
    "execute_query_sqlite",
    "execute_query_sqlite_bag",
    "apply_statement_sqlite",
    "apply_statement_sqlite_bag",
    "clear_sqlite_cache",
    "sqlite_cache_info",
]


# -- loading ----------------------------------------------------------------

def _check_identifier_collisions(names: Iterable[str], what: str) -> None:
    """SQLite identifiers are case-insensitive; Python names are not."""
    seen: dict[str, str] = {}
    for name in names:
        folded = name.lower()
        if folded in seen and seen[folded] != name:
            raise SqlBackendError(
                f"{what} {seen[folded]!r} and {name!r} collide under "
                "SQLite's case-insensitive identifiers"
            )
        seen[folded] = name


def _create_table(
    conn: sqlite3.Connection, name: str, schema: Schema, bag: bool
) -> None:
    for attribute in schema.attributes:
        if attribute in RESERVED_COLUMNS:
            raise SqlBackendError(
                f"attribute name {attribute!r} is reserved by the sqlite "
                "backend"
            )
    _check_identifier_collisions(schema.attributes, "attributes")
    columns = [quote_identifier(a) for a in schema.attributes]
    if bag:
        columns.append(f"{quote_identifier(MULT_COLUMN)} INTEGER")
    if not columns:
        raise SqlBackendError(f"relation {name!r} has zero columns")
    conn.execute(
        f"CREATE TABLE {quote_identifier(name)} ({', '.join(columns)})"
    )


def _load_set_relation(
    conn: sqlite3.Connection, name: str, relation: Relation
) -> None:
    _create_table(conn, name, relation.schema, bag=False)
    placeholders = ", ".join("?" for _ in relation.schema.attributes)
    conn.executemany(
        f"INSERT INTO {quote_identifier(name)} VALUES ({placeholders})",
        (tuple(bind_value(v) for v in row) for row in relation.tuples),
    )


def _load_bag_relation(conn: sqlite3.Connection, name: str, relation) -> None:
    _create_table(conn, name, relation.schema, bag=True)
    placeholders = ", ".join("?" for _ in relation.schema.attributes)
    conn.executemany(
        f"INSERT INTO {quote_identifier(name)} "
        f"VALUES ({placeholders}, ?)",
        (
            tuple(bind_value(v) for v in row) + (count,)
            for row, count in relation.multiplicities.items()
        ),
    )


def _load_database(conn: sqlite3.Connection, db, names, bag: bool) -> None:
    _check_identifier_collisions(names, "relations")
    for name in names:
        if bag:
            _load_bag_relation(conn, name, db[name])
        else:
            _load_set_relation(conn, name, db[name])


def _connect() -> sqlite3.Connection:
    return sqlite3.connect(":memory:")


# -- read-only connection cache ---------------------------------------------

#: ``id(db) -> (weakref to db, loaded connection, is_bag)``.
_connections: dict[int, tuple[weakref.ref, sqlite3.Connection, bool]] = {}
_cache_hits = 0
_cache_misses = 0


def _cached_connection(db, bag: bool) -> sqlite3.Connection:
    global _cache_hits, _cache_misses
    key = id(db)
    entry = _connections.get(key)
    if entry is not None and entry[0]() is db and entry[2] == bag:
        _cache_hits += 1
        return entry[1]
    if entry is not None:
        entry[1].close()
    _cache_misses += 1
    conn = _connect()
    _load_database(conn, db, db.relation_names(), bag)

    def _drop(_ref, key=key) -> None:
        stale = _connections.pop(key, None)
        if stale is not None:
            stale[1].close()

    _connections[key] = (weakref.ref(db, _drop), conn, bag)
    return conn


def clear_sqlite_cache() -> None:
    """Close and drop every cached read-only connection."""
    global _cache_hits, _cache_misses
    for _, conn, _bag in _connections.values():
        conn.close()
    _connections.clear()
    _cache_hits = 0
    _cache_misses = 0


def sqlite_cache_info() -> dict[str, int]:
    return {
        "hits": _cache_hits,
        "misses": _cache_misses,
        "connections": len(_connections),
    }


# -- query evaluation -------------------------------------------------------

def _schemas_of(db, names: Iterable[str]) -> dict[str, Schema]:
    schemas = {}
    for name in names:
        if name not in db:
            raise SchemaError(f"no relation named {name!r}")
        schemas[name] = db.schema_of(name)
    return schemas


def execute_query_sqlite(op: Operator, db: Database) -> Relation:
    """Evaluate a set-semantics operator tree server-side on SQLite."""
    schemas = _schemas_of(db, base_relations(op))
    # Schema checks first, for error parity with the in-process backends.
    out_schema = output_schema(op, schemas)
    sql, params, _ = query_to_sqlite(op, schemas)
    conn = _cached_connection(db, bag=False)
    rows = conn.execute(sql, params).fetchall()
    return Relation(out_schema, frozenset(tuple(r) for r in rows))


def execute_query_sqlite_bag(op: Operator, db) -> "BagRelation":
    """Evaluate a bag-semantics operator tree server-side on SQLite."""
    from ..bag import BagRelation

    schemas = _schemas_of(db, base_relations(op))
    out_schema = output_schema(op, schemas)
    sql, params, _ = query_to_sqlite_bag(op, schemas)
    conn = _cached_connection(db, bag=True)
    counts: Counter = Counter()
    for row in conn.execute(sql, params):
        counts[tuple(row[:-1])] += row[-1]
    return BagRelation(out_schema, counts)


# -- statement application --------------------------------------------------

def _validate_statement(stmt, relation_schema: Schema) -> None:
    """Schema-level checks the in-process apply paths perform eagerly."""
    from ..statements import InsertTuple, UpdateStatement

    if isinstance(stmt, UpdateStatement):
        for attribute in stmt.set_clauses:
            if attribute not in relation_schema:
                raise SchemaError(
                    f"UPDATE sets unknown attribute {attribute!r} "
                    f"on {stmt.relation}"
                )
    if isinstance(stmt, InsertTuple):
        if len(stmt.values) != relation_schema.arity:
            raise SchemaError(
                f"insert arity {len(stmt.values)} != schema arity "
                f"{relation_schema.arity}"
            )


def _statement_schemas(stmt, db) -> dict[str, Schema]:
    from ..statements import InsertQuery

    names = set(stmt.accessed_relations())
    names.add(stmt.relation)
    schemas = _schemas_of(db, names)
    if isinstance(stmt, InsertQuery):
        result_schema = output_schema(stmt.query, schemas)
        target_arity = schemas[stmt.relation].arity
        if result_schema.arity != target_arity:
            raise SchemaError(
                f"INSERT SELECT arity {result_schema.arity} does not "
                f"match {stmt.relation} arity {target_arity}"
            )
    return schemas


def apply_statement_sqlite(stmt, db: Database) -> Database:
    """Apply one statement server-side (set semantics).

    A throwaway connection is loaded with exactly the relations the
    statement touches; the mutated target relation is read back and the
    untouched relations of the immutable input database are shared.
    """
    target = db[stmt.relation]
    _validate_statement(stmt, target.schema)
    schemas = _statement_schemas(stmt, db)
    conn = _connect()
    try:
        _load_database(conn, db, sorted(schemas), bag=False)
        sql, params = statement_to_sqlite(stmt, schemas, bag=False)
        conn.execute(sql, params)
        cursor = conn.execute(
            f"SELECT * FROM {quote_identifier(stmt.relation)}"
        )
        rows = frozenset(tuple(r) for r in cursor.fetchall())
    finally:
        conn.close()
    return db.with_relation(stmt.relation, Relation(target.schema, rows))


def apply_statement_sqlite_bag(stmt, db) -> "BagDatabase":
    """Apply one statement server-side (bag semantics)."""
    from ..bag import BagRelation

    target = db[stmt.relation]
    _validate_statement(stmt, target.schema)
    schemas = _statement_schemas(stmt, db)
    conn = _connect()
    try:
        _load_database(conn, db, sorted(schemas), bag=True)
        sql, params = statement_to_sqlite(stmt, schemas, bag=True)
        conn.execute(sql, params)
        cursor = conn.execute(
            f"SELECT * FROM {quote_identifier(stmt.relation)}"
        )
        counts: Counter = Counter()
        for row in cursor:
            counts[tuple(row[:-1])] += row[-1]
    finally:
        conn.close()
    return db.with_relation(stmt.relation, BagRelation(target.schema, counts))
