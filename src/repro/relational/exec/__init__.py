"""Compiled execution backend (see DESIGN.md, "Execution backends").

This subpackage lowers the interpreted algebra to compiled form:

* :mod:`.expr_compile` — expression trees become generated Python
  functions over positional row tuples (no per-row dict bindings),
* :mod:`.plan_compile` / :mod:`.bag_compile` — operator trees become
  streaming generator pipelines with a hash-join fast path and
  deduplication only at pipeline breakers, under set and bag semantics,
* :mod:`.sqlite_sql` / :mod:`.sql_backend` — the ``"sqlite"`` middleware
  backend: trees and statements are translated to SQL and executed
  server-side on an in-memory :mod:`sqlite3` database,
* :mod:`.vector_compile` — the ``"vector"`` columnar backend: typed
  column arrays (see :mod:`repro.relational.columnar`) evaluated with
  whole-column kernels, bitmap selections and bloom-prefiltered coded
  hash joins, falling back to the compiled per-row closures wherever
  eager vectorized evaluation could diverge from interpreter semantics,
* :mod:`.backend` — the process-wide ``"compiled"`` / ``"interpreted"``
  / ``"sqlite"`` / ``"vector"`` switch that
  :func:`repro.relational.algebra.evaluate_query` and friends consult;
  compiled is the default, the interpreter stays available as the
  differential-testing oracle.

The compilers import the algebra module, which itself dispatches into
this package at evaluation time — so everything except the import-light
backend switch is exported lazily (PEP 562) to keep imports acyclic.
"""

from __future__ import annotations

from typing import Any

from .backend import (
    BACKEND_COMPILED,
    BACKEND_INTERPRETED,
    BACKEND_SQLITE,
    BACKEND_VECTOR,
    BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)

__all__ = [
    # backend switch
    "BACKEND_COMPILED",
    "BACKEND_INTERPRETED",
    "BACKEND_SQLITE",
    "BACKEND_VECTOR",
    "BACKENDS",
    "get_default_backend",
    "set_default_backend",
    "resolve_backend",
    "use_backend",
    # expression compilation
    "compile_expr",
    "compile_predicate",
    "compile_row",
    "const_fingerprint",
    "clear_expr_cache",
    "expr_cache_info",
    # plan compilation (set semantics)
    "CompiledPlan",
    "compile_plan",
    "execute_plan",
    "plan_fingerprint",
    "split_equijoin_condition",
    "clear_plan_cache",
    "plan_cache_info",
    # plan compilation (bag semantics)
    "CompiledBagPlan",
    "compile_plan_bag",
    "execute_plan_bag",
    "clear_bag_plan_cache",
    "bag_plan_cache_info",
    # vector columnar backend
    "execute_plan_vector",
    "execute_plan_vector_bag",
    "vectorize_condition",
    # sqlite middleware backend
    "SqlBackendError",
    "execute_query_sqlite",
    "execute_query_sqlite_bag",
    "apply_statement_sqlite",
    "apply_statement_sqlite_bag",
    "clear_sqlite_cache",
    "sqlite_cache_info",
    "set_sqlite_cache_limit",
    # maintenance
    "clear_caches",
]

_EXPR_EXPORTS = {
    "compile_expr",
    "compile_predicate",
    "compile_row",
    "const_fingerprint",
    "clear_expr_cache",
    "expr_cache_info",
}
_PLAN_EXPORTS = {
    "CompiledPlan",
    "compile_plan",
    "execute_plan",
    "plan_fingerprint",
    "split_equijoin_condition",
    "clear_plan_cache",
    "plan_cache_info",
}
_BAG_EXPORTS = {
    "CompiledBagPlan",
    "compile_plan_bag",
    "execute_plan_bag",
    "clear_bag_plan_cache",
    "bag_plan_cache_info",
}
_VECTOR_EXPORTS = {
    "execute_plan_vector",
    "execute_plan_vector_bag",
    "vectorize_condition",
}
_SQLITE_EXPORTS = {
    "SqlBackendError",
    "execute_query_sqlite",
    "execute_query_sqlite_bag",
    "apply_statement_sqlite",
    "apply_statement_sqlite_bag",
    "clear_sqlite_cache",
    "sqlite_cache_info",
    "set_sqlite_cache_limit",
}


def clear_caches() -> None:
    """Drop every compilation cache, the sqlite connection cache, and
    the vector backend's columnarization cache."""
    from .. import columnar
    from . import bag_compile, expr_compile, plan_compile, sql_backend

    expr_compile.clear_expr_cache()
    plan_compile.clear_plan_cache()
    bag_compile.clear_bag_plan_cache()
    sql_backend.clear_sqlite_cache()
    columnar.clear_columnar_cache()


def __getattr__(name: str) -> Any:
    if name in _EXPR_EXPORTS:
        from . import expr_compile

        return getattr(expr_compile, name)
    if name in _PLAN_EXPORTS:
        from . import plan_compile

        return getattr(plan_compile, name)
    if name in _BAG_EXPORTS:
        from . import bag_compile

        return getattr(bag_compile, name)
    if name in _VECTOR_EXPORTS:
        from . import vector_compile

        return getattr(vector_compile, name)
    if name in _SQLITE_EXPORTS:
        from . import sql_backend

        return getattr(sql_backend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
