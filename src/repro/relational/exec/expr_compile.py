"""Closure compilation of the expression language (Figure 7).

:func:`compile_expr` lowers an :class:`~repro.relational.expressions.Expr`
tree into a single generated Python function over a *positional* row
tuple: attribute references become ``row[i]`` loads, so evaluation needs
neither a per-row ``dict`` binding nor a tree walk.  The generated code
preserves the interpreter's semantics exactly:

* NULL (``None``) propagates through arithmetic; division by zero yields
  NULL,
* comparisons involving NULL are ``False`` (the two-valued logic of the
  module docstring of :mod:`repro.relational.expressions`); incomparable
  values raise :class:`EvaluationError`,
* ``and``/``or`` short-circuit exactly like the interpreter (the right
  operand is not evaluated when the left decides), and ``If`` evaluates
  only the taken branch — so an unbound reference in a dead branch does
  not raise, again matching the interpreter,
* unbound :class:`Attr`/:class:`Var` references raise
  :class:`EvaluationError` lazily, at the point they would be read.

Compilation is cached on ``(expr, schema)``; expression trees are frozen
dataclasses so structurally equal trees share one compiled closure.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Callable, Sequence

from ..expressions import (
    Arith,
    Attr,
    Cmp,
    Const,
    EvaluationError,
    Expr,
    If,
    IsNull,
    Logic,
    Not,
    Var,
    walk,
)
from ..schema import Schema

__all__ = [
    "compile_expr",
    "compile_predicate",
    "compile_row",
    "const_fingerprint",
    "clear_expr_cache",
    "expr_cache_info",
]


def const_fingerprint(expr: Expr) -> tuple[str, ...]:
    """Types of every constant embedded in the tree, in walk order.

    Required in every compilation cache key: ``Const(False) == Const(0)``
    and ``Const(1) == Const(True) == Const(1.0)`` under dataclass
    equality (Python's cross-type numeric ``==``), yet they must compile
    to closures producing differently-typed values.  Two trees that
    compare equal have structurally aligned walks, so equal fingerprints
    really mean interchangeable compilations.
    """
    return tuple(
        type(node.value).__name__
        for node in walk(expr)
        if isinstance(node, Const)
    )

#: Operator spellings in generated code.
_ARITH_SOURCE = {"+": "+", "-": "-", "*": "*", "/": "/"}
_CMP_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


def _raise_unbound(name: str) -> Any:
    raise EvaluationError(f"unbound reference {name!r}")


def _cmp_message(a: Any, b: Any, op: str) -> str:
    """Built at runtime — embedding operand reprs in the generated
    source would produce invalid nesting for quoted/escaped strings."""
    return f"cannot compare {a!r} and {b!r} with {op}"


#: Atoms whose runtime value might be None: row loads, temps, env consts.
_MAYBE_NONE_ATOM = re.compile(r"^(?:row\[\d+\]|[tk]\d+)$")


def _maybe_none(atom: str) -> bool:
    """Whether an atom could evaluate to None (inlined non-None literals
    can't, so their NULL guards are dropped from the generated code)."""
    return atom == "None" or bool(_MAYBE_NONE_ATOM.match(atom))


class _Emitter:
    """Accumulates the statement body of one generated row function."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.lines: list[str] = []
        self.env: dict[str, Any] = {
            "EvaluationError": EvaluationError,
            "_unbound": _raise_unbound,
            "_cmp_msg": _cmp_message,
        }
        self._counter = 0

    # -- low-level helpers -------------------------------------------------
    def fresh(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def bind(self, value: Any) -> str:
        """Bind an arbitrary constant into the function's globals."""
        self._counter += 1
        name = f"k{self._counter}"
        self.env[name] = value
        return name

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * depth + text)

    def _literal(self, value: Any) -> str:
        """Inline representation for simple constants, env binding else."""
        if value is None or isinstance(value, (bool, int, str)):
            return repr(value)
        if isinstance(value, float) and -1e308 < value < 1e308:
            return repr(value)  # finite floats round-trip through repr
        return self.bind(value)

    # -- the lowering ------------------------------------------------------
    def lower(self, expr: Expr, depth: int) -> str:
        """Emit code computing ``expr``; returns the atom holding it.

        The returned atom is a variable name, a ``row[i]`` load, or a
        literal — always side-effect free, so it may be referenced more
        than once (e.g. in a NULL guard and the operation itself).
        """
        if isinstance(expr, Const):
            return self._literal(expr.value)
        if isinstance(expr, (Attr, Var)):
            name = expr.name
            if name in self.schema:
                return f"row[{self.schema.index_of(name)}]"
            # Lazy failure: only raises when this node is actually read,
            # matching the interpreter's KeyError-at-lookup behaviour.
            out = self.fresh()
            self.line(depth, f"{out} = _unbound({self._literal(name)})")
            return out
        if isinstance(expr, Arith):
            a = self.lower(expr.left, depth)
            b = self.lower(expr.right, depth)
            out = self.fresh()
            if a == "None" or b == "None":
                self.line(depth, f"{out} = None")
                return out
            guards = [f"{x} is None" for x in (a, b) if _maybe_none(x)]
            if expr.op == "/":
                guards.append(f"{b} == 0")
            op = _ARITH_SOURCE[expr.op]
            if guards:
                self.line(
                    depth,
                    f"{out} = None if {' or '.join(guards)} "
                    f"else {a} {op} {b}",
                )
            else:
                self.line(depth, f"{out} = {a} {op} {b}")
            return out
        if isinstance(expr, Cmp):
            a = self.lower(expr.left, depth)
            b = self.lower(expr.right, depth)
            out = self.fresh()
            if a == "None" or b == "None":
                self.line(depth, f"{out} = False")
                return out
            op = _CMP_SOURCE[expr.op]
            guards = [f"{x} is None" for x in (a, b) if _maybe_none(x)]
            body_depth = depth
            if guards:
                self.line(depth, f"if {' or '.join(guards)}:")
                self.line(depth + 1, f"{out} = False")
                self.line(depth, "else:")
                body_depth = depth + 1
            self.line(body_depth, "try:")
            self.line(body_depth + 1, f"{out} = not not ({a} {op} {b})")
            self.line(body_depth, "except TypeError:")
            self.line(
                body_depth + 1,
                f"raise EvaluationError(_cmp_msg({a}, {b}, '{expr.op}')) "
                "from None",
            )
            return out
        if isinstance(expr, Logic):
            a = self.lower(expr.left, depth)
            out = self.fresh()
            self.line(depth, f"{out} = not not {a}")
            guard = out if expr.op == "and" else f"not {out}"
            self.line(depth, f"if {guard}:")
            b = self.lower(expr.right, depth + 1)
            self.line(depth + 1, f"{out} = not not {b}")
            return out
        if isinstance(expr, Not):
            a = self.lower(expr.operand, depth)
            out = self.fresh()
            self.line(depth, f"{out} = not {a}")
            return out
        if isinstance(expr, IsNull):
            a = self.lower(expr.operand, depth)
            out = self.fresh()
            if not _maybe_none(a):
                self.line(depth, f"{out} = {a == 'None'}")
            else:
                self.line(depth, f"{out} = {a} is None")
            return out
        if isinstance(expr, If):
            cond = self.lower(expr.cond, depth)
            out = self.fresh()
            self.line(depth, f"if {cond}:")
            then = self.lower(expr.then, depth + 1)
            self.line(depth + 1, f"{out} = {then}")
            self.line(depth, "else:")
            orelse = self.lower(expr.orelse, depth + 1)
            self.line(depth + 1, f"{out} = {orelse}")
            return out
        raise EvaluationError(f"cannot compile {expr!r}")

    def assemble(self, return_expr: str) -> Callable[[tuple], Any]:
        body = self.lines + [f"    return {return_expr}"]
        source = "def _compiled(row):\n" + "\n".join(body)
        code = compile(source, "<mahif-compiled-expr>", "exec")
        exec(code, self.env)
        fn = self.env["_compiled"]
        fn.__source__ = source  # for debugging / tests
        return fn


@lru_cache(maxsize=4096)
def _compile_expr_cached(
    expr: Expr, schema: Schema, fingerprint: tuple[str, ...]
) -> Callable[[tuple], Any]:
    emitter = _Emitter(schema)
    atom = emitter.lower(expr, 1)
    return emitter.assemble(atom)


@lru_cache(maxsize=4096)
def _compile_predicate_cached(
    expr: Expr, schema: Schema, fingerprint: tuple[str, ...]
) -> Callable[[tuple], bool]:
    emitter = _Emitter(schema)
    atom = emitter.lower(expr, 1)
    return emitter.assemble(f"not not {atom}")


@lru_cache(maxsize=4096)
def _compile_row_cached(
    exprs: tuple[Expr, ...], schema: Schema, fingerprint: tuple[str, ...]
) -> Callable[[tuple], tuple]:
    emitter = _Emitter(schema)
    atoms = [emitter.lower(expr, 1) for expr in exprs]
    return emitter.assemble("(" + ", ".join(atoms) + ("," if len(atoms) == 1 else "") + ")")


def compile_expr(expr: Expr, schema: Schema) -> Callable[[tuple], Any]:
    """Compile ``expr`` to ``row -> value`` over ``schema``-ordered rows."""
    try:
        return _compile_expr_cached(expr, schema, const_fingerprint(expr))
    except TypeError:  # unhashable constant somewhere in the tree
        emitter = _Emitter(schema)
        return emitter.assemble(emitter.lower(expr, 1))


def compile_predicate(expr: Expr, schema: Schema) -> Callable[[tuple], bool]:
    """Compile a condition to ``row -> bool`` (truthiness coerced, as the
    interpreter's callers do with ``bool(evaluate(...))``)."""
    try:
        return _compile_predicate_cached(
            expr, schema, const_fingerprint(expr)
        )
    except TypeError:
        emitter = _Emitter(schema)
        atom = emitter.lower(expr, 1)
        return emitter.assemble(f"not not {atom}")


def compile_row(
    exprs: Sequence[Expr], schema: Schema
) -> Callable[[tuple], tuple]:
    """Compile a projection list to one ``row -> tuple`` function.

    All output expressions share a single generated function body, so a
    generalized projection costs one call per row rather than one call
    per output column.
    """
    exprs = tuple(exprs)
    try:
        fingerprint = tuple(
            part for expr in exprs for part in const_fingerprint(expr)
        )
        return _compile_row_cached(exprs, schema, fingerprint)
    except TypeError:
        emitter = _Emitter(schema)
        atoms = [emitter.lower(expr, 1) for expr in exprs]
        return emitter.assemble(
            "(" + ", ".join(atoms) + ("," if len(atoms) == 1 else "") + ")"
        )


def clear_expr_cache() -> None:
    _compile_expr_cached.cache_clear()
    _compile_predicate_cached.cache_clear()
    _compile_row_cached.cache_clear()


def expr_cache_info() -> dict[str, Any]:
    return {
        "expr": _compile_expr_cached.cache_info(),
        "predicate": _compile_predicate_cached.cache_info(),
        "row": _compile_row_cached.cache_info(),
    }
